"""Pluggable worker-dispatch transports for the parallel layer.

The master/slave protocol (:mod:`repro.parallel.master`) and the
persistent :class:`~repro.parallel.pool.WorkerPool` both used to talk
to their workers through raw ``multiprocessing`` pipes, which welded
the fleet to one machine.  This module factors that point-dispatch
layer into a :class:`Transport` abstraction so the same scheduling
loops drive either fleet:

- :class:`LocalPipeTransport` — the historical backend: one forked OS
  process per worker, a duplex pipe per process.  Behavior (spawn cost,
  exception surface, shutdown escalation) is unchanged.
- :class:`RemoteTransport` — an asyncio TCP server the master owns.
  :mod:`repro.parallel.agent` host processes dial in and register
  worker *slots*; binding a slot ships the picklable worker entry point
  over the wire and the agent forks the worker locally, bridging its
  pipe to the socket.  Workers may join and leave mid-run (the
  transport is *elastic*); a slot whose agent re-dials after a death
  provides the capacity a respawn claims.

Both transports present the same synchronous, endpoint-oriented
surface to their caller:

- :meth:`Transport.spawn` returns a :class:`WorkerEndpoint` bound to
  one worker incarnation; the endpoint's ``send`` / ``recv`` /
  ``poll`` raise the same exception families a
  ``multiprocessing.connection.Connection`` does (``BrokenPipeError``
  on send to a dead worker, ``EOFError`` on recv from one), so the
  fault-handling paths upstream are transport-independent.
- :meth:`Transport.wait` multiplexes readiness across endpoints.  Each
  returned endpoint *is* the identity of its worker — callers key
  dispatch off the endpoint object and its ``worker_id``, never off
  ``id()`` of an underlying pipe (connection objects are recycled by
  the allocator; endpoint objects are not reused across incarnations).

Wire format (remote): 4-byte big-endian length prefix followed by a
pickle of the same message objects the local pipes carry.  Pickle over
TCP means the fleet must be a *trusted* network (the same trust model
``multiprocessing`` itself uses); the optional shared ``key`` rejects
accidental cross-talk between fleets, it is not cryptographic
authentication.  Determinism is unaffected by the transport: worker
seeds derive from worker ids, and all merging happens master-side in
worker-id order, so merged digests are bit-identical across local and
remote fleets.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Sequence, Set, Tuple

from repro.parallel.protocol import (
    CAUSE_CORRUPT_FRAME,
    CAUSE_LIVENESS_TIMEOUT,
    ParallelError,
)


class TransportError(ParallelError):
    """Raised when a transport cannot carry out an operation."""


class TransportCapacityError(TransportError):
    """No worker capacity is available (yet) to satisfy a spawn."""


class FrameError(TransportError):
    """A wire frame could not be decoded (corrupt prefix / truncation /
    undecodable pickle).

    Carries the ``worker_id`` of the endpoint the frame arrived on when
    known, so the master can attribute the death (cause
    ``"corrupt frame"``) without parsing the message.  Subclasses
    :class:`TransportError`, so handlers catching the transport family
    keep working — but it is *not* an ``EOFError``/``OSError``, so the
    recv paths in master/pool name it explicitly.
    """

    def __init__(self, message: str, worker_id: Optional[int] = None):
        super().__init__(message)
        self.worker_id = worker_id


class LivenessError(EOFError):
    """A connection was declared dead by heartbeat monitoring.

    Subclasses ``EOFError`` so every existing pipe-death handler treats
    it as a worker death; the distinct type lets those handlers
    attribute the cause ``"liveness timeout"`` instead of the generic
    ``"pipe closed"``.
    """


# -- framing ------------------------------------------------------------------

#: Length prefix: 4-byte big-endian unsigned payload size.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on one frame; a corrupt length prefix must not make the
#: reader try to allocate gigabytes.
MAX_FRAME_BYTES = 1 << 30


def encode_frame(message: object) -> bytes:
    """One protocol message -> length-prefixed pickle bytes."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return FRAME_HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes, worker_id: Optional[int] = None) -> object:
    """Unpickle one frame payload, never letting decode errors escape raw.

    Every failure mode of ``pickle.loads`` on hostile/corrupt bytes —
    ``UnpicklingError``, truncated-stream ``EOFError``, bogus opcode
    ``ValueError``/``AttributeError``/``ImportError``, even
    ``MemoryError`` from a corrupt embedded length — surfaces as one
    typed :class:`FrameError` the callers already route to a worker
    death.
    """
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise FrameError(
            f"undecodable frame payload ({type(error).__name__}: {error})",
            worker_id=worker_id,
        ) from None


async def read_frame(reader) -> object:
    """Read one length-prefixed pickle frame from an asyncio stream.

    Raises ``EOFError`` on a cleanly closed stream and
    :class:`FrameError` on any of the three corruption shapes: a
    length prefix beyond the frame bound, a truncated header/payload,
    or a payload that does not decode.
    """
    import asyncio

    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise EOFError("stream closed") from None
        raise FrameError("truncated frame header") from None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound (corrupt prefix?)"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("truncated frame payload") from None
    return decode_payload(payload)


# -- sequencing and liveness frames -------------------------------------------
#
# Data frames on connection-oriented transports are wrapped as
# ``("__seq__", n, message)`` with ``n`` counting from 1 per connection
# per direction.  The receiving side drops any frame whose sequence
# number does not advance, so a retried or chaos-duplicated send can
# never deliver (and the master can never double-merge) the same report
# twice.  Heartbeat frames — ``("__hb__", n)`` pings from the master,
# ``("__hb_ack__", n)`` echoes from the agent bridge — are unsequenced
# and are consumed below the endpoint surface: they never reach the
# worker pipe or the master inbox, so they are invisible to digests.

SEQ_TAG = "__seq__"
HEARTBEAT_TAG = "__hb__"
HEARTBEAT_ACK_TAG = "__hb_ack__"

#: ``_AgentChannel.close_reason`` values recv maps to typed errors.
CLOSE_LIVENESS = "liveness timeout"
CLOSE_CORRUPT = "corrupt frame"


def is_sequenced(frame: object) -> bool:
    """True for a ``("__seq__", n, message)`` data frame."""
    return (
        isinstance(frame, tuple)
        and len(frame) == 3
        and frame[0] == SEQ_TAG
    )


def is_heartbeat(frame: object) -> bool:
    """True for a master->agent heartbeat ping."""
    return (
        isinstance(frame, tuple)
        and len(frame) == 2
        and frame[0] == HEARTBEAT_TAG
    )


def is_heartbeat_ack(frame: object) -> bool:
    """True for an agent->master heartbeat echo."""
    return (
        isinstance(frame, tuple)
        and len(frame) == 2
        and frame[0] == HEARTBEAT_ACK_TAG
    )


class FrameSequencer:
    """Per-connection, per-direction sequence stamping and dedup.

    One instance per side per direction.  :meth:`stamp` wraps an
    outbound message under the next number; :meth:`accept` unwraps an
    inbound frame, dropping it when its number does not advance past
    the last accepted one (an unsequenced frame — control traffic,
    local-pipe messages — always passes through untouched).
    """

    def __init__(self) -> None:
        self._next_out = 0
        self._last_in = 0

    def stamp(self, message: object) -> tuple:
        self._next_out += 1
        return (SEQ_TAG, self._next_out, message)

    def accept(self, frame: object):
        """``(accepted, message)``; ``(False, None)`` for a duplicate."""
        if not is_sequenced(frame):
            return True, frame
        seq = frame[1]
        if not isinstance(seq, int) or seq <= self._last_in:
            return False, None
        self._last_in = seq
        return True, frame[2]


def raise_for_close(close_reason: Optional[str], worker_id: int) -> None:
    """Raise the typed end-of-channel error for a closed channel.

    The exception family is part of the endpoint contract: liveness
    deaths and clean closes are ``EOFError`` shapes, corrupt frames are
    the :class:`FrameError` the callers name explicitly.
    """
    if close_reason == CLOSE_LIVENESS:
        raise LivenessError(
            f"worker {worker_id} declared dead by heartbeat monitoring"
        )
    if close_reason == CLOSE_CORRUPT:
        raise FrameError(
            f"worker {worker_id} connection closed after a corrupt frame",
            worker_id=worker_id,
        )
    raise EOFError(f"worker {worker_id} connection closed")


def disconnect_cause(error: BaseException, fallback: str) -> str:
    """Machine-readable cause code for one recv/send failure.

    Master and pool route every worker-death exception through here so
    a liveness timeout or corrupt frame keeps its specific attribution
    while ordinary pipe deaths keep the caller's historical fallback
    (``pipe closed`` / ``worker left``).
    """
    if isinstance(error, LivenessError):
        return CAUSE_LIVENESS_TIMEOUT
    if isinstance(error, FrameError):
        return CAUSE_CORRUPT_FRAME
    return fallback


# -- fork hygiene --------------------------------------------------------------
#
# A fork()ed worker inherits every open file descriptor of its parent —
# including the TCP sockets of *other* workers' agent connections (and,
# when master and agent share one process in tests, the master's
# accepted sockets).  An inherited duplicate keeps a connection
# ESTABLISHED in the kernel after both real ends have closed it, so the
# peer never sees the FIN and a dead worker looks alive until every
# sibling worker has exited.  Socket owners register their fds here and
# forked workers close the inherited copies before running their entry.

_FORK_UNSAFE_FDS: Set[int] = set()


def register_fork_unsafe_fd(fd: int) -> None:
    """Mark one fd (a live socket) to be closed in forked workers."""
    _FORK_UNSAFE_FDS.add(fd)


def unregister_fork_unsafe_fd(fd: int) -> None:
    """Remove one fd from the registry (call *before* closing it)."""
    _FORK_UNSAFE_FDS.discard(fd)


def scrub_inherited_fds() -> None:
    """Close every registered socket fd (worker child side, post-fork).

    The child's copy of the registry is the fork-time snapshot, so it
    names exactly the inherited duplicates that must go.
    """
    for fd in list(_FORK_UNSAFE_FDS):
        try:
            os.close(fd)
        except OSError:
            pass
    _FORK_UNSAFE_FDS.clear()


def _scrubbed_entry(conn, entry, args):
    """Worker-process shim: drop inherited sockets, then run ``entry``."""
    scrub_inherited_fds()
    entry(conn, *args)


def fork_safe_process(context, entry, conn, args):
    """A worker ``Process`` whose fork-started child scrubs inherited fds.

    Under the ``fork`` start method the child inherits every open fd,
    so route through :func:`_scrubbed_entry`; ``spawn``/``forkserver``
    children inherit nothing and run ``entry`` directly.
    """
    if context.get_start_method() == "fork":
        return context.Process(
            target=_scrubbed_entry,
            args=(conn, entry, tuple(args)),
            daemon=True,
        )
    return context.Process(
        target=entry, args=(conn,) + tuple(args), daemon=True
    )


def _writer_fd(writer) -> Optional[int]:
    """The live socket fd behind an asyncio writer, or None."""
    sock = writer.get_extra_info("socket")
    if sock is None:
        return None
    try:
        fd = sock.fileno()
    except (OSError, ValueError):  # pragma: no cover - torn down
        return None
    return fd if fd >= 0 else None


# -- the abstraction ----------------------------------------------------------


class WorkerEndpoint:
    """One live channel to one worker incarnation.

    Endpoint objects are never reused: a respawned worker gets a fresh
    endpoint, so object identity distinguishes incarnations even when
    the underlying OS resources are recycled.
    """

    #: Worker id this endpoint is bound to.
    worker_id: int
    #: Incarnation (0 = original fleet, +1 per respawn).
    generation: int

    def send(self, message: object) -> None:
        raise NotImplementedError

    def recv(self) -> object:
        raise NotImplementedError

    def poll(self, timeout: Optional[float] = None) -> bool:
        """True when a message (or EOF) is ready within ``timeout``."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def describe(self) -> dict:
        """Trace-friendly description of the far end."""
        raise NotImplementedError

    # -- frame-level hooks (chaos / retry layers) ---------------------------
    #
    # ``send`` is ``send_frame(stamp(message))``.  The split exists so a
    # wrapping layer (ChaosTransport) can stamp a message once and send
    # the *same* stamped frame twice — exercising receiver-side dedup —
    # or hold a stamped frame back and deliver it late.  Transports
    # without wire framing (local pipes) pass messages through
    # unstamped; ``FrameSequencer.accept`` is a no-op on those.

    def stamp(self, message: object) -> object:
        """Wrap one outbound message under the next sequence number."""
        return message

    def send_frame(self, frame: object) -> None:
        """Send one already-stamped frame verbatim."""
        self.send(frame)

    def recv_raw(self) -> object:
        """Receive one frame *without* sequence unwrap/dedup."""
        return self.recv()

    def set_raw_delivery(self, raw: bool) -> bool:
        """Route inbound frames to :meth:`recv_raw` undeduplicated.

        Returns False when the transport has no frame layer to expose
        (local pipes); the caller then skips frame-level faults.
        """
        return False

    def set_partition(self, direction: str) -> bool:
        """Silently blackhole one direction (``"in"`` = worker->master,
        ``"out"`` = master->worker) *below* the heartbeat layer, so
        liveness monitoring genuinely detects the half-open link.
        Returns False when unsupported.
        """
        return False

    def inject_close(self, reason: Optional[str] = None) -> bool:
        """Tear the connection down as an injected fault would.

        ``reason`` becomes the channel close reason (``None`` = plain
        EOF, like a crashed agent process).  Returns False when
        unsupported.
        """
        return False


class Transport:
    """Factory + multiplexer for :class:`WorkerEndpoint` channels."""

    #: Short name carried in trace records.
    kind: str = "abstract"
    #: True when workers join and leave on their own schedule (the
    #: caller should poll :meth:`capacity` and admit joins mid-run).
    elastic: bool = False

    def __init__(self) -> None:
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.observability.Tracer` (optional)."""
        self._tracer = tracer

    def _trace(self, name: str, **fields) -> None:
        if self._tracer is not None:
            self._tracer.event(name, component="transport", **fields)

    def start(self) -> None:
        """Bring the transport up (idempotent)."""

    def spawn(
        self,
        worker_id: int,
        generation: int,
        entry,
        args: Tuple,
        timeout: Optional[float] = None,
    ) -> WorkerEndpoint:
        """Start one worker running ``entry(conn, *args)``.

        ``entry`` must be a module-level (picklable) callable; the
        worker's end of the channel is passed as its first argument.
        ``timeout`` bounds how long to wait for capacity; raises
        :class:`TransportCapacityError` when none arrives in time.
        """
        raise NotImplementedError

    def wait(
        self,
        endpoints: Sequence[WorkerEndpoint],
        timeout: Optional[float] = None,
    ) -> List[WorkerEndpoint]:
        """Endpoints with a message (or EOF) ready, or [] on timeout."""
        raise NotImplementedError

    def capacity(self) -> int:
        """Worker slots that could be bound right now without blocking."""
        return 0

    def wait_for_capacity(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`capacity` > 0 (elastic transports)."""
        return self.capacity() > 0

    def reap(self, endpoint: WorkerEndpoint) -> None:
        """Release one condemned endpoint's resources for good."""

    def shutdown(self, endpoints: Sequence[WorkerEndpoint]) -> None:
        """Stop the given workers (the transport itself stays usable)."""
        raise NotImplementedError

    def close(self) -> None:
        """Tear the transport itself down (idempotent).

        Separate from :meth:`shutdown` so one transport can serve many
        runs; whoever constructed the transport closes it.
        """


# -- local (pipe + fork) transport --------------------------------------------


class LocalEndpoint(WorkerEndpoint):
    """A forked worker process behind a duplex pipe."""

    def __init__(self, worker_id, generation, conn, process):
        self.worker_id = worker_id
        self.generation = generation
        self.conn = conn
        self.process = process

    def send(self, message: object) -> None:
        self.conn.send(message)

    def recv(self) -> object:
        return self.conn.recv()

    def poll(self, timeout: Optional[float] = None) -> bool:
        return self.conn.poll(timeout)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def describe(self) -> dict:
        return {
            "transport": "local",
            "pid": getattr(self.process, "pid", None),
            "worker": self.worker_id,
            "generation": self.generation,
        }


class LocalPipeTransport(Transport):
    """The historical single-host backend: fork + pipe per worker."""

    kind = "local"
    elastic = False

    def __init__(self, context: str = "fork"):
        super().__init__()
        from multiprocessing import get_context

        self._context = get_context(context)

    def spawn(self, worker_id, generation, entry, args, timeout=None):
        parent_conn, child_conn = self._context.Pipe()
        process = fork_safe_process(self._context, entry, child_conn, args)
        process.start()
        child_conn.close()
        self._trace("spawn", backend="local", worker=worker_id,
                    generation=generation, pid=process.pid)
        return LocalEndpoint(worker_id, generation, parent_conn, process)

    def wait(self, endpoints, timeout=None):
        from multiprocessing.connection import wait as _wait_ready

        if not endpoints:
            if timeout:
                # Nothing to multiplex: honoring the timeout IS the wait.
                time.sleep(timeout)  # simlint: disable=blocking-sleep-in-transport
            return []
        ready = _wait_ready(
            [endpoint.conn for endpoint in endpoints], timeout=timeout
        )
        # Identity comparison is safe here: the endpoints list is
        # captured for the duration of this call, so no connection
        # object can be freed (and its address recycled) mid-lookup.
        ready_ids = {id(conn) for conn in ready}
        return [e for e in endpoints if id(e.conn) in ready_ids]

    def capacity(self) -> int:
        # Forking is always possible; report one slot so elastic-style
        # callers (none today) would never block on a local transport.
        return 1

    def reap(self, endpoint) -> None:
        from repro.parallel.master import ParallelSimulation

        ParallelSimulation._reap(endpoint.process)

    def shutdown(self, endpoints) -> None:
        # Reuse the master's join -> terminate -> kill escalation: a
        # wedged worker must not hang the exit path.
        from repro.parallel.master import ParallelSimulation

        ParallelSimulation._shutdown_slaves(
            [endpoint.process for endpoint in endpoints],
            [endpoint.conn for endpoint in endpoints],
            tracer=self._tracer,
        )


# -- remote (asyncio TCP) transport -------------------------------------------


class _AgentChannel:
    """Master-side state for one agent connection (one worker slot).

    Lives on both sides of the thread boundary: the asyncio loop thread
    appends inbound frames / flips ``closed``; the scheduling thread
    pops frames under the transport's condition variable.
    """

    def __init__(self, reader, writer, info: dict, transport):
        self.reader = reader
        self.writer = writer
        self.info = dict(info)
        self.transport = transport
        self.inbox: Deque[object] = deque()
        self.closed = False
        #: Why the channel closed, when more specific than a plain EOF
        #: (see CLOSE_LIVENESS / CLOSE_CORRUPT).
        self.close_reason: Optional[str] = None
        #: (worker_id, generation) once bound, else None (in the lobby).
        self.bound: Optional[Tuple[int, int]] = None
        #: Inbound dedup; disabled (raw delivery) by a chaos wrapper
        #: that performs its own dedup after injecting faults.
        self.dedup = True
        self.sequencer = FrameSequencer()
        #: Monotonic time of the last life sign (any inbound frame).
        self.last_ack = time.monotonic()
        #: Half-open partition injection: ``blackhole_in`` silently
        #: discards everything the agent sends (acks included);
        #: ``blackhole_out`` discards everything written to the agent
        #: (pings included).  Both sit below the heartbeat layer.
        self.blackhole_in = False
        self.blackhole_out = False

    # Called from the asyncio loop thread.
    def push(self, frame: object) -> None:
        with self.transport._cond:
            if self.dedup:
                accepted, message = self.sequencer.accept(frame)
                if not accepted:
                    return
                self.inbox.append(message)
            else:
                self.inbox.append(frame)
            self.transport._cond.notify_all()

    def mark_closed(self, reason: Optional[str] = None) -> None:
        with self.transport._cond:
            if reason is not None and self.close_reason is None:
                self.close_reason = reason
            self.closed = True
            self.transport._cond.notify_all()


class RemoteEndpoint(WorkerEndpoint):
    """A worker slot on a remote agent, bridged over one TCP stream."""

    def __init__(self, channel: _AgentChannel, worker_id, generation):
        self.channel = channel
        self.worker_id = worker_id
        self.generation = generation
        self._out_sequencer = FrameSequencer()

    def stamp(self, message: object) -> object:
        return self._out_sequencer.stamp(message)

    def send_frame(self, frame: object) -> None:
        if self.channel.closed:
            raise BrokenPipeError(
                f"remote worker {self.worker_id} connection is closed"
            )
        self.channel.transport._send_async(self.channel, frame)

    def send(self, message: object) -> None:
        self.send_frame(self.stamp(message))

    def recv(self) -> object:
        return self.recv_raw()

    def recv_raw(self) -> object:
        cond = self.channel.transport._cond
        with cond:
            while not self.channel.inbox and not self.channel.closed:
                cond.wait()
            if self.channel.inbox:
                return self.channel.inbox.popleft()
        raise_for_close(self.channel.close_reason, self.worker_id)

    def set_raw_delivery(self, raw: bool) -> bool:
        with self.channel.transport._cond:
            self.channel.dedup = not raw
        return True

    def set_partition(self, direction: str) -> bool:
        with self.channel.transport._cond:
            if direction == "in":
                self.channel.blackhole_in = True
            else:
                self.channel.blackhole_out = True
        return True

    def inject_close(self, reason: Optional[str] = None) -> bool:
        self.channel.mark_closed(reason)
        self.channel.transport._close_channel(self.channel)
        return True

    def poll(self, timeout: Optional[float] = None) -> bool:
        cond = self.channel.transport._cond
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with cond:
            while not self.channel.inbox and not self.channel.closed:
                if deadline is None:
                    cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                cond.wait(remaining)
            return True

    def close(self) -> None:
        self.channel.transport._close_channel(self.channel)

    def describe(self) -> dict:
        return {
            "transport": "remote",
            "agent": self.channel.info.get("agent"),
            "slot": self.channel.info.get("slot"),
            "worker": self.worker_id,
            "generation": self.generation,
        }


class RemoteTransport(Transport):
    """Master side of the multi-host fleet: a TCP registration server.

    The master listens; :mod:`repro.parallel.agent` processes dial in
    and say hello, landing their slot in the *lobby*.  ``spawn`` claims
    a lobby slot, ships the worker entry point, and returns the bound
    endpoint.  A slot whose connection drops mid-run surfaces exactly
    like a dead local worker (``EOFError`` on recv); the agent re-dials
    and the fresh registration is the capacity a respawn (or an elastic
    join) claims.

    Parameters
    ----------
    host / port:
        Listen address; port 0 picks a free port (read the bound
        address back from :attr:`address` after :meth:`start`).
    key:
        Optional shared secret agents must echo in their hello; a
        mismatched registration is rejected.  Fleet-hygiene only — the
        wire is pickle, so run on trusted networks.
    heartbeat_interval / heartbeat_misses:
        When ``heartbeat_interval`` is set, the transport pings every
        *bound* channel each interval and the agent bridge echoes each
        ping without involving the worker.  A channel silent (no frame,
        no ack) for ``interval * misses`` seconds is declared dead with
        reason ``"liveness timeout"`` — so a half-open connection
        (packets silently dropped one way, no FIN ever) surfaces in
        seconds instead of stalling a round to its deadline.  Heartbeat
        traffic never reaches the worker pipe or the master inbox, so
        digests are unaffected.
    """

    kind = "remote"
    elastic = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        key: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
        heartbeat_misses: int = 3,
    ):
        super().__init__()
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise TransportError(
                f"heartbeat_interval must be > 0 or None, "
                f"got {heartbeat_interval}"
            )
        if heartbeat_misses < 1:
            raise TransportError(
                f"heartbeat_misses must be >= 1, got {heartbeat_misses}"
            )
        self.host = host
        self.port = port
        self.key = key
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        #: (host, port) actually bound, set by :meth:`start`.
        self.address: Optional[Tuple[str, int]] = None
        self._cond = threading.Condition()
        self._lobby: Deque[_AgentChannel] = deque()
        self._channels: List[_AgentChannel] = []
        self._loop = None
        self._thread: Optional[threading.Thread] = None
        self._server = None
        self._startup_error: Optional[BaseException] = None
        self._stopping = False

    # -- lifecycle (called from the scheduling thread) -----------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        import asyncio

        started = threading.Event()

        def run_loop():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def serve():
                try:
                    self._server = await asyncio.start_server(
                        self._on_client, self.host, self.port
                    )
                    sock = self._server.sockets[0]
                    self.address = sock.getsockname()[:2]
                    for listener in self._server.sockets:
                        register_fork_unsafe_fd(listener.fileno())
                    if self.heartbeat_interval is not None:
                        loop.create_task(self._heartbeat_loop())
                except BaseException as error:
                    self._startup_error = error
                finally:
                    started.set()

            loop.run_until_complete(serve())
            if self._startup_error is None:
                try:
                    loop.run_forever()
                finally:
                    to_cancel = asyncio.all_tasks(loop)
                    for task in to_cancel:
                        task.cancel()
                    if to_cancel:
                        loop.run_until_complete(
                            asyncio.gather(
                                *to_cancel, return_exceptions=True
                            )
                        )
                    loop.close()

        self._thread = threading.Thread(
            target=run_loop, name="repro-remote-transport", daemon=True
        )
        self._thread.start()
        if not started.wait(30.0):  # pragma: no cover - pathological host
            raise TransportError("remote transport server failed to start")
        if self._startup_error is not None:
            raise TransportError(
                f"cannot listen on {self.host}:{self.port}: "
                f"{self._startup_error}"
            )
        self._trace("listen", host=self.address[0], port=self.address[1])

    # -- asyncio side --------------------------------------------------------

    @staticmethod
    def _close_writer(writer) -> None:
        """Unregister the writer's fd, then close it.

        Unregister *before* close: once the fd number is freed the OS
        may hand it to an unrelated socket, and a stale registry entry
        would make a forked worker close that newcomer.
        """
        fd = _writer_fd(writer)
        if fd is not None:
            unregister_fork_unsafe_fd(fd)
        try:
            writer.close()
        except OSError:  # pragma: no cover
            pass

    async def _on_client(self, reader, writer) -> None:
        import asyncio

        fd = _writer_fd(writer)
        if fd is not None:
            register_fork_unsafe_fd(fd)
        try:
            hello = await asyncio.wait_for(read_frame(reader), timeout=30.0)
        except (asyncio.TimeoutError, asyncio.CancelledError, EOFError,
                TransportError, ConnectionError, OSError):
            # CancelledError: listener teardown raced this handshake;
            # finish the task cleanly so the loop does not log it.
            self._close_writer(writer)
            return
        if not (
            isinstance(hello, tuple)
            and len(hello) == 2
            and hello[0] == "hello"
            and isinstance(hello[1], dict)
        ):
            self._close_writer(writer)
            return
        info = hello[1]
        if self.key is not None and info.get("key") != self.key:
            try:
                writer.write(encode_frame(("reject", "bad key")))
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._close_writer(writer)
            self._trace("register_rejected", agent=info.get("agent"))
            return
        channel = _AgentChannel(reader, writer, info, self)
        slot_key = (info.get("agent"), info.get("slot"))
        stale: List[_AgentChannel] = []
        with self._cond:
            if self._stopping:
                self._close_writer(writer)
                return
            # One connection per (agent, slot): an agent slot only
            # re-dials after tearing down its previous connection, so
            # any unclosed channel with the same identity is a zombie
            # whose FIN never arrived (e.g. an fd duplicate held open
            # by a forked sibling worker).  Supersede it so its death
            # is seen now, not when the duplicate finally dies.
            for old in self._channels:
                if not old.closed and (
                    (old.info.get("agent"), old.info.get("slot"))
                    == slot_key
                ):
                    old.closed = True
                    stale.append(old)
            self._channels = [c for c in self._channels if not c.closed]
            self._channels.append(channel)
            for old in stale:
                if old in self._lobby:
                    self._lobby.remove(old)
            self._lobby.append(channel)
            self._cond.notify_all()
        for old in stale:
            self._close_writer(old.writer)
            self._trace(
                "supersede",
                agent=slot_key[0],
                slot=slot_key[1],
                bound=old.bound,
            )
        self._trace(
            "register", agent=info.get("agent"), slot=info.get("slot")
        )
        try:
            while True:
                frame = await read_frame(reader)
                if channel.blackhole_in:
                    # Injected half-open partition: the agent's bytes
                    # (data and heartbeat acks alike) vanish without a
                    # FIN, exactly like a silently dropped route.
                    continue
                channel.last_ack = time.monotonic()
                if is_heartbeat_ack(frame):
                    continue
                channel.push(frame)
        except FrameError as error:
            # Attribute the corruption to the bound worker before the
            # generic close path runs: recv surfaces it as a typed
            # FrameError instead of a bare EOF.
            channel.mark_closed(CLOSE_CORRUPT)
            self._trace(
                "corrupt_frame",
                agent=channel.info.get("agent"),
                bound=channel.bound,
                error=str(error),
            )
        except (EOFError, TransportError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Listener teardown cancelled the reader mid-await: end the
            # task normally (the finally below closes the channel) so
            # asyncio's stream callback does not log the cancellation.
            pass
        finally:
            channel.mark_closed()
            with self._cond:
                if channel in self._lobby:
                    self._lobby.remove(channel)
            self._close_writer(writer)
            self._trace(
                "leave",
                agent=channel.info.get("agent"),
                bound=channel.bound,
            )

    async def _write_channel(self, channel: _AgentChannel, message) -> None:
        if channel.blackhole_out:
            # Injected half-open partition, outbound leg: frames (and
            # heartbeat pings) are dropped on the floor, never erroring.
            return
        try:
            channel.writer.write(encode_frame(message))
            await channel.writer.drain()
        except (ConnectionError, OSError):
            channel.mark_closed()

    async def _heartbeat_loop(self) -> None:
        """Ping bound channels; declare the silent ones dead.

        Runs on the transport's asyncio loop.  Pings are addressed only
        to *bound* channels (lobby slots are idle by design), and a
        channel whose last life sign — ack or any data frame — is older
        than ``interval * misses`` is closed with reason
        ``"liveness timeout"``, which recv maps to
        :class:`LivenessError`.
        """
        import asyncio

        sequence = 0
        window = self.heartbeat_interval * self.heartbeat_misses
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            sequence += 1
            now = time.monotonic()
            with self._cond:
                bound = [
                    channel
                    for channel in self._channels
                    if not channel.closed and channel.bound is not None
                ]
            for channel in bound:
                if now - channel.last_ack > window:
                    channel.mark_closed(CLOSE_LIVENESS)
                    self._close_writer(channel.writer)
                    self._trace(
                        "liveness_timeout",
                        agent=channel.info.get("agent"),
                        slot=channel.info.get("slot"),
                        bound=channel.bound,
                        silent_for=now - channel.last_ack,
                    )
                else:
                    await self._write_channel(
                        channel, (HEARTBEAT_TAG, sequence)
                    )

    def _send_async(self, channel: _AgentChannel, message) -> None:
        """Queue one outbound frame from the scheduling thread."""
        import asyncio

        if self._loop is None:
            raise BrokenPipeError("transport is not started")
        try:
            asyncio.run_coroutine_threadsafe(
                self._write_channel(channel, message), self._loop
            )
        except RuntimeError:  # loop already closed
            raise BrokenPipeError("transport is shut down") from None

    def _close_channel(self, channel: _AgentChannel) -> None:
        import asyncio

        channel.mark_closed()
        if self._loop is None or self._loop.is_closed():
            return

        try:
            self._loop.call_soon_threadsafe(
                self._close_writer, channel.writer
            )
        except RuntimeError:  # pragma: no cover - loop raced shut
            pass

    # -- Transport surface ---------------------------------------------------

    def _prune_lobby_locked(self) -> None:
        while self._lobby and self._lobby[0].closed:
            self._lobby.popleft()

    def capacity(self) -> int:
        with self._cond:
            self._prune_lobby_locked()
            return len(self._lobby)

    def wait_for_capacity(self, timeout: Optional[float] = None) -> bool:
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while True:
                self._prune_lobby_locked()
                if self._lobby:
                    return True
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)

    def spawn(self, worker_id, generation, entry, args, timeout=None):
        deadline = time.monotonic() + (timeout or 0.0)
        with self._cond:
            while True:
                self._prune_lobby_locked()
                if self._lobby:
                    channel = self._lobby.popleft()
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportCapacityError(
                        f"no registered agent slot to bind worker "
                        f"{worker_id} (lobby empty; start agents with "
                        f"'repro agent {self._address_hint()}')"
                    )
                self._cond.wait(remaining)
            channel.bound = (worker_id, generation)
            # The liveness window opens at bind: a slot may have sat in
            # the lobby far longer than interval * misses.
            channel.last_ack = time.monotonic()
        self._send_async(
            channel, ("spawn", worker_id, generation, entry, tuple(args))
        )
        self._trace(
            "bind",
            worker=worker_id,
            generation=generation,
            agent=channel.info.get("agent"),
            slot=channel.info.get("slot"),
        )
        return RemoteEndpoint(channel, worker_id, generation)

    def _address_hint(self) -> str:
        if self.address is None:
            return f"{self.host}:{self.port}"
        return f"{self.address[0]}:{self.address[1]}"

    def wait(self, endpoints, timeout=None):
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while True:
                ready = [
                    endpoint
                    for endpoint in endpoints
                    if endpoint.channel.inbox or endpoint.channel.closed
                ]
                if ready:
                    return ready
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)

    def reap(self, endpoint) -> None:
        self._close_channel(endpoint.channel)

    def shutdown(self, endpoints) -> None:
        for endpoint in endpoints:
            try:
                endpoint.send("stop")
            except (BrokenPipeError, OSError):
                pass
        # Give cooperative stops a moment to flush before closing.
        stop_deadline = time.monotonic() + 5.0
        for endpoint in endpoints:
            endpoint.poll(max(0.0, stop_deadline - time.monotonic()))
            endpoint.close()

    def close(self) -> None:
        """Stop the server loop and drop every connection."""
        import asyncio

        with self._cond:
            self._stopping = True
            channels = list(self._channels)
            self._lobby.clear()
            self._cond.notify_all()
        loop, self._loop = self._loop, None
        if loop is None or loop.is_closed():
            return

        def stop():
            for channel in channels:
                self._close_writer(channel.writer)
            if self._server is not None:
                for listener in self._server.sockets:
                    try:
                        unregister_fork_unsafe_fd(listener.fileno())
                    except (OSError, ValueError):  # pragma: no cover
                        pass
                self._server.close()
            loop.stop()

        try:
            loop.call_soon_threadsafe(stop)
        except RuntimeError:  # pragma: no cover - loop raced shut
            pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        for channel in channels:
            channel.mark_closed()


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` with validation."""
    host, _, port = address.rpartition(":")
    if not host or not port:
        raise TransportError(
            f"expected HOST:PORT, got {address!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise TransportError(
            f"port in {address!r} is not an integer"
        ) from None
