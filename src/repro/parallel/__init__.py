"""Distributed (master/slave) simulation — Fig. 3 of the paper.

BigHouse parallelizes *measurement*, not the event loop: a master runs
warm-up + calibration once and fixes the histogram bin scheme; each slave
then runs an independent replica of the simulation under a unique random
seed (its own warm-up, its own lag calibration) and streams accepted
observations into a local histogram.  The master monitors the aggregate
accepted-sample size, signals convergence when Eqs. 2-3 are satisfied by
the merged sample, and reduces the slave histograms into final estimates
— "a single program executed with high fan-out ... After completion,
their results are then merged (map/reduce)".

Because each slave must burn its own warm-up + 5000-observation
calibration before contributing samples, calibration is the Amdahl
bottleneck that limits speedup beyond ~16 slaves (Fig. 10).

Backends: ``serial`` (in-process, deterministic, used in tests),
``process`` (one OS process per slave via :mod:`multiprocessing`), and
``remote`` (slaves hosted by :mod:`repro.parallel.agent` processes on
other machines over the socket transport in
:mod:`repro.parallel.transport` — the paper's 4-hosts × n-slaves
deployment shape).  :mod:`repro.parallel.pool` adds the reusable-pool
mode — persistent workers that accept successive ``configure``
messages instead of dying after one experiment — used by
:mod:`repro.sweep` to amortize spawn cost across a whole parameter
sweep; the pool schedules over either transport.
"""

from repro.parallel.protocol import (
    DeltaTracker,
    MetricTargets,
    ParallelError,
    SlaveReport,
    histogram_delta,
)
from repro.parallel.master import ParallelResult, ParallelSimulation
from repro.parallel.pool import PoolError, PoolJobError, PoolStats, WorkerPool
from repro.parallel.replications import (
    ReplicatedEstimate,
    ReplicationResult,
    run_replications,
)
from repro.parallel.transport import (
    LocalPipeTransport,
    RemoteTransport,
    Transport,
    TransportCapacityError,
    TransportError,
    WorkerEndpoint,
)

__all__ = [
    "DeltaTracker",
    "histogram_delta",
    "MetricTargets",
    "SlaveReport",
    "ParallelError",
    "ParallelResult",
    "ParallelSimulation",
    "PoolError",
    "PoolJobError",
    "PoolStats",
    "WorkerPool",
    "ReplicatedEstimate",
    "ReplicationResult",
    "run_replications",
    "LocalPipeTransport",
    "RemoteTransport",
    "Transport",
    "TransportCapacityError",
    "TransportError",
    "WorkerEndpoint",
]
