"""An in-memory fake transport: the remote wire model without sockets.

:class:`InMemoryTransport` runs workers as daemon *threads* inside the
master process, but models the remote transport's frame pipeline
faithfully — per-connection sequence stamping and dedup, an emulated
agent bridge that acks heartbeats independently of the worker, channel
close reasons, and per-direction blackhole flags — so the network-chaos
and liveness machinery (:mod:`repro.parallel.chaos`, heartbeat
monitoring) can be exercised in fast, socket-free unit tests with the
exact schedule a loopback :class:`~repro.parallel.transport.RemoteTransport`
would see.

What is modeled:

- Worker -> master messages are sequence-stamped by the emulated
  bridge; master-side dedup lives on the channel (disable via
  ``set_raw_delivery`` for chaos wrappers), mirroring the agent bridge
  and ``_AgentChannel`` on the remote path.
- Master -> worker frames pass bridge-side dedup before reaching the
  worker's connection, so a duplicated command never runs twice.
- With ``heartbeat_interval`` set, a monitor thread plays the master's
  ping loop: a live, un-partitioned channel acks every interval (the
  bridge acks even while the worker is busy — no false positive on a
  slow worker), and a channel silent past ``interval * misses`` closes
  with reason ``"liveness timeout"``.
- ``set_partition("in"/"out")`` blackholes one direction *below* the
  heartbeat layer — data and acks/pings alike — reproducing a half-open
  link that only liveness monitoring can detect.

Workers run real entry functions (``_process_slave_main``,
``_pool_worker_main``) against a Connection-like object, so digest
parity against the process/remote backends is testable end to end.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.parallel.transport import (
    CLOSE_LIVENESS,
    FrameSequencer,
    Transport,
    WorkerEndpoint,
    raise_for_close,
)


class _WorkerConn:
    """The worker-thread side of one channel (Connection-like)."""

    def __init__(self, channel: "_MemoryChannel"):
        self._channel = channel
        self._cond = threading.Condition()
        self._items: Deque[object] = deque()
        self._closed = False

    # -- master/bridge side --------------------------------------------------

    def deliver(self, message: object) -> None:
        with self._cond:
            if self._closed:
                return
            self._items.append(message)
            self._cond.notify_all()

    def shut(self) -> None:
        """Close the worker-facing end (EOF on the next recv)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- worker side (the Connection protocol entries use) -------------------

    def send(self, obj: object) -> None:
        self._channel.from_worker(obj)

    def recv(self) -> object:
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if self._items:
                return self._items.popleft()
        raise EOFError("connection closed")

    def poll(self, timeout: Optional[float] = None) -> bool:
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while not self._items and not self._closed:
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def close(self) -> None:
        self.shut()
        self._channel.mark_closed()


class _MemoryChannel:
    """Master-side state for one in-memory worker connection.

    The structural twin of ``_AgentChannel``: inbox + closed flag +
    close reason + dedup sequencer under the transport's condition
    variable, plus the emulated bridge (out-stamping of worker sends,
    in-dedup of master commands) and the partition blackhole flags.
    """

    def __init__(self, transport: "InMemoryTransport", worker_id: int,
                 generation: int):
        self.transport = transport
        self.worker_id = worker_id
        self.generation = generation
        self.inbox: Deque[object] = deque()
        self.closed = False
        self.close_reason: Optional[str] = None
        self.dedup = True
        self.sequencer = FrameSequencer()       # master-side in-dedup
        self.bridge_out = FrameSequencer()      # bridge stamps worker sends
        self.bridge_in = FrameSequencer()       # bridge dedups commands
        self.blackhole_in = False
        self.blackhole_out = False
        self.last_ack = time.monotonic()
        self.conn = _WorkerConn(self)
        self.thread: Optional[threading.Thread] = None

    # -- frame pipeline ------------------------------------------------------

    def to_worker(self, frame: object) -> None:
        """One master->worker frame through the emulated bridge."""
        if self.blackhole_out:
            return
        accepted, message = self.bridge_in.accept(frame)
        if not accepted:
            return
        self.conn.deliver(message)

    def from_worker(self, obj: object) -> None:
        """One worker send, bridge-stamped, onto the master inbox."""
        frame = self.bridge_out.stamp(obj)
        if self.blackhole_in:
            return
        self.push(frame)

    def push(self, frame: object) -> None:
        with self.transport._cond:
            if self.closed:
                return
            if self.dedup:
                accepted, message = self.sequencer.accept(frame)
                if not accepted:
                    return
                self.inbox.append(message)
            else:
                self.inbox.append(frame)
            self.transport._cond.notify_all()

    def mark_closed(self, reason: Optional[str] = None) -> None:
        with self.transport._cond:
            if reason is not None and self.close_reason is None:
                self.close_reason = reason
            self.closed = True
            self.transport._cond.notify_all()


class InMemoryEndpoint(WorkerEndpoint):
    """One in-memory worker incarnation (thread behind a fake bridge)."""

    def __init__(self, channel: _MemoryChannel):
        self.channel = channel
        self.worker_id = channel.worker_id
        self.generation = channel.generation
        self._out_sequencer = FrameSequencer()

    def stamp(self, message: object) -> object:
        return self._out_sequencer.stamp(message)

    def send_frame(self, frame: object) -> None:
        if self.channel.closed:
            raise BrokenPipeError(
                f"in-memory worker {self.worker_id} channel is closed"
            )
        self.channel.to_worker(frame)

    def send(self, message: object) -> None:
        self.send_frame(self.stamp(message))

    def recv(self) -> object:
        return self.recv_raw()

    def recv_raw(self) -> object:
        cond = self.channel.transport._cond
        with cond:
            while not self.channel.inbox and not self.channel.closed:
                cond.wait()
            if self.channel.inbox:
                return self.channel.inbox.popleft()
        raise_for_close(self.channel.close_reason, self.worker_id)

    def poll(self, timeout: Optional[float] = None) -> bool:
        cond = self.channel.transport._cond
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with cond:
            while not self.channel.inbox and not self.channel.closed:
                if deadline is None:
                    cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                cond.wait(remaining)
            return True

    def close(self) -> None:
        self.channel.conn.shut()
        self.channel.mark_closed()

    def set_raw_delivery(self, raw: bool) -> bool:
        with self.channel.transport._cond:
            self.channel.dedup = not raw
        return True

    def set_partition(self, direction: str) -> bool:
        with self.channel.transport._cond:
            if direction == "in":
                self.channel.blackhole_in = True
            else:
                self.channel.blackhole_out = True
        return True

    def inject_close(self, reason: Optional[str] = None) -> bool:
        """Tear the channel down as the chaos layer's crash primitive."""
        self.channel.conn.shut()
        self.channel.mark_closed(reason)
        return True

    def describe(self) -> dict:
        return {
            "transport": "memory",
            "worker": self.worker_id,
            "generation": self.generation,
        }


class InMemoryTransport(Transport):
    """Thread-backed fake of the remote transport's frame pipeline.

    Parameters
    ----------
    heartbeat_interval / heartbeat_misses:
        Same contract as :class:`~repro.parallel.transport.RemoteTransport`:
        when the interval is set, a monitor thread acks every live
        un-partitioned channel each interval and closes a channel
        silent past ``interval * misses`` with reason
        ``"liveness timeout"``.
    """

    kind = "memory"
    elastic = False

    def __init__(
        self,
        heartbeat_interval: Optional[float] = None,
        heartbeat_misses: int = 3,
    ):
        super().__init__()
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self._cond = threading.Condition()
        self._channels: List[_MemoryChannel] = []
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self.heartbeat_interval is not None and self._monitor is None:
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="repro-memory-heartbeat",
                daemon=True,
            )
            self._monitor.start()

    def _monitor_loop(self) -> None:
        """The master's heartbeat loop, played against fake bridges."""
        window = self.heartbeat_interval * self.heartbeat_misses
        while not self._stopping.wait(self.heartbeat_interval):
            now = time.monotonic()
            with self._cond:
                channels = [c for c in self._channels if not c.closed]
            for channel in channels:
                if not channel.blackhole_out and not channel.blackhole_in:
                    # Ping delivered and ack returned: the emulated
                    # bridge answers whether or not the worker thread
                    # is busy, exactly like the real agent bridge — so
                    # an ack-capable channel can never time out, even
                    # when this thread's own tick arrives late.
                    channel.last_ack = now
                elif now - channel.last_ack > window:
                    channel.conn.shut()
                    channel.mark_closed(CLOSE_LIVENESS)
                    self._trace(
                        "liveness_timeout",
                        worker=channel.worker_id,
                        generation=channel.generation,
                        silent_for=now - channel.last_ack,
                    )

    # -- Transport surface ---------------------------------------------------

    def spawn(self, worker_id, generation, entry, args, timeout=None):
        self.start()
        channel = _MemoryChannel(self, worker_id, generation)

        def run_worker():
            try:
                entry(channel.conn, *args)
            except EOFError:
                pass
            finally:
                channel.mark_closed()

        thread = threading.Thread(
            target=run_worker,
            name=f"repro-memory-worker-{worker_id}.{generation}",
            daemon=True,
        )
        channel.thread = thread
        with self._cond:
            self._channels.append(channel)
        thread.start()
        self._trace(
            "spawn", backend="memory", worker=worker_id,
            generation=generation,
        )
        return InMemoryEndpoint(channel)

    def wait(self, endpoints, timeout=None):
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while True:
                ready = [
                    endpoint
                    for endpoint in endpoints
                    if endpoint.channel.inbox or endpoint.channel.closed
                ]
                if ready:
                    return ready
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)

    def capacity(self) -> int:
        # Threads are always spawnable, like forks on the local
        # transport.
        return 1

    def reap(self, endpoint) -> None:
        endpoint.close()
        thread = endpoint.channel.thread
        if thread is not None:
            thread.join(timeout=5.0)

    def shutdown(self, endpoints) -> None:
        for endpoint in endpoints:
            try:
                endpoint.send("stop")
            except (BrokenPipeError, OSError):
                pass
        for endpoint in endpoints:
            thread = endpoint.channel.thread
            if thread is not None:
                thread.join(timeout=10.0)
            endpoint.close()

    def close(self) -> None:
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        with self._cond:
            channels = list(self._channels)
            self._channels.clear()
        for channel in channels:
            channel.conn.shut()
            channel.mark_closed()
