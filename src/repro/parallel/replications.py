"""Independent replications: the other classic variance-reduction mode.

The master/slave protocol (Fig. 3) shares one convergence target across
slaves.  *Independent replications* is the simpler textbook alternative:
run the same experiment R times under different seeds to completion,
then combine the R independent point estimates.  It costs R full
warm-up+calibration+convergence runs (no aggregate-size early stop), but
the across-replication variance gives a model-free confidence interval
that does not rest on the lag-spacing independence argument at all —
making it the natural *cross-check* of the in-run CIs (and of the whole
statistics pipeline, which is how the test suite uses it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.confidence import z_value
from repro.engine.experiment import Experiment
from repro.faults.recovery import derive_seed


@dataclass
class ReplicatedEstimate:
    """Combined estimate of one metric across replications."""

    name: str
    values: List[float]
    confidence: float = 0.95

    @property
    def replications(self) -> int:
        """Number of replications combined."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Grand mean across replications."""
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Across-replication sample standard deviation."""
        n = len(self.values)
        if n < 2:
            raise ValueError("need >= 2 replications for a variance")
        grand = self.mean
        return math.sqrt(
            sum((v - grand) ** 2 for v in self.values) / (n - 1)
        )

    @property
    def confidence_interval(self) -> tuple:
        """CI on the grand mean from across-replication variance."""
        half = z_value(self.confidence) * self.std / math.sqrt(
            len(self.values)
        )
        return (self.mean - half, self.mean + half)


@dataclass
class ReplicationResult:
    """Outcome of a replicated study."""

    estimates: Dict[str, ReplicatedEstimate]
    all_converged: bool
    total_events: int
    seeds: List[int] = field(default_factory=list)
    #: Seeds whose replication raised and was retried (or abandoned);
    #: empty for a fault-free study.
    failed_seeds: List[int] = field(default_factory=list)

    def __getitem__(self, name: str) -> ReplicatedEstimate:
        return self.estimates[name]


def run_replications(
    factory: Callable[..., Experiment],
    replications: int = 5,
    base_seed: int = 0,
    factory_kwargs: Optional[dict] = None,
    metric_value: str = "mean",
    quantile: Optional[float] = None,
    max_events: Optional[int] = None,
    max_retries: int = 0,
) -> ReplicationResult:
    """Run ``factory(seed, **kwargs)`` to convergence R times and combine.

    ``metric_value`` selects what is extracted per replication: the
    metric ``"mean"`` (default) or ``"quantile"`` (then ``quantile``
    names which one).

    ``max_retries`` extra attempts are made per replication when the
    factory or the run itself raises: each retry draws a fresh seed
    derived from the failed one (generation-style, via
    :func:`repro.faults.recovery.derive_seed`) so a seed-dependent
    crash is not simply replayed.  Failed seeds are reported on
    ``ReplicationResult.failed_seeds``; a replication that exhausts its
    attempts re-raises its last error.
    """
    if replications < 2:
        raise ValueError(f"need >= 2 replications, got {replications}")
    if metric_value not in ("mean", "quantile"):
        raise ValueError(f"unknown metric_value {metric_value!r}")
    if metric_value == "quantile" and quantile is None:
        raise ValueError("metric_value='quantile' needs quantile=")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    kwargs = dict(factory_kwargs or {})
    values: Dict[str, List[float]] = {}
    seeds = []
    failed_seeds: List[int] = []
    all_converged = True
    total_events = 0
    confidence = 0.95
    for replication in range(replications):
        seed = base_seed + 7919 * (replication + 1)  # distinct primes apart
        for attempt in range(max_retries + 1):
            try:
                experiment = factory(seed=seed, **kwargs)
                result = experiment.run(max_events=max_events)
                break
            except Exception:
                failed_seeds.append(seed)
                if attempt == max_retries:
                    raise
                seed = derive_seed(seed, replication, attempt + 1)
        seeds.append(seed)
        confidence = experiment.confidence
        all_converged = all_converged and result.converged
        total_events += result.events_processed
        for name, estimate in result.estimates.items():
            if metric_value == "mean":
                value = estimate.mean
            else:
                value = estimate.quantiles.get(quantile)
            if value is None:
                raise ValueError(
                    f"metric {name!r} has no {metric_value} "
                    f"(quantile={quantile}) in replication {replication}"
                )
            values.setdefault(name, []).append(value)
    estimates = {
        name: ReplicatedEstimate(name, series, confidence)
        for name, series in values.items()
    }
    return ReplicationResult(
        estimates=estimates,
        all_converged=all_converged,
        total_events=total_events,
        seeds=seeds,
        failed_seeds=failed_seeds,
    )
