"""ChaosTransport: seeded network-fault injection at the frame boundary.

Wraps any framed transport (remote TCP or the in-memory fake) and
applies a :class:`~repro.faults.netplan.NetFaultPlan` to the frames
crossing it — delaying, dropping, duplicating, corrupting, partitioning,
or tearing down connections exactly where the plan says, and nowhere
else.  The wrapped transport is untouched for workers the plan does not
target.

Layering
--------

The chaos endpoint sits *between* the wire and the master's dedup::

    worker -> bridge(stamp) -> wire -> [chaos faults] -> dedup -> master
    master -> stamp -> [chaos faults] -> wire -> bridge(dedup) -> worker

On the inbound path the wrapped endpoint is switched to *raw delivery*
(``set_raw_delivery(True)``): the chaos layer receives stamped frames
before deduplication, applies the scheduled fault, then runs its own
:class:`~repro.parallel.transport.FrameSequencer` — so an injected
duplicate genuinely exercises the dedup that protects digests from a
double-merged report.  On the outbound path ``stamp``/``send_frame``
are split for the same reason: a duplicate sends the *same* stamped
frame twice and the agent bridge must discard the copy.

Fault ordinals count *sequenced data frames only*, per direction, per
worker incarnation — heartbeat traffic is unsequenced and invisible to
plans, so a plan addresses the same frame whether or not liveness
monitoring is enabled, and replays identically on the remote loopback
and in-memory backends.

No fault blocks the caller: inbound delays are due-time holds released
by ``poll``/``wait``/``recv``; outbound delays ride a ``threading.Timer``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.faults.netplan import NetFaultPlan, NetFaultSpec
from repro.parallel.transport import (
    CLOSE_CORRUPT,
    FrameError,
    FrameSequencer,
    Transport,
    TransportError,
    WorkerEndpoint,
    is_sequenced,
)


class ChaosEndpoint(WorkerEndpoint):
    """One worker endpoint with scheduled faults on its frame stream."""

    def __init__(self, inner: WorkerEndpoint,
                 specs: Tuple[NetFaultSpec, ...], trace):
        self.inner = inner
        self.worker_id = inner.worker_id
        self.generation = inner.generation
        self._faults = {
            (spec.direction, spec.round): spec for spec in specs
        }
        self._out_ordinal = 0
        self._in_ordinal = 0
        self._sequencer = FrameSequencer()
        #: Post-fault, post-dedup messages deliverable right now.  The
        #: readiness surface (poll/wait) reflects THIS queue, never the
        #: raw inbox — a duplicate that dedup will discard must not make
        #: the endpoint look ready (the master would block on recv).
        self._ready: Deque[object] = deque()
        #: Delay-in holds: ``(due_monotonic, raw_frame)`` in arrival order.
        self._held: List[Tuple[float, object]] = []
        #: Terminal inbound error (EOF family or injected FrameError),
        #: raised by recv once the ready queue drains.
        self._error: Optional[BaseException] = None
        self._trace = trace

    # -- outbound ------------------------------------------------------------

    def send(self, message: object) -> None:
        frame = self.inner.stamp(message)
        self._out_ordinal += 1
        spec = self._faults.get(("out", self._out_ordinal))
        if spec is None:
            self.inner.send_frame(frame)
            return
        self._trace(
            "net_fault", fault=spec.kind, direction="out",
            worker=self.worker_id, generation=self.generation,
            round=self._out_ordinal,
        )
        if spec.kind == "delay":
            timer = threading.Timer(
                spec.delay, self._late_send, args=(frame,)
            )
            timer.daemon = True
            timer.start()
        elif spec.kind == "drop":
            pass  # the sequence number is consumed; the frame vanishes
        elif spec.kind == "duplicate":
            self.inner.send_frame(frame)
            self.inner.send_frame(frame)
        elif spec.kind == "partition":
            self.inner.set_partition("out")
        elif spec.kind == "agent_crash":
            self.inner.inject_close(None)
            raise BrokenPipeError(
                f"worker {self.worker_id}: injected agent crash"
            )
        else:  # pragma: no cover - spec validation pins directions
            raise TransportError(
                f"net fault kind {spec.kind!r} cannot apply outbound"
            )

    def _late_send(self, frame: object) -> None:
        try:
            self.inner.send_frame(frame)
        except (BrokenPipeError, TransportError, OSError):
            pass  # the worker died while the frame was in flight

    # -- inbound -------------------------------------------------------------

    def _pump(self) -> None:
        """Drain raw frames from the wire, applying scheduled faults."""
        while self._error is None:
            if not self.inner.poll(0):
                return
            try:
                frame = self.inner.recv_raw()
            except (EOFError, TransportError, ConnectionError, OSError) as error:
                self._error = error
                return
            if is_sequenced(frame):
                self._in_ordinal += 1
                spec = self._faults.get(("in", self._in_ordinal))
            else:
                spec = None
            if spec is None:
                self._admit(frame)
                continue
            self._trace(
                "net_fault", fault=spec.kind, direction="in",
                worker=self.worker_id, generation=self.generation,
                round=self._in_ordinal,
            )
            if spec.kind == "delay":
                self._held.append(
                    (time.monotonic() + spec.delay, frame)
                )
            elif spec.kind == "drop":
                pass
            elif spec.kind == "duplicate":
                self._admit(frame)
                self._admit(frame)
            elif spec.kind == "corrupt":
                self._error = FrameError(
                    f"injected corrupt frame from worker "
                    f"{self.worker_id}",
                    worker_id=self.worker_id,
                )
                self.inner.inject_close(CLOSE_CORRUPT)
            elif spec.kind == "partition":
                self.inner.set_partition("in")
            else:  # pragma: no cover - spec validation pins directions
                raise TransportError(
                    f"net fault kind {spec.kind!r} cannot apply inbound"
                )

    def _admit(self, frame: object) -> None:
        accepted, message = self._sequencer.accept(frame)
        if accepted:
            self._ready.append(message)

    def _release_due(self) -> None:
        if not self._held:
            return
        now = time.monotonic()
        still_held = []
        for due, frame in self._held:
            if due <= now:
                self._admit(frame)
            else:
                still_held.append((due, frame))
        self._held = still_held

    def _next_due(self) -> Optional[float]:
        if not self._held:
            return None
        return min(due for due, _ in self._held)

    def _ready_now(self) -> bool:
        """Deliverable message, terminal error, or closed wire."""
        return bool(
            self._ready
            or self._error is not None
            or self.inner.poll(0)  # post-pump: only true when closed
        )

    def recv(self) -> object:
        while True:
            self._pump()
            self._release_due()
            if self._ready:
                return self._ready.popleft()
            if self._error is not None:
                raise self._error
            due = self._next_due()
            if due is not None:
                self.inner.poll(max(due - time.monotonic(), 0.001))
            else:
                self.inner.poll(None)

    def poll(self, timeout: Optional[float] = None) -> bool:
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            self._pump()
            self._release_due()
            if self._ready or self._error is not None:
                return True
            slices = []
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                slices.append(remaining)
            due = self._next_due()
            if due is not None:
                slices.append(max(due - time.monotonic(), 0.001))
            self.inner.poll(min(slices) if slices else None)

    def close(self) -> None:
        self.inner.close()

    def describe(self) -> dict:
        described = self.inner.describe()
        described["chaos"] = sorted(
            f"{direction}:{round_number}:{spec.kind}"
            for (direction, round_number), spec in self._faults.items()
        )
        return described


class ChaosTransport(Transport):
    """A transport decorator applying a :class:`NetFaultPlan`.

    Workers the plan targets get a :class:`ChaosEndpoint`; every framed
    worker is wrapped (raw delivery + chaos-side dedup) so the dedup
    path under test is identical for faulted and clean workers.
    Spawning a *targeted* worker on a transport without a frame layer
    (local pipes) raises :class:`TransportError` — silently skipping
    scheduled faults would let a chaos run claim coverage it never had.
    """

    def __init__(self, inner: Transport, plan: NetFaultPlan):
        super().__init__()
        self.inner = inner
        self.plan = plan

    @property
    def kind(self) -> str:  # type: ignore[override]
        return f"chaos+{self.inner.kind}"

    @property
    def elastic(self) -> bool:  # type: ignore[override]
        return self.inner.elastic

    def attach_tracer(self, tracer) -> None:
        self._tracer = tracer
        self.inner.attach_tracer(tracer)

    def start(self) -> None:
        self.inner.start()

    def spawn(self, worker_id, generation, entry, args, timeout=None):
        endpoint = self.inner.spawn(
            worker_id, generation, entry, args, timeout=timeout
        )
        specs = self.plan.for_worker(worker_id, generation)
        if not endpoint.set_raw_delivery(True):
            if specs:
                raise TransportError(
                    f"net fault plan targets worker {worker_id} but "
                    f"transport {self.inner.kind!r} has no frame "
                    "layer; use the remote or memory backend"
                )
            return endpoint
        return ChaosEndpoint(endpoint, specs, self._trace)

    def wait(self, endpoints, timeout=None):
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            ready = []
            for endpoint in endpoints:
                if isinstance(endpoint, ChaosEndpoint):
                    endpoint._pump()
                    endpoint._release_due()
                    if endpoint._ready_now():
                        ready.append(endpoint)
                elif endpoint.poll(0):
                    ready.append(endpoint)
            if ready:
                return ready
            slices = []
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                slices.append(remaining)
            dues = [
                endpoint._next_due()
                for endpoint in endpoints
                if isinstance(endpoint, ChaosEndpoint)
            ]
            dues = [due for due in dues if due is not None]
            if dues:
                slices.append(max(min(dues) - time.monotonic(), 0.001))
            self.inner.wait(
                [
                    endpoint.inner
                    if isinstance(endpoint, ChaosEndpoint)
                    else endpoint
                    for endpoint in endpoints
                ],
                timeout=min(slices) if slices else None,
            )

    def capacity(self) -> int:
        return self.inner.capacity()

    def wait_for_capacity(self, timeout: Optional[float] = None) -> bool:
        return self.inner.wait_for_capacity(timeout)

    def reap(self, endpoint) -> None:
        self.inner.reap(
            endpoint.inner
            if isinstance(endpoint, ChaosEndpoint)
            else endpoint
        )

    def shutdown(self, endpoints) -> None:
        self.inner.shutdown(
            [
                endpoint.inner
                if isinstance(endpoint, ChaosEndpoint)
                else endpoint
                for endpoint in endpoints
            ]
        )

    def close(self) -> None:
        self.inner.close()
