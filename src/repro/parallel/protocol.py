"""Wire-format objects exchanged between master and slaves.

Everything here is plain data (picklable, no live simulation state): the
master broadcasts bin schemes + metric targets; slaves report their
measurement progress each round in one of two forms:

- **full reports** — the complete local histogram every round.
  Idempotent (the master just re-sums), but both the wire payload and
  the master's merge cost grow with the *cumulative* sample.
- **delta reports** (default) — only the bin counts and moment sums
  accumulated *since the previous report*.  The master folds each delta
  into persistent merged histograms (:meth:`Histogram.merge_payload`),
  making per-round master work proportional to the round, not the run.
  ``min_seen``/``max_seen`` are not delta-able and always travel as
  absolute running extrema; their min/max merge is idempotent, so
  repeating them every round is harmless.

Both forms produce identical merged integer bin counts; the float moment
sums telescope (``Σ (sᵢ - sᵢ₋₁) = s_n``) up to rounding, so estimates
agree to float tolerance.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.histogram import BinScheme, Histogram
from repro.core.statistic import Statistic


class ParallelError(RuntimeError):
    """Raised for parallel-protocol failures."""


# -- cause codes ----------------------------------------------------------
#
# Every slave death is attributed with one of these machine-readable
# cause codes; they appear in trace records, on
# ``ParallelResult.failure_causes``, and in checkpoints.  Free-form
# detail (the OS error text, the fault spec) is appended after ": ".

#: The slave's pipe closed or reset before its report arrived.
CAUSE_PIPE_CLOSED = "pipe closed"
#: Sending the round's chunk command failed (slave already gone).
CAUSE_SEND_FAILED = "send failed"
#: No report within the round deadline; the pipe is still open (a hung,
#: wedged, or silently dropped slave).
CAUSE_HEARTBEAT_TIMEOUT = "heartbeat timeout"
#: The report arrived but its histogram payload failed validation.
CAUSE_CORRUPT_PAYLOAD = "corrupt payload"
#: A FaultPlan injection surfaced directly (serial backend).
CAUSE_INJECTED = "injected fault"
#: An elastic-transport worker's connection dropped — its host agent
#: left the fleet (or died); the slot returns to the join queue.
CAUSE_WORKER_LEFT = "worker left"
#: Heartbeat monitoring declared the connection dead: no frame and no
#: heartbeat ack within ``heartbeat_interval * heartbeat_misses``
#: seconds — the half-open-partition signature (a clean death closes
#: the socket and surfaces as ``pipe closed`` instead).
CAUSE_LIVENESS_TIMEOUT = "liveness timeout"
#: A wire frame from the worker failed to decode (corrupt length
#: prefix, truncation, or undecodable pickle).
CAUSE_CORRUPT_FRAME = "corrupt frame"
#: A SupervisionPolicy aborted the run: the fleet fell below
#: ``min_workers``.
CAUSE_FLEET_EXHAUSTED = "fleet below minimum"
#: A SupervisionPolicy aborted the run: the overall deadline passed.
CAUSE_DEADLINE_EXCEEDED = "deadline exceeded"


def validate_report_payload(
    payload: dict, scheme: Tuple[float, float, int]
) -> Optional[str]:
    """Why one reported histogram payload must not be merged, or None.

    The master calls this *before* folding a report so that a corrupt
    payload is attributed to its slave (cause ``corrupt payload``) and
    excluded, instead of surfacing later as an unattributed
    :class:`~repro.core.histogram.HistogramError` mid-merge.  Checks
    mirror ``Histogram.merge_payload``'s reject-before-mutate contract:
    scheme identity, counts length, non-negative masses (cumulative bin
    counts can only grow, so even a *delta* payload is non-negative),
    and the count invariant.
    """
    try:
        if tuple(payload["scheme"]) != tuple(scheme):
            return f"scheme mismatch: {payload['scheme']} vs {scheme}"
        counts = payload["counts"]
        if len(counts) != scheme[2]:
            return (
                f"expected {scheme[2]} bin counts, got {len(counts)}"
            )
        underflow, overflow = payload["underflow"], payload["overflow"]
        if underflow < 0 or overflow < 0 or any(c < 0 for c in counts):
            return "negative bin mass"
        total = sum(counts) + underflow + overflow
        if total != payload["count"]:
            return (
                f"count invariant violated: bins+under+over = {total} "
                f"but count = {payload['count']}"
            )
    except (KeyError, TypeError, ValueError) as error:
        return f"malformed payload: {error!r}"
    return None


@dataclass(frozen=True)
class MetricTargets:
    """Convergence targets for one metric, detached from its Statistic."""

    name: str
    mean_accuracy: Optional[float]
    quantile_targets: Tuple[Tuple[float, float], ...]
    confidence: float
    min_accepted: int

    @classmethod
    def from_statistic(cls, statistic: Statistic) -> "MetricTargets":
        """Snapshot the targets of a live statistic."""
        return cls(
            name=statistic.name,
            mean_accuracy=statistic.mean_accuracy,
            quantile_targets=tuple(sorted(statistic.quantile_targets.items())),
            confidence=statistic.confidence,
            min_accepted=statistic.min_accepted,
        )

    @property
    def quantile_dict(self) -> Dict[float, float]:
        """Targets as the mapping form the convergence functions expect."""
        return dict(self.quantile_targets)


@dataclass
class SlaveReport:
    """One measurement-round report from a slave.

    ``histograms`` maps metric name to a payload dict: the full local
    histogram when ``delta`` is False, or only the counts/moments
    accumulated since the previous report when ``delta`` is True.  The
    scalar progress counters (``events_processed``, ``total_accepted``,
    ``sim_time``) are always absolute.
    """

    slave_id: int
    histograms: Dict[str, dict]  # name -> Histogram.to_payload() (or delta)
    events_processed: int
    sim_time: float
    total_accepted: int
    lags: Dict[str, Optional[int]] = field(default_factory=dict)
    delta: bool = False
    #: Cumulative determinism digest (repro.analysis.sanitizer
    #: SanitizerDigest) when the slave runs sanitized, else None.
    digest: Optional[object] = None

    def histogram(self, name: str) -> Histogram:
        """Materialize one reported histogram (full reports only)."""
        if self.delta:
            raise ParallelError(
                "cannot materialize a delta report as a standalone histogram"
            )
        return Histogram.from_payload(self.histograms[name])


def histogram_delta(current: dict, previous: Optional[dict]) -> dict:
    """Payload holding only what ``current`` accrued beyond ``previous``.

    With no ``previous`` (first report) the delta is the full payload.
    Extrema stay absolute — see the module docstring.
    """
    if previous is None:
        return dict(current)
    if current["scheme"] != previous["scheme"]:
        raise ParallelError(
            f"scheme changed between reports: {previous['scheme']} "
            f"-> {current['scheme']}"
        )
    return {
        "scheme": current["scheme"],
        "counts": [
            now - before
            for now, before in zip(current["counts"], previous["counts"])
        ],
        "underflow": current["underflow"] - previous["underflow"],
        "overflow": current["overflow"] - previous["overflow"],
        "count": current["count"] - previous["count"],
        "sum": current["sum"] - previous["sum"],
        "sum_sq": current["sum_sq"] - previous["sum_sq"],
        "min_seen": current["min_seen"],
        "max_seen": current["max_seen"],
    }


def payload_digest(payload: dict) -> str:
    """Short stable digest of one histogram payload.

    Canonical-JSON + BLAKE2: two payloads digest equal iff their bin
    counts, moments, and extrema are identical — the "byte-identical
    merged histograms" check the checkpoint/resume contract is verified
    against (an interrupted+resumed run must digest equal to an
    uninterrupted one).
    """
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


class DeltaTracker:
    """Slave-side bookkeeping that turns full payloads into deltas.

    One per slave; it remembers the last payload shipped per metric so
    each report carries only the new counts.
    """

    def __init__(self) -> None:
        self._previous: Dict[str, dict] = {}

    def delta_histograms(self, histograms: Dict[str, dict]) -> Dict[str, dict]:
        """Compute per-metric deltas and advance the snapshots."""
        deltas = {}
        for name, payload in histograms.items():
            deltas[name] = histogram_delta(payload, self._previous.get(name))
            self._previous[name] = payload
        return deltas


def scheme_payload(scheme: BinScheme) -> Tuple[float, float, int]:
    """BinScheme -> plain tuple for broadcast."""
    return (scheme.low, scheme.high, scheme.bins)


def scheme_from_payload(payload: Tuple[float, float, int]) -> BinScheme:
    """Inverse of :func:`scheme_payload`."""
    low, high, bins = payload
    return BinScheme(low=low, high=high, bins=bins)
