"""Wire-format objects exchanged between master and slaves.

Everything here is plain data (picklable, no live simulation state): the
master broadcasts bin schemes + metric targets; slaves report their full
local histograms each round (idempotent full-state reports make the
merge trivially restartable — the master just re-sums).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.histogram import BinScheme, Histogram
from repro.core.statistic import Statistic


class ParallelError(RuntimeError):
    """Raised for parallel-protocol failures."""


@dataclass(frozen=True)
class MetricTargets:
    """Convergence targets for one metric, detached from its Statistic."""

    name: str
    mean_accuracy: Optional[float]
    quantile_targets: Tuple[Tuple[float, float], ...]
    confidence: float
    min_accepted: int

    @classmethod
    def from_statistic(cls, statistic: Statistic) -> "MetricTargets":
        """Snapshot the targets of a live statistic."""
        return cls(
            name=statistic.name,
            mean_accuracy=statistic.mean_accuracy,
            quantile_targets=tuple(sorted(statistic.quantile_targets.items())),
            confidence=statistic.confidence,
            min_accepted=statistic.min_accepted,
        )

    @property
    def quantile_dict(self) -> Dict[float, float]:
        """Targets as the mapping form the convergence functions expect."""
        return dict(self.quantile_targets)


@dataclass
class SlaveReport:
    """One measurement-round report from a slave: full local state."""

    slave_id: int
    histograms: Dict[str, dict]  # name -> Histogram.to_payload()
    events_processed: int
    sim_time: float
    total_accepted: int
    lags: Dict[str, Optional[int]] = field(default_factory=dict)

    def histogram(self, name: str) -> Histogram:
        """Materialize one reported histogram."""
        return Histogram.from_payload(self.histograms[name])


def scheme_payload(scheme: BinScheme) -> Tuple[float, float, int]:
    """BinScheme -> plain tuple for broadcast."""
    return (scheme.low, scheme.high, scheme.bins)


def scheme_from_payload(payload: Tuple[float, float, int]) -> BinScheme:
    """Inverse of :func:`scheme_payload`."""
    low, high, bins = payload
    return BinScheme(low=low, high=high, bins=bins)
