"""Host agent for the remote transport: run workers for a master.

One agent process per machine.  It dials the master's
:class:`~repro.parallel.transport.RemoteTransport` and registers
``slots`` worker slots; each slot independently:

1. connects and sends ``("hello", {...})``;
2. waits for a ``("spawn", worker_id, generation, entry, args)`` frame;
3. forks a local worker process running ``entry(pipe_conn, *args)``
   and bridges the pipe to the socket in both directions (the worker
   never knows it is remote);
4. when the worker exits — job done, ``stop`` received, killed by
   chaos injection — tears the bridge down and re-dials, offering the
   master fresh capacity for a respawn or an elastic join.

The spawn frame carries the worker entry point pickled *by reference*
(module + qualname), so the ``repro`` package must be importable on
the agent host at a compatible version.  That, plus pickle on the
wire, is the trusted-cluster assumption documented in
``docs/distributed.md`` — the same assumption ``multiprocessing``
itself makes.

Run one from a shell::

    repro agent 127.0.0.1:9751 --slots 8

or in-process (tests, loopback CI) via :class:`HostAgent`.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import Optional

from repro.faults.recovery import backoff_delay, derive_seed
from repro.parallel.transport import (
    HEARTBEAT_ACK_TAG,
    FrameSequencer,
    _writer_fd,
    encode_frame,
    fork_safe_process,
    is_heartbeat,
    parse_address,
    read_frame,
    register_fork_unsafe_fd,
    unregister_fork_unsafe_fd,
)


def _wake_loop() -> None:
    """No-op scheduled on the agent loop so a stop request wakes it."""


class HostAgent:
    """Own ``slots`` worker slots against one master, until stopped.

    Parameters
    ----------
    address:
        ``(host, port)`` of the master's remote transport.
    slots:
        Worker slots (= max concurrent workers) this agent offers.
    key:
        Shared fleet key echoed in the hello (must match the master's).
    context:
        ``multiprocessing`` start method for worker children.
    reconnect_delay:
        Base delay of the re-dial backoff.  Consecutive failed dials
        back off exponentially from this base (capped at
        ``reconnect_cap``, stretched by up to ``reconnect_jitter`` of
        seeded noise), so a dead or partitioned master is probed a few
        times a minute instead of hammered at 5 Hz forever.  A
        successfully hosted worker resets the backoff.
    reconnect_cap / reconnect_jitter / backoff_seed:
        Backoff tuning: the delay ceiling, the fractional jitter, and
        the seed the jitter derives from (per slot and attempt, so two
        agents with different seeds never dial in lockstep while one
        agent replays identical delays run-to-run).
    max_redial:
        Budget of *consecutive* failed dial attempts per slot; when
        exhausted the slot gives up (the agent exits once every slot
        has).  ``None`` (default) retries forever.
    idle_exit:
        When set, a slot that cannot reach the master (or sits unbound)
        for this many seconds gives up; the agent stops once every slot
        has given up.  Keeps CI smoke jobs from leaking processes.
    """

    def __init__(
        self,
        address,
        slots: int = 1,
        key: Optional[str] = None,
        context: str = "fork",
        reconnect_delay: float = 0.2,
        reconnect_cap: float = 30.0,
        reconnect_jitter: float = 0.1,
        backoff_seed: int = 0,
        max_redial: Optional[int] = None,
        idle_exit: Optional[float] = None,
    ):
        from multiprocessing import get_context

        self.address = tuple(address)
        self.slots = int(slots)
        self.key = key
        self.reconnect_delay = float(reconnect_delay)
        self.reconnect_cap = float(reconnect_cap)
        self.reconnect_jitter = float(reconnect_jitter)
        self.backoff_seed = int(backoff_seed)
        self.max_redial = max_redial
        self.idle_exit = idle_exit
        self.name = f"{socket.gethostname()}:{os.getpid()}"
        self._context = get_context(context)
        self._thread: Optional[threading.Thread] = None
        self._loop = None
        self._stop_event: Optional[threading.Event] = None
        self._done = threading.Event()
        self.workers_hosted = 0
        #: ``(slot, consecutive_failures, delay)`` per backoff taken —
        #: the regression surface for re-dial-storm tests.
        self.backoff_history: list = []
        #: Reject reason when the master refused our registration; the
        #: whole agent stops (every slot shares the key, so retrying
        #: other slots could only be refused the same way).
        self.rejected: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Run the agent on a background thread (in-process use)."""
        if self._thread is not None:
            return
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self.run, name="repro-agent", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        if self._stop_event is not None:
            self._stop_event.set()
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(_wake_loop)
            except RuntimeError:  # pragma: no cover - loop raced shut
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the agent to finish on its own (idle_exit)."""
        return self._done.wait(timeout)

    def run(self) -> None:
        """Drive all slots to completion (blocking; the CLI entry)."""
        import asyncio

        if self._stop_event is None:
            self._stop_event = threading.Event()
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._run_slots())
        finally:
            to_cancel = asyncio.all_tasks(loop)
            for task in to_cancel:
                task.cancel()
            if to_cancel:
                loop.run_until_complete(
                    asyncio.gather(*to_cancel, return_exceptions=True)
                )
            loop.close()
            self._loop = None
            self._done.set()

    async def _run_slots(self) -> None:
        import asyncio

        await asyncio.gather(
            *(self._slot_loop(slot) for slot in range(self.slots))
        )

    # -- one slot ------------------------------------------------------------

    async def _slot_loop(self, slot: int) -> None:
        import asyncio

        idle_since = time.monotonic()
        failures = 0
        while not self._stop_event.is_set():
            if (
                self.idle_exit is not None
                and time.monotonic() - idle_since >= self.idle_exit
            ):
                return
            try:
                hosted = await self._serve_once(slot)
            except (ConnectionError, OSError, EOFError):
                hosted = False
            if hosted:
                idle_since = time.monotonic()
                failures = 0
            else:
                failures += 1
                if self.max_redial is not None and failures >= self.max_redial:
                    return
            if not self._stop_event.is_set():
                await asyncio.sleep(self._redial_delay(slot, failures))

    def _redial_delay(self, slot: int, failures: int) -> float:
        """Pause before the next dial.

        Exponential from ``reconnect_delay`` with deterministic seeded
        jitter (the :func:`~repro.faults.recovery.backoff_delay` math
        respawns already use), so an unreachable master sees a few
        probes a minute, not a 5 Hz storm — and a fleet of agents with
        distinct ``backoff_seed`` values spreads its probes instead of
        dialing in lockstep.
        """
        if failures == 0:
            return self.reconnect_delay
        delay = backoff_delay(
            failures,
            self.reconnect_delay,
            self.reconnect_cap,
            self.reconnect_jitter,
            jitter_seed=derive_seed(self.backoff_seed, slot, failures),
        )
        self.backoff_history.append((slot, failures, delay))
        return delay

    async def _serve_once(self, slot: int) -> bool:
        """Dial, register, host at most one worker.  True if one ran."""
        import asyncio

        reader, writer = await asyncio.open_connection(*self.address)
        # Workers this agent forks (for *any* slot) must not inherit
        # this slot's socket: a duplicate fd in a sibling worker keeps
        # the connection established after we close it, so the master
        # never sees the FIN and a dead worker looks alive.
        fd = _writer_fd(writer)
        if fd is not None:
            register_fork_unsafe_fd(fd)
        try:
            writer.write(
                encode_frame(
                    (
                        "hello",
                        {
                            "agent": self.name,
                            "slot": slot,
                            "key": self.key,
                            "pid": os.getpid(),
                        },
                    )
                )
            )
            await writer.drain()
            while True:
                frame = await self._read_or_stop(reader)
                if not is_heartbeat(frame):
                    break
                # A ping can race the spawn frame right after the master
                # binds this slot; ack it and keep waiting.
                writer.write(encode_frame((HEARTBEAT_ACK_TAG, frame[1])))
                await writer.drain()
            if frame is None:
                return False
            if isinstance(frame, tuple) and frame[0] == "reject":
                self.rejected = str(frame[1])
                self._stop_event.set()
                return False
            if not (
                isinstance(frame, tuple)
                and len(frame) == 5
                and frame[0] == "spawn"
            ):
                return False
            _, worker_id, generation, entry, args = frame
            await self._host_worker(
                reader, writer, worker_id, generation, entry, args
            )
            self.workers_hosted += 1
            return True
        finally:
            if fd is not None:
                unregister_fork_unsafe_fd(fd)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_or_stop(self, reader):
        """Next frame, or None when asked to stop while waiting."""
        import asyncio

        read = asyncio.ensure_future(read_frame(reader))
        try:
            while not read.done():
                if self._stop_event.is_set():
                    read.cancel()
                    return None
                await asyncio.wait({read}, timeout=0.2)
            return read.result()
        except asyncio.CancelledError:  # pragma: no cover
            return None

    async def _host_worker(
        self, reader, writer, worker_id, generation, entry, args
    ) -> None:
        """Fork ``entry(conn, *args)`` and bridge pipe <-> socket."""
        import asyncio

        loop = asyncio.get_running_loop()
        parent_conn, child_conn = self._context.Pipe()
        process = fork_safe_process(self._context, entry, child_conn, args)
        process.start()
        child_conn.close()

        worker_eof = asyncio.Event()
        # Worker -> master frames are sequence-stamped here, at the
        # bridge, so master-side dedup can discard a duplicated or
        # retried frame; the worker itself never sees sequence numbers.
        out_sequencer = FrameSequencer()

        def pipe_readable() -> None:
            # Called by the loop whenever the worker's pipe has data
            # (or EOF).  Forward every pending message to the socket.
            try:
                while parent_conn.poll(0):
                    message = parent_conn.recv()
                    writer.write(encode_frame(out_sequencer.stamp(message)))
            except (EOFError, ConnectionError, OSError):
                worker_eof.set()

        loop.add_reader(parent_conn.fileno(), pipe_readable)
        try:
            socket_pump = asyncio.ensure_future(
                self._pump_socket_to_pipe(reader, writer, parent_conn)
            )
            eof_wait = asyncio.ensure_future(worker_eof.wait())
            try:
                while True:
                    done, _ = await asyncio.wait(
                        {socket_pump, eof_wait},
                        timeout=0.2,
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    if done or self._stop_event.is_set():
                        break
                    if not process.is_alive() and not parent_conn.poll(0):
                        break
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
            finally:
                for task in (socket_pump, eof_wait):
                    task.cancel()
                await asyncio.gather(
                    socket_pump, eof_wait, return_exceptions=True
                )
        finally:
            loop.remove_reader(parent_conn.fileno())
            self._reap(process, parent_conn)

    async def _pump_socket_to_pipe(self, reader, writer, parent_conn) -> None:
        """Forward master frames ("chunk"/"configure" commands, "stop")
        to the worker.

        Heartbeat pings are echoed straight back on the socket — the
        worker pipe never carries them, so a busy (slow-but-alive)
        worker still acks and liveness monitoring raises no false
        positive.  Sequenced frames are deduplicated here so a
        chaos-duplicated command can never run a chunk twice.
        """
        in_sequencer = FrameSequencer()
        while True:
            frame = await read_frame(reader)
            if is_heartbeat(frame):
                try:
                    writer.write(
                        encode_frame((HEARTBEAT_ACK_TAG, frame[1]))
                    )
                    await writer.drain()
                except (ConnectionError, OSError):
                    return
                continue
            accepted, message = in_sequencer.accept(frame)
            if not accepted:
                continue
            try:
                parent_conn.send(message)
            except (BrokenPipeError, OSError):
                return
            if message == "stop":
                return

    def _reap(self, process, parent_conn) -> None:
        try:
            parent_conn.close()
        except OSError:  # pragma: no cover
            pass
        process.join(timeout=10.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - pathological child
            process.kill()
            process.join(timeout=5.0)


def main(argv=None) -> int:
    """``python -m repro.parallel.agent`` / ``repro agent`` entry."""
    parser = argparse.ArgumentParser(
        prog="repro agent",
        description=(
            "Host remote workers for a repro master "
            "(--backend remote)."
        ),
    )
    parser.add_argument(
        "address", help="master transport address, HOST:PORT"
    )
    parser.add_argument(
        "--slots", type=int, default=os.cpu_count() or 1,
        help="worker slots to offer (default: CPU count)",
    )
    parser.add_argument(
        "--transport-key", default=None,
        help="shared fleet key (must match the master's)",
    )
    parser.add_argument(
        "--context", default="fork",
        help="multiprocessing start method for workers",
    )
    parser.add_argument(
        "--reconnect-delay", type=float, default=0.2,
        help="base seconds of the re-dial backoff",
    )
    parser.add_argument(
        "--reconnect-cap", type=float, default=30.0,
        help="ceiling of the exponential re-dial backoff",
    )
    parser.add_argument(
        "--backoff-seed", type=int, default=0,
        help=(
            "seed for the deterministic re-dial jitter (give each "
            "agent host a distinct value to spread probes)"
        ),
    )
    parser.add_argument(
        "--max-redial", type=int, default=None,
        help=(
            "give a slot up after this many consecutive failed dial "
            "attempts (default: retry forever)"
        ),
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None,
        help=(
            "exit after this many seconds without hosting a worker "
            "(useful in CI; default: run forever)"
        ),
    )
    options = parser.parse_args(argv)
    address = parse_address(options.address)
    agent = HostAgent(
        address,
        slots=options.slots,
        key=options.transport_key,
        context=options.context,
        reconnect_delay=options.reconnect_delay,
        reconnect_cap=options.reconnect_cap,
        backoff_seed=options.backoff_seed,
        max_redial=options.max_redial,
        idle_exit=options.idle_exit,
    )
    print(
        f"repro-agent {agent.name}: offering {agent.slots} slot(s) "
        f"to {address[0]}:{address[1]}",
        file=sys.stderr,
    )
    try:
        agent.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    if agent.rejected is not None:
        print(
            f"repro-agent {agent.name}: master rejected registration: "
            f"{agent.rejected}",
            file=sys.stderr,
        )
        return 1
    print(
        f"repro-agent {agent.name}: exiting "
        f"({agent.workers_hosted} worker(s) hosted)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
