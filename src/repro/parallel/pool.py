"""A persistent, reusable slave pool for multi-experiment orchestration.

The classic master (:mod:`repro.parallel.master`) spawns slaves for
*one* experiment and tears them down when it converges.  A sweep — a
family of tens of experiment points — would pay that full process
spawn cost per point and share nothing.  :class:`WorkerPool` is the
reusable-pool mode: slaves are spawned once and accept successive
``("configure", job_id, payload)`` messages, each building and running
a complete experiment point before reporting its result and waiting for
the next configure — so interpreter start-up, imports, and fork cost
are paid once per *sweep*, not once per *point*.

Scheduling is dynamic (work stealing in the master-queue sense): every
idle worker immediately pulls the next pending point, so a slow point
on one worker never serializes the rest of the grid behind it.  The
result of a point is a pure function of its job payload, so scheduling
order cannot affect results — determinism is preserved by construction.

Fault tolerance mirrors the master's contract: every recv carries a
deadline, every death gets a machine-readable cause code from
:mod:`repro.parallel.protocol`, a dead worker's in-flight point is
requeued (a death costs one point's recompute, not the sweep), and a
:class:`~repro.faults.recovery.RespawnPolicy` replaces the worker under
a fresh generation.  A seeded :class:`~repro.faults.plan.FaultPlan`
injects deterministic failures for chaos tests; ``round`` in a spec
addresses the n-th configure of one worker incarnation (1-based).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_ready
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.injector import KILL_EXIT_STATUS
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.recovery import RespawnPolicy, derive_seed
from repro.parallel.protocol import (
    CAUSE_CORRUPT_PAYLOAD,
    CAUSE_HEARTBEAT_TIMEOUT,
    CAUSE_PIPE_CLOSED,
    CAUSE_SEND_FAILED,
    ParallelError,
)


class PoolError(ParallelError):
    """Raised when the pool cannot finish the submitted work."""


class PoolJobError(PoolError):
    """A job raised inside a worker (deterministic; never retried)."""


# -- worker-side fault execution ----------------------------------------------


def _find_fault(
    specs: Tuple[FaultSpec, ...], round_number: int, kind: str,
    phase: Optional[str] = None,
) -> Optional[FaultSpec]:
    for spec in specs:
        if spec.round != round_number or spec.kind != kind:
            continue
        if phase is not None and spec.phase != phase:
            continue
        return spec
    return None


def corrupt_result(payload: dict) -> dict:
    """Deterministically mangle a result payload.

    Mirrors the shapes real corruption takes on the wire: the integrity
    digest no longer matches and a required key is truncated away, so
    the master-side validator must catch it before the result is
    accepted (never silently served).
    """
    mangled = dict(payload)
    mangled["point_digest"] = "0" * 32
    mangled.pop("converged", None)
    return mangled


def _pool_worker_main(conn, worker_id, runner, faults=()):
    """One pool slave: configure → run → report, until told to stop."""
    rounds = 0
    while True:
        message = conn.recv()
        if message == "stop":
            conn.close()
            return
        if not (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == "configure"
        ):  # pragma: no cover - protocol guard
            raise PoolError(f"unknown pool command: {message!r}")
        _, job_id, job = message
        rounds += 1
        if _find_fault(faults, rounds, "kill", phase="pre_run") is not None:
            os._exit(KILL_EXIT_STATUS)
        hang = _find_fault(faults, rounds, "hang")
        if hang is not None:
            time.sleep(hang.delay)
        try:
            payload = runner(job)
        except Exception as error:  # simlint: disable=swallow-exception
            # Deliberate boundary: the exception is serialized to the
            # master, which raises PoolJobError with this context.
            conn.send(("error", job_id, f"{type(error).__name__}: {error}"))
            continue
        if _find_fault(faults, rounds, "kill", phase="pre_report") is not None:
            os._exit(KILL_EXIT_STATUS)
        if _find_fault(faults, rounds, "drop_report") is not None:
            continue  # silent: the master's deadline must catch it
        if _find_fault(faults, rounds, "corrupt_payload") is not None:
            payload = corrupt_result(payload)
        conn.send(("result", job_id, payload))
        if _find_fault(faults, rounds, "kill", phase="post_report") is not None:
            os._exit(KILL_EXIT_STATUS)


# -- master side --------------------------------------------------------------


@dataclass
class PoolStats:
    """Health accounting for one pool lifetime."""

    n_workers: int = 0
    jobs_completed: int = 0
    jobs_requeued: int = 0
    deaths: int = 0
    restarts: int = 0
    #: worker id -> cause code for workers left permanently dead.
    failure_causes: Dict[int, str] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when at least one dead worker was never replaced."""
        return bool(self.failure_causes)


class WorkerPool:
    """A fleet of persistent experiment workers.

    Parameters
    ----------
    runner:
        Module-level (picklable) ``runner(job: dict) -> dict`` executed
        for every configured job inside the worker process.
    n_workers:
        Fleet size.
    master_seed:
        Seeds the deterministic respawn-backoff jitter.
    job_timeout:
        Per-job report deadline in host seconds; a worker silent past
        it is declared dead (cause ``heartbeat timeout``) and its job
        requeued.  ``None`` disables the deadline.
    respawn:
        :class:`RespawnPolicy` for replacing dead workers, or ``None``
        to shrink the fleet on each death (the sweep still finishes on
        survivors; ``PoolError`` only if every worker dies).
    fault_plan:
        Injected failures for chaos runs; specs address
        ``(worker id, generation, n-th configure)``.
    validate:
        Optional master-side ``validate(job, payload) -> Optional[str]``
        returning a rejection reason; a rejected result condemns the
        worker (cause ``corrupt payload``) and requeues the job.
    tracer:
        Optional :class:`repro.observability.Tracer`; the pool emits
        ``pool/*`` events (spawn, dead, respawn, drain).
    """

    def __init__(
        self,
        runner: Callable[[dict], dict],
        n_workers: int = 4,
        master_seed: int = 0,
        job_timeout: Optional[float] = 600.0,
        respawn: Optional[RespawnPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        validate: Optional[Callable[[dict, dict], Optional[str]]] = None,
        tracer=None,
        context: str = "fork",
    ):
        if n_workers < 1:
            raise PoolError(f"need >= 1 worker, got {n_workers}")
        if job_timeout is not None and job_timeout <= 0:
            raise PoolError(
                f"job_timeout must be > 0 or None, got {job_timeout}"
            )
        self.runner = runner
        self.n_workers = n_workers
        self.master_seed = master_seed
        self.job_timeout = job_timeout
        self.respawn = respawn
        self.fault_plan = fault_plan
        self.validate = validate
        self.tracer = tracer
        self._context = get_context(context)
        self._pipes: Dict[int, object] = {}
        self._processes: Dict[int, object] = {}
        self._generation: Dict[int, int] = {}
        self._restarts: Dict[int, int] = {}
        self._started = False
        self.stats = PoolStats(n_workers=n_workers)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _trace(self, name: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.event(name, component="pool", **fields)

    def _worker_faults(self, worker_id: int, generation: int):
        if self.fault_plan is None:
            return ()
        return self.fault_plan.for_slave(worker_id, generation)

    def _spawn(self, worker_id: int) -> None:
        generation = self._generation.setdefault(worker_id, 0)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_pool_worker_main,
            args=(
                child_conn,
                worker_id,
                self.runner,
                self._worker_faults(worker_id, generation),
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._pipes[worker_id] = parent_conn
        self._processes[worker_id] = process
        self._trace("spawn", worker=worker_id, generation=generation)

    def start(self) -> None:
        """Spawn the fleet (idempotent)."""
        if self._started:
            return
        for worker_id in range(self.n_workers):
            self._restarts.setdefault(worker_id, 0)
            self._spawn(worker_id)
        self._started = True

    def shutdown(self) -> None:
        """Stop every worker, escalating join → terminate → kill."""
        if not self._started and not self._processes:
            return
        # Reuse the master's escalation path: a wedged worker must not
        # hang the sweep's exit.
        from repro.parallel.master import ParallelSimulation

        ParallelSimulation._shutdown_slaves(
            [self._processes[i] for i in sorted(self._processes)],
            [self._pipes[i] for i in sorted(self._pipes)],
            tracer=self.tracer,
        )
        self._pipes.clear()
        self._processes.clear()
        self._started = False

    @property
    def alive_workers(self) -> List[int]:
        """Worker ids currently accepting configures."""
        return sorted(self._pipes)

    # -- failure handling ----------------------------------------------------

    def _condemn(
        self, worker_id: int, cause: str,
        pending: deque, busy: Dict[int, tuple],
    ) -> None:
        """Drop one worker; requeue its in-flight job; maybe respawn."""
        self.stats.deaths += 1
        assignment = busy.pop(worker_id, None)
        if assignment is not None:
            # The dead worker costs exactly its one in-flight point.
            pending.appendleft(assignment[0])
            self.stats.jobs_requeued += 1
        pipe = self._pipes.pop(worker_id, None)
        if pipe is not None:
            try:
                pipe.close()
            except OSError:  # pragma: no cover
                pass
        process = self._processes.pop(worker_id, None)
        if process is not None:
            from repro.parallel.master import ParallelSimulation

            ParallelSimulation._reap(process)
        generation = self._generation[worker_id]
        self._trace(
            "dead", worker=worker_id, cause=cause, generation=generation
        )
        if self.respawn is not None and self.respawn.allows(
            self._restarts[worker_id], self.stats.restarts
        ):
            next_generation = generation + 1
            delay = self.respawn.delay(
                next_generation,
                jitter_seed=derive_seed(
                    self.master_seed, worker_id, next_generation
                ),
            )
            if delay > 0.0:
                time.sleep(delay)
            self._generation[worker_id] = next_generation
            self._restarts[worker_id] += 1
            self.stats.restarts += 1
            self._spawn(worker_id)
            self._trace(
                "respawn", worker=worker_id, generation=next_generation,
                backoff=delay,
            )
        else:
            self.stats.failure_causes[worker_id] = cause

    # -- the scheduling loop -------------------------------------------------

    def map(self, jobs: List[Tuple[object, dict]]) -> Dict[object, dict]:
        """Run every ``(job_id, payload)`` job; return results by id.

        Idle workers pull pending jobs as soon as they report, so the
        schedule load-balances itself.  Worker deaths requeue their
        in-flight job; a job that *raises* inside a worker surfaces as
        :class:`PoolJobError` immediately (it would fail identically on
        any worker).
        """
        self.start()
        pending: deque = deque(jobs)
        busy: Dict[int, tuple] = {}  # worker -> ((job_id, payload), deadline)
        results: Dict[object, dict] = {}
        while pending or busy:
            if not self._pipes:
                raise PoolError(
                    f"every pool worker has died "
                    f"({self.n_workers} started); causes: "
                    f"{self.stats.failure_causes}"
                )
            # Feed every idle worker before blocking.
            for worker_id in sorted(self._pipes):
                if not pending:
                    break
                if worker_id in busy:
                    continue
                job = pending.popleft()
                try:
                    self._pipes[worker_id].send(("configure", job[0], job[1]))
                except (BrokenPipeError, OSError) as error:
                    # The job never started, so it goes straight back to
                    # the queue without counting as a requeue.
                    pending.appendleft(job)
                    self._condemn(
                        worker_id, f"{CAUSE_SEND_FAILED}: {error}",
                        pending, busy,
                    )
                    continue
                deadline = (
                    time.monotonic() + self.job_timeout
                    if self.job_timeout is not None
                    else None
                )
                busy[worker_id] = (job, deadline)
            if not busy:
                continue  # all survivors were condemned while feeding
            deadlines = [d for _, d in busy.values() if d is not None]
            remaining = (
                max(0.0, min(deadlines) - time.monotonic())
                if deadlines
                else None
            )
            ready = _wait_ready(
                [self._pipes[w] for w in sorted(busy)], timeout=remaining
            )
            if not ready:
                now = time.monotonic()
                for worker_id in sorted(busy):
                    deadline = busy[worker_id][1]
                    if deadline is not None and now >= deadline:
                        self._condemn(
                            worker_id, CAUSE_HEARTBEAT_TIMEOUT, pending, busy
                        )
                continue
            by_pipe = {id(self._pipes[w]): w for w in busy}
            for conn in ready:
                worker_id = by_pipe[id(conn)]
                job = busy[worker_id][0]
                try:
                    message = conn.recv()
                except (
                    EOFError, ConnectionResetError, BrokenPipeError, OSError,
                ):
                    self._condemn(
                        worker_id, CAUSE_PIPE_CLOSED, pending, busy
                    )
                    continue
                tag = message[0] if isinstance(message, tuple) else None
                if tag == "error":
                    raise PoolJobError(
                        f"job {message[1]!r} failed in worker "
                        f"{worker_id}: {message[2]}"
                    )
                if tag != "result" or message[1] != job[0]:
                    self._condemn(
                        worker_id,
                        f"{CAUSE_CORRUPT_PAYLOAD}: unexpected message "
                        f"{tag!r}",
                        pending, busy,
                    )
                    continue
                payload = message[2]
                problem = (
                    self.validate(job[1], payload)
                    if self.validate is not None
                    else None
                )
                if problem is not None:
                    self._condemn(
                        worker_id,
                        f"{CAUSE_CORRUPT_PAYLOAD}: {problem}",
                        pending, busy,
                    )
                    continue
                busy.pop(worker_id)
                results[job[0]] = payload
                self.stats.jobs_completed += 1
        return results
