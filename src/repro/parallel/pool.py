"""A persistent, reusable slave pool for multi-experiment orchestration.

The classic master (:mod:`repro.parallel.master`) spawns slaves for
*one* experiment and tears them down when it converges.  A sweep — a
family of tens of experiment points — would pay that full process
spawn cost per point and share nothing.  :class:`WorkerPool` is the
reusable-pool mode: slaves are spawned once and accept successive
``("configure", job_id, payload)`` messages, each building and running
a complete experiment point before reporting its result and waiting for
the next configure — so interpreter start-up, imports, and fork cost
are paid once per *sweep*, not once per *point*.

Scheduling is dynamic (work stealing in the master-queue sense): every
idle worker immediately pulls the next pending point, so a slow point
on one worker never serializes the rest of the grid behind it.  The
result of a point is a pure function of its job payload, so scheduling
order cannot affect results — determinism is preserved by construction.

Workers are reached through a pluggable
:class:`~repro.parallel.transport.Transport`: the default
:class:`~repro.parallel.transport.LocalPipeTransport` forks them on
this host (the historical behavior), while a
:class:`~repro.parallel.transport.RemoteTransport` binds slots offered
by :mod:`repro.parallel.agent` processes on other machines.  Elastic
transports let workers join and leave mid-run: a vacated slot returns
to the join queue instead of permanently degrading the fleet, and new
agents are admitted between drains up to ``n_workers``.

Fault tolerance mirrors the master's contract: every recv carries a
deadline, every death gets a machine-readable cause code from
:mod:`repro.parallel.protocol`, a dead worker's in-flight point is
requeued (a death costs one point's recompute, not the sweep), and a
:class:`~repro.faults.recovery.RespawnPolicy` replaces the worker under
a fresh generation.  Respawn backoff never blocks the scheduling loop:
a condemned worker is given a *due time* which is folded into the
result-wait timeout, so healthy workers keep reporting while a
replacement waits out its backoff.  A seeded
:class:`~repro.faults.plan.FaultPlan` injects deterministic failures
for chaos tests; ``round`` in a spec addresses the n-th configure of
one worker incarnation (1-based).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.faults.injector import KILL_EXIT_STATUS
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.recovery import (
    RespawnPolicy,
    SupervisionError,
    SupervisionPolicy,
    derive_seed,
)
from repro.parallel.protocol import (
    CAUSE_CORRUPT_PAYLOAD,
    CAUSE_DEADLINE_EXCEEDED,
    CAUSE_FLEET_EXHAUSTED,
    CAUSE_HEARTBEAT_TIMEOUT,
    CAUSE_PIPE_CLOSED,
    CAUSE_SEND_FAILED,
    CAUSE_WORKER_LEFT,
    ParallelError,
)
from repro.parallel.transport import (
    FrameError,
    LocalPipeTransport,
    Transport,
    TransportCapacityError,
    WorkerEndpoint,
    disconnect_cause,
)


class PoolError(ParallelError):
    """Raised when the pool cannot finish the submitted work."""


class PoolJobError(PoolError):
    """A job raised inside a worker (deterministic; never retried).

    Carries the failing job's id as :attr:`job_id` so a caller
    orchestrating many jobs can tell which one is at fault without
    parsing the message.
    """

    def __init__(self, message: str, job_id: object = None):
        super().__init__(message)
        self.job_id = job_id


# -- worker-side fault execution ----------------------------------------------


def _find_fault(
    specs: Tuple[FaultSpec, ...], round_number: int, kind: str,
    phase: Optional[str] = None,
) -> Optional[FaultSpec]:
    for spec in specs:
        if spec.round != round_number or spec.kind != kind:
            continue
        if phase is not None and spec.phase != phase:
            continue
        return spec
    return None


def corrupt_result(payload: dict) -> dict:
    """Deterministically mangle a result payload.

    Mirrors the shapes real corruption takes on the wire: the integrity
    digest no longer matches and a required key is truncated away, so
    the master-side validator must catch it before the result is
    accepted (never silently served).
    """
    mangled = dict(payload)
    mangled["point_digest"] = "0" * 32
    mangled.pop("converged", None)
    return mangled


def _pool_worker_main(conn, worker_id, runner, faults=()):
    """One pool slave: configure → run → report, until told to stop."""
    rounds = 0
    while True:
        message = conn.recv()
        if message == "stop":
            conn.close()
            return
        if not (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == "configure"
        ):  # pragma: no cover - protocol guard
            raise PoolError(f"unknown pool command: {message!r}")
        _, job_id, job = message
        rounds += 1
        if _find_fault(faults, rounds, "kill", phase="pre_run") is not None:
            os._exit(KILL_EXIT_STATUS)
        hang = _find_fault(faults, rounds, "hang")
        if hang is not None:
            # Worker-side injected hang: blocking is the fault itself.
            time.sleep(hang.delay)  # simlint: disable=blocking-sleep-in-transport
        try:
            payload = runner(job)
        except Exception as error:  # simlint: disable=swallow-exception
            # Deliberate boundary: the exception is serialized to the
            # master, which raises PoolJobError with this context.
            conn.send(("error", job_id, f"{type(error).__name__}: {error}"))
            continue
        if _find_fault(faults, rounds, "kill", phase="pre_report") is not None:
            os._exit(KILL_EXIT_STATUS)
        if _find_fault(faults, rounds, "drop_report") is not None:
            continue  # silent: the master's deadline must catch it
        if _find_fault(faults, rounds, "corrupt_payload") is not None:
            payload = corrupt_result(payload)
        conn.send(("result", job_id, payload))
        if _find_fault(faults, rounds, "kill", phase="post_report") is not None:
            os._exit(KILL_EXIT_STATUS)


# -- master side --------------------------------------------------------------


@dataclass
class PoolStats:
    """Health accounting for one pool lifetime."""

    n_workers: int = 0
    jobs_completed: int = 0
    jobs_requeued: int = 0
    deaths: int = 0
    restarts: int = 0
    #: Slots bound to newly joined remote agents (elastic transports).
    joins: int = 0
    #: worker id -> cause code for workers left permanently dead.
    failure_causes: Dict[int, str] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when at least one dead worker was never replaced."""
        return bool(self.failure_causes)


class WorkerPool:
    """A fleet of persistent experiment workers.

    Parameters
    ----------
    runner:
        Module-level (picklable) ``runner(job: dict) -> dict`` executed
        for every configured job inside the worker process.
    n_workers:
        Fleet size (for elastic transports: the cap on concurrently
        bound workers).
    master_seed:
        Seeds the deterministic respawn-backoff jitter.
    job_timeout:
        Per-job report deadline in host seconds; a worker silent past
        it is declared dead (cause ``heartbeat timeout``) and its job
        requeued.  ``None`` disables the deadline.
    respawn:
        :class:`RespawnPolicy` for replacing dead workers, or ``None``
        to shrink the fleet on each death (the sweep still finishes on
        survivors; ``PoolError`` only if every worker dies).  Backoff
        is enforced as a per-worker *due time* folded into the wait
        loop, never as a sleep that stalls healthy workers.
    fault_plan:
        Injected failures for chaos runs; specs address
        ``(worker id, generation, n-th configure)``.
    supervision:
        A :class:`~repro.faults.recovery.SupervisionPolicy` for the
        sweep: a fleet floor (counting live workers, scheduled
        respawns, and — for elastic transports — rejoinable slots) and
        a per-``map`` wall-clock deadline.  The deadline always raises
        :class:`~repro.faults.recovery.SupervisionError` (a partial
        sweep is not a meaningful result); the fleet floor raises under
        ``on_exhausted="abort"`` and presses on with the survivors
        under ``"continue"``.  ``None`` (default) keeps the historical
        behavior: the sweep finishes on any nonzero fleet.
    validate:
        Optional master-side ``validate(job, payload) -> Optional[str]``
        returning a rejection reason; a rejected result condemns the
        worker (cause ``corrupt payload``) and requeues the job.
    tracer:
        Optional :class:`repro.observability.Tracer`; the pool emits
        ``pool/*`` events (spawn, dead, respawn, join, drain).
    context:
        ``multiprocessing`` start method for the default local
        transport (ignored when ``transport`` is given).
    transport:
        Worker dispatch backend; defaults to
        :class:`LocalPipeTransport` on this host.
    join_timeout:
        Elastic transports: how long an empty fleet waits for an agent
        to (re)join before the pool gives up.
    """

    def __init__(
        self,
        runner: Callable[[dict], dict],
        n_workers: int = 4,
        master_seed: int = 0,
        job_timeout: Optional[float] = 600.0,
        respawn: Optional[RespawnPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        supervision: Optional[SupervisionPolicy] = None,
        validate: Optional[Callable[[dict, dict], Optional[str]]] = None,
        tracer=None,
        context: str = "fork",
        transport: Optional[Transport] = None,
        join_timeout: float = 30.0,
    ):
        if n_workers < 1:
            raise PoolError(f"need >= 1 worker, got {n_workers}")
        if job_timeout is not None and job_timeout <= 0:
            raise PoolError(
                f"job_timeout must be > 0 or None, got {job_timeout}"
            )
        self.runner = runner
        self.n_workers = n_workers
        self.master_seed = master_seed
        self.job_timeout = job_timeout
        self.respawn = respawn
        self.fault_plan = fault_plan
        self.supervision = supervision
        self.validate = validate
        self.tracer = tracer
        self._owns_transport = transport is None
        self.transport = transport or LocalPipeTransport(context)
        self.join_timeout = join_timeout
        if tracer is not None:
            self.transport.attach_tracer(tracer)
        #: worker id -> live endpoint (one object per incarnation).
        self._workers: Dict[int, WorkerEndpoint] = {}
        self._generation: Dict[int, int] = {}
        self._restarts: Dict[int, int] = {}
        #: worker id -> (respawn due time, backoff used) — scheduled
        #: replacements that have not been admitted yet.
        self._respawn_at: Dict[int, Tuple[float, float]] = {}
        #: Slots waiting for an elastic join (never permanently dead).
        self._unbound: Set[int] = set()
        self._started = False
        self._below_min_traced = False
        self.stats = PoolStats(n_workers=n_workers)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _trace(self, name: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.event(name, component="pool", **fields)

    def _worker_faults(self, worker_id: int, generation: int):
        if self.fault_plan is None:
            return ()
        return self.fault_plan.for_slave(worker_id, generation)

    def _spawn(self, worker_id: int, timeout: Optional[float] = None) -> None:
        generation = self._generation.setdefault(worker_id, 0)
        endpoint = self.transport.spawn(
            worker_id,
            generation,
            _pool_worker_main,
            (
                worker_id,
                self.runner,
                self._worker_faults(worker_id, generation),
            ),
            timeout=timeout,
        )
        self._workers[worker_id] = endpoint
        self._trace("spawn", worker=worker_id, generation=generation)

    def start(self) -> None:
        """Bring the fleet up (idempotent).

        Non-elastic transports spawn all ``n_workers`` immediately.
        Elastic transports bind whatever capacity has already
        registered and leave the remaining slots to be admitted as
        agents join — :meth:`map` waits ``join_timeout`` for the first
        worker if none has arrived yet.
        """
        if self._started:
            return
        self.transport.start()
        if self.transport.elastic:
            self._unbound = set(range(self.n_workers))
            self._admit_capacity()
        else:
            for worker_id in range(self.n_workers):
                self._restarts.setdefault(worker_id, 0)
                self._spawn(worker_id)
        self._started = True

    def shutdown(self) -> None:
        """Stop every worker, escalating join → terminate → kill."""
        if not self._started and not self._workers:
            return
        self.transport.shutdown(
            [self._workers[i] for i in sorted(self._workers)]
        )
        if self._owns_transport:
            self.transport.close()
        self._workers.clear()
        self._respawn_at.clear()
        self._unbound.clear()
        self._started = False

    @property
    def alive_workers(self) -> List[int]:
        """Worker ids currently accepting configures."""
        return sorted(self._workers)

    # -- capacity admission --------------------------------------------------

    def _admit_capacity(self) -> None:
        """Spawn due respawns and bind newly joined elastic slots.

        Called at the top of every scheduling iteration so replacement
        capacity is claimed *between* drains — the fleet never mutates
        mid-drain, which is what makes endpoint-identity dispatch in
        :meth:`_drain_ready` airtight.
        """
        now = time.monotonic()
        for worker_id in sorted(self._respawn_at):
            due, backoff = self._respawn_at[worker_id]
            if now < due:
                continue
            try:
                self._spawn(worker_id, timeout=0.0)
            except TransportCapacityError:
                # No agent slot free yet; stays scheduled and will be
                # retried once one registers.
                continue
            del self._respawn_at[worker_id]
            self._restarts[worker_id] = self._restarts.get(worker_id, 0) + 1
            self.stats.restarts += 1
            self._trace(
                "respawn",
                worker=worker_id,
                generation=self._generation[worker_id],
                backoff=backoff,
            )
        while self._unbound and self.transport.capacity() > 0:
            worker_id = min(self._unbound)
            try:
                self._spawn(worker_id, timeout=0.0)
            except TransportCapacityError:
                break  # lost the race with another claimant
            self._unbound.discard(worker_id)
            self._restarts.setdefault(worker_id, 0)
            self.stats.joins += 1
            self._trace(
                "join",
                worker=worker_id,
                generation=self._generation[worker_id],
            )

    def _respawn_due_times(self) -> List[float]:
        return [due for due, _ in self._respawn_at.values()]

    def _await_any_worker(self) -> bool:
        """Block until the empty fleet could hold a worker again.

        Returns False when no worker can ever arrive — no respawn is
        scheduled and (for elastic transports) no agent joined within
        ``join_timeout`` — at which point the caller raises
        :class:`PoolError`.
        """
        dues = self._respawn_due_times()
        if dues:
            delay = min(dues) - time.monotonic()
            if delay > 0:
                # The fleet is empty, so waiting out the earliest
                # backoff stalls nobody.
                time.sleep(delay)  # simlint: disable=blocking-sleep-in-transport
                return True
            if self.transport.capacity() > 0:
                return True
            return self.transport.wait_for_capacity(self.join_timeout)
        if self._unbound and self.transport.elastic:
            if self.transport.capacity() > 0:
                return True
            return self.transport.wait_for_capacity(self.join_timeout)
        return False

    # -- supervision ---------------------------------------------------------

    def _effective_workers(self) -> int:
        """Workers that can still contribute: live + scheduled respawns
        + (elastic only) slots an agent could rejoin."""
        effective = len(self._workers) + len(self._respawn_at)
        if self.transport.elastic:
            effective += len(self._unbound)
        return effective

    def _enforce_supervision(self, map_started: float) -> None:
        """Deadline and fleet-floor checks, once per scheduling turn.

        A raised :class:`SupervisionError` leaves in-flight reports
        undrained — call :meth:`shutdown` before reusing the pool.
        """
        policy = self.supervision
        if policy is None:
            return
        if policy.deadline is not None:
            elapsed = time.monotonic() - map_started
            if elapsed > policy.deadline:
                raise SupervisionError(
                    f"sweep exceeded its deadline ({elapsed:.1f}s > "
                    f"{policy.deadline:.1f}s) with "
                    f"{self.stats.jobs_completed} job(s) completed",
                    cause=CAUSE_DEADLINE_EXCEEDED,
                )
        effective = self._effective_workers()
        if policy.fleet_ok(effective):
            self._below_min_traced = False
            return
        if policy.on_exhausted == "abort":
            raise SupervisionError(
                f"pool fleet fell to {effective} effective worker(s), "
                f"below min_workers={policy.min_workers}; causes: "
                f"{self.stats.failure_causes}",
                cause=CAUSE_FLEET_EXHAUSTED,
            )
        if not self._below_min_traced:
            self._below_min_traced = True
            self._trace(
                "fleet_below_minimum",
                effective=effective,
                min_workers=policy.min_workers,
            )

    # -- failure handling ----------------------------------------------------

    def _eof_cause(self) -> str:
        """Cause code for a dropped worker connection.

        Over pipes an EOF means the forked worker died; over an elastic
        socket transport it usually means its host agent left the
        fleet, so the distinction is surfaced in the cause code.
        """
        return (
            CAUSE_WORKER_LEFT if self.transport.elastic else CAUSE_PIPE_CLOSED
        )

    def _condemn(
        self, worker_id: int, cause: str,
        pending: deque, busy: Dict[int, tuple],
    ) -> None:
        """Drop one worker; requeue its in-flight job; plan replacement.

        Replacement is *scheduled*, never performed here: a respawn
        gets a due time (now + backoff) recorded in ``_respawn_at`` and
        is admitted by :meth:`_admit_capacity` once due, so an
        exponential backoff never blocks result collection from the
        healthy rest of the fleet.
        """
        self.stats.deaths += 1
        assignment = busy.pop(worker_id, None)
        if assignment is not None:
            # The dead worker costs exactly its one in-flight point.
            pending.appendleft(assignment[0])
            self.stats.jobs_requeued += 1
        endpoint = self._workers.pop(worker_id, None)
        if endpoint is not None:
            endpoint.close()
            self.transport.reap(endpoint)
        generation = self._generation.get(worker_id, 0)
        self._trace(
            "dead", worker=worker_id, cause=cause, generation=generation
        )
        # The next incarnation — respawn or rejoin — always gets a
        # fresh generation so seed lineage and fault addressing never
        # collide with the dead one.
        self._generation[worker_id] = generation + 1
        if self.respawn is not None and self.respawn.allows(
            self._restarts.get(worker_id, 0), self.stats.restarts
        ):
            delay = self.respawn.delay(
                generation + 1,
                jitter_seed=derive_seed(
                    self.master_seed, worker_id, generation + 1
                ),
            )
            self._respawn_at[worker_id] = (time.monotonic() + delay, delay)
        elif self.transport.elastic:
            # Elastic fleets shrink and re-grow: the slot goes back to
            # the join queue instead of being branded permanently dead.
            self._unbound.add(worker_id)
            self._trace("slot_vacated", worker=worker_id, cause=cause)
        else:
            self.stats.failure_causes[worker_id] = cause

    def _drain_busy(self, pending: deque, busy: Dict[int, tuple]) -> None:
        """Absorb every in-flight report before :meth:`map` raises.

        When a job errors, ``map`` aborts — but other workers still owe
        reports for their in-flight jobs.  Leaving those unread would
        poison the next ``map()`` call: it would read the stale
        ``("result", old_job_id, ...)`` messages first, mismatch them
        against its own jobs, and condemn perfectly healthy workers as
        corrupt.  So before raising we wait each straggler out (against
        its original deadline), discard its report, and condemn only
        the ones that actually die or time out.
        """
        drained = 0
        while busy:
            deadlines = [d for _, d in busy.values() if d is not None]
            remaining = (
                max(0.0, min(deadlines) - time.monotonic())
                if deadlines
                else None
            )
            endpoints = [self._workers[w] for w in sorted(busy)]
            ready = self.transport.wait(endpoints, timeout=remaining)
            if not ready:
                now = time.monotonic()
                for worker_id in sorted(busy):
                    deadline = busy[worker_id][1]
                    if deadline is not None and now >= deadline:
                        self._condemn(
                            worker_id, CAUSE_HEARTBEAT_TIMEOUT, pending, busy
                        )
                continue
            for endpoint in ready:
                worker_id = endpoint.worker_id
                if (
                    self._workers.get(worker_id) is not endpoint
                    or worker_id not in busy
                ):
                    continue
                try:
                    endpoint.recv()
                except (
                    FrameError, EOFError, ConnectionResetError,
                    BrokenPipeError, OSError,
                ) as error:
                    self._condemn(
                        worker_id,
                        disconnect_cause(error, self._eof_cause()),
                        pending, busy,
                    )
                    continue
                # Whatever the worker reported — result or error — the
                # assignment is absorbed and the worker is idle again.
                busy.pop(worker_id)
                drained += 1
        if drained:
            self._trace("drain", absorbed=drained)

    # -- the scheduling loop -------------------------------------------------

    def map(self, jobs: List[Tuple[object, dict]]) -> Dict[object, dict]:
        """Run every ``(job_id, payload)`` job; return results by id.

        Idle workers pull pending jobs as soon as they report, so the
        schedule load-balances itself.  Worker deaths requeue their
        in-flight job; a job that *raises* inside a worker surfaces as
        :class:`PoolJobError` immediately (it would fail identically on
        any worker) — after the in-flight work of other workers has
        been drained, so the pool stays reusable.
        """
        self.start()
        pending: deque = deque(jobs)
        busy: Dict[int, tuple] = {}  # worker -> ((job_id, payload), deadline)
        results: Dict[object, dict] = {}
        map_started = time.monotonic()
        while pending or busy:
            self._admit_capacity()
            self._enforce_supervision(map_started)
            if not self._workers:
                if busy:  # pragma: no cover - invariant guard
                    raise PoolError("busy workers without endpoints")
                if not self._await_any_worker():
                    raise PoolError(
                        f"every pool worker has died "
                        f"({self.n_workers} started); causes: "
                        f"{self.stats.failure_causes}"
                    )
                continue
            # Feed every idle worker before blocking.
            for worker_id in sorted(self._workers):
                if not pending:
                    break
                if worker_id in busy:
                    continue
                job = pending.popleft()
                try:
                    self._workers[worker_id].send(
                        ("configure", job[0], job[1])
                    )
                except (BrokenPipeError, OSError) as error:
                    # The job never started, so it goes straight back to
                    # the queue without counting as a requeue.
                    pending.appendleft(job)
                    self._condemn(
                        worker_id, f"{CAUSE_SEND_FAILED}: {error}",
                        pending, busy,
                    )
                    continue
                deadline = (
                    time.monotonic() + self.job_timeout
                    if self.job_timeout is not None
                    else None
                )
                busy[worker_id] = (job, deadline)
            if not busy:
                continue  # all survivors were condemned while feeding
            # Wake for whichever comes first: a job deadline or a
            # scheduled respawn becoming due.
            now = time.monotonic()
            wake_points = [d for _, d in busy.values() if d is not None]
            overdue = False
            for due in self._respawn_due_times():
                if due > now:
                    wake_points.append(due)
                else:
                    # Due but blocked on capacity (elastic lobby empty);
                    # poll rather than spin on a zero timeout.
                    overdue = True
            remaining = (
                max(0.0, min(wake_points) - now) if wake_points else None
            )
            if self.transport.elastic and pending and (
                self._unbound or overdue
            ):
                # Poll for newly joined agents while the fleet is
                # under strength and there is work they could pull.
                remaining = (
                    0.5 if remaining is None else min(remaining, 0.5)
                )
            ready = self.transport.wait(
                [self._workers[w] for w in sorted(busy)], timeout=remaining
            )
            if not ready:
                now = time.monotonic()
                for worker_id in sorted(busy):
                    deadline = busy[worker_id][1]
                    if deadline is not None and now >= deadline:
                        self._condemn(
                            worker_id, CAUSE_HEARTBEAT_TIMEOUT, pending, busy
                        )
                continue
            for endpoint in ready:
                # Dispatch by endpoint identity, never by id() of an
                # underlying connection: a condemned worker's endpoint
                # is popped from ``_workers``, so a stale readiness
                # signal for it simply skips (the replacement, admitted
                # only between drains, is a different object and can
                # never inherit the old one's messages).
                worker_id = endpoint.worker_id
                if (
                    self._workers.get(worker_id) is not endpoint
                    or worker_id not in busy
                ):
                    continue
                job = busy[worker_id][0]
                try:
                    message = endpoint.recv()
                except (
                    FrameError, EOFError, ConnectionResetError,
                    BrokenPipeError, OSError,
                ) as error:
                    self._condemn(
                        worker_id,
                        disconnect_cause(error, self._eof_cause()),
                        pending, busy,
                    )
                    continue
                tag = message[0] if isinstance(message, tuple) else None
                if tag == "error" and message[1] == job[0]:
                    # Deterministic job failure: absorb everyone else's
                    # in-flight reports first so the fleet is clean for
                    # the next map(), then surface the error.
                    busy.pop(worker_id)
                    self._drain_busy(pending, busy)
                    raise PoolJobError(
                        f"job {message[1]!r} failed in worker "
                        f"{worker_id}: {message[2]}",
                        job_id=message[1],
                    )
                if tag not in ("result", "error") or message[1] != job[0]:
                    self._condemn(
                        worker_id,
                        f"{CAUSE_CORRUPT_PAYLOAD}: unexpected message "
                        f"{tag!r}",
                        pending, busy,
                    )
                    continue
                payload = message[2]
                problem = (
                    self.validate(job[1], payload)
                    if self.validate is not None
                    else None
                )
                if problem is not None:
                    self._condemn(
                        worker_id,
                        f"{CAUSE_CORRUPT_PAYLOAD}: {problem}",
                        pending, busy,
                    )
                    continue
                busy.pop(worker_id)
                results[job[0]] = payload
                self.stats.jobs_completed += 1
        return results
