"""The parallel master and its two slave backends.

Protocol (Fig. 3):

1. master runs warm-up + calibration of a serial instance, fixing the
   histogram bin scheme per metric;
2. the bin schemes are broadcast; every slave builds its *own* replica of
   the experiment under a unique seed and runs its own warm-up +
   calibration (lag only — the scheme is imposed);
3. slaves measure in chunks, reporting bin-count *deltas* since their
   previous report (or full histograms with ``delta_reports=False``);
4. the master folds each delta into persistent merged histograms and
   signals stop as soon as the merged (aggregate) sample satisfies
   Eqs. 2-3;
5. final estimates are read off the merged histograms.

Chunk sizes grow geometrically per round (``adaptive_chunking``): early
rounds stay small so convergence is detected promptly on easy targets,
later rounds amortize the report/merge overhead on hard ones.  The
master computes the schedule, so the serial and process backends see
identical per-round chunk sizes and produce identical merged counts.

The experiment ``factory`` must be a callable ``factory(seed, **kwargs)
-> Experiment`` that declares the same metrics every time.  For the
``process`` backend it must be picklable (a module-level function).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.convergence import is_converged, summarize_histogram
from repro.core.histogram import Histogram
from repro.core.statistic import Estimate, Phase
from repro.engine.experiment import Experiment
from repro.parallel.protocol import (
    DeltaTracker,
    MetricTargets,
    ParallelError,
    SlaveReport,
    scheme_from_payload,
    scheme_payload,
)

#: Multiplier used to derive distinct slave seeds from the master seed.
_SEED_STRIDE = 0x9E3779B9


def slave_seed(master_seed: int, slave_id: int) -> int:
    """Deterministic, distinct seed for each slave (unique-seed rule)."""
    return (master_seed + _SEED_STRIDE * (slave_id + 1)) & 0x7FFFFFFF


def build_slave_experiment(
    factory: Callable[..., Experiment],
    factory_kwargs: dict,
    seed: int,
    schemes: Dict[str, tuple],
) -> Experiment:
    """Instantiate a slave replica with the master's bin schemes imposed."""
    experiment = factory(seed=seed, **factory_kwargs)
    for name, payload in schemes.items():
        if name not in experiment.stats:
            raise ParallelError(
                f"factory did not declare metric {name!r} for seed {seed}"
            )
        experiment.stats[name].fixed_scheme = scheme_from_payload(payload)
    return experiment


def _slave_report(
    experiment: Experiment,
    slave_id: int,
    tracker: Optional[DeltaTracker] = None,
) -> SlaveReport:
    histograms = {}
    lags = {}
    for statistic in experiment.stats:
        if statistic.histogram is not None:
            histograms[statistic.name] = statistic.histogram.to_payload()
        lags[statistic.name] = statistic.lag
    delta = tracker is not None
    if delta:
        histograms = tracker.delta_histograms(histograms)
    probe = experiment.simulation.probe
    return SlaveReport(
        slave_id=slave_id,
        histograms=histograms,
        events_processed=experiment.simulation.events_processed,
        sim_time=experiment.simulation.now,
        total_accepted=experiment.stats.total_accepted,
        lags=lags,
        delta=delta,
        digest=probe.snapshot() if probe is not None else None,
    )


def _process_slave_main(
    conn,
    factory,
    factory_kwargs,
    seed,
    schemes,
    max_events_per_chunk,
    slave_id,
    delta_reports,
):
    """Entry point of one slave process: chunked measure/report loop.

    Commands arrive as ``("chunk", size)`` tuples (the master owns the
    chunk schedule) or the string ``"stop"``.
    """
    experiment = build_slave_experiment(factory, factory_kwargs, seed, schemes)
    tracker = DeltaTracker() if delta_reports else None
    while True:
        command = conn.recv()
        if command == "stop":
            conn.close()
            return
        if not (
            isinstance(command, tuple)
            and len(command) == 2
            and command[0] == "chunk"
        ):  # pragma: no cover - protocol guard
            raise ParallelError(f"unknown command: {command!r}")
        experiment.run_until_accepted(
            command[1], max_events=max_events_per_chunk
        )
        conn.send(_slave_report(experiment, slave_id, tracker))


@dataclass
class ParallelResult:
    """Outcome of a distributed simulation."""

    estimates: Dict[str, Estimate]
    converged: bool
    n_slaves: int
    rounds: int
    master_events: int
    slave_events: List[int]
    total_accepted: int
    wall_time: float
    master_wall_time: float
    extras: Dict[str, float] = field(default_factory=dict)
    #: Per-slave cumulative determinism digests (from the final round's
    #: reports) when slaves ran sanitized, else None.  Comparable across
    #: backends: the master owns the chunk schedule, so slave ``i``
    #: replays the same stream serial or process-parallel.
    slave_digests: Optional[List] = None
    #: True when one or more slaves died mid-run and the result was
    #: assembled from the survivors' contributions.  A degraded result
    #: is statistically valid (every merged observation is real) but
    #: covers fewer independent replicas than requested.
    degraded: bool = False
    #: Slave ids that died before the run finished (empty when healthy).
    dead_slaves: List[int] = field(default_factory=list)
    #: repro.observability.ExperimentTelemetry when telemetry was
    #: collected (tracer attached), else None.
    telemetry: Optional[object] = None

    def __getitem__(self, name: str) -> Estimate:
        return self.estimates[name]

    @property
    def total_events(self) -> int:
        """Events simulated across master + all slaves."""
        return self.master_events + sum(self.slave_events)


class ParallelSimulation:
    """Master orchestration of a distributed BigHouse run.

    Parameters
    ----------
    factory:
        ``factory(seed, **factory_kwargs) -> Experiment``; must declare
        identical metrics on every call.
    n_slaves:
        Number of measurement replicas.
    backend:
        ``"serial"`` (in-process round-robin; deterministic) or
        ``"process"`` (one OS process per slave).
    chunk_size:
        Accepted observations per slave in the first round between
        merges (rounds grow geometrically under ``adaptive_chunking``).
    max_rounds:
        Safety bound on measure/merge rounds.
    delta_reports:
        When True (default) slaves ship per-round histogram deltas and
        the master accumulates incrementally; False restores full-state
        reports (the A/B configuration — final estimates agree to float
        tolerance either way).
    adaptive_chunking:
        When True (default) the per-round chunk doubles each round up to
        ``max_chunk_size``; False keeps every round at ``chunk_size``.
    max_chunk_size:
        Cap for adaptive growth; defaults to ``16 * chunk_size``.
    """

    def __init__(
        self,
        factory: Callable[..., Experiment],
        factory_kwargs: Optional[dict] = None,
        n_slaves: int = 4,
        master_seed: int = 0,
        chunk_size: int = 2000,
        backend: str = "serial",
        max_rounds: int = 10_000,
        max_events_per_chunk: int = 10_000_000,
        delta_reports: bool = True,
        adaptive_chunking: bool = True,
        max_chunk_size: Optional[int] = None,
    ):
        if n_slaves < 1:
            raise ParallelError(f"need >= 1 slave, got {n_slaves}")
        if chunk_size < 1:
            raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
        if backend not in ("serial", "process"):
            raise ParallelError(f"unknown backend {backend!r}")
        if max_chunk_size is not None and max_chunk_size < chunk_size:
            raise ParallelError(
                f"max_chunk_size ({max_chunk_size}) must be >= "
                f"chunk_size ({chunk_size})"
            )
        self.factory = factory
        self.factory_kwargs = dict(factory_kwargs or {})
        self.n_slaves = n_slaves
        self.master_seed = master_seed
        self.chunk_size = chunk_size
        self.backend = backend
        self.max_rounds = max_rounds
        self.max_events_per_chunk = max_events_per_chunk
        self.delta_reports = delta_reports
        self.adaptive_chunking = adaptive_chunking
        self.max_chunk_size = (
            max_chunk_size if max_chunk_size is not None else 16 * chunk_size
        )
        self._tracer = None
        self._progress = None

    # -- observability ---------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.observability.Tracer` to the master.

        The master emits ``master/*`` records (merge spans when the
        tracer carries a host clock, round counters, dead-slave events)
        and ``slave/*`` report events.  The calibration experiment also
        inherits the tracer, so a traced parallel run covers engine,
        statistic, master, and slave components.  The parallel layer is
        the boundary: host-clock use is legitimate here.
        """
        self._tracer = tracer

    def attach_progress(self, reporter) -> None:
        """Attach a ProgressReporter; it renders per-round convergence."""
        self._progress = reporter

    def _trace_round(self, round_number: int, reports: List[SlaveReport]) -> None:
        tracer = self._tracer
        if tracer is None:
            return
        for report in reports:
            tracer.event(
                "report",
                component="slave",
                sim_time=report.sim_time,
                slave=report.slave_id,
                round=round_number,
                events=report.events_processed,
                accepted=report.total_accepted,
            )

    def _merge_round(self, merged, reports, schemes, round_number: int):
        """One reduce step, traced as a ``master/merge`` span when possible."""
        tracer = self._tracer

        def reduce():
            if self.delta_reports:
                self._accumulate_reports(merged, reports)
                return merged
            return self._merge_reports(reports, schemes)

        if tracer is not None and tracer.has_clock:
            with tracer.span(
                "merge", component="master",
                round=round_number, reports=len(reports),
            ):
                return reduce()
        return reduce()

    def _round_chunk(self, round_number: int) -> int:
        """Accepted-observation quota per slave for one round (1-based).

        Geometric growth capped at ``max_chunk_size``; computed by the
        master so every backend follows the identical schedule.
        """
        if not self.adaptive_chunking:
            return self.chunk_size
        grown = self.chunk_size << min(round_number - 1, 60)
        return min(grown, self.max_chunk_size)

    # -- master steps ----------------------------------------------------------

    def _calibrate_master(self):
        master = self.factory(seed=self.master_seed, **self.factory_kwargs)
        if self._tracer is not None:
            master.attach_tracer(self._tracer)
        master.run_until_calibrated()
        for statistic in master.stats:
            if statistic.phase not in (Phase.MEASUREMENT, Phase.CONVERGED):
                raise ParallelError(
                    f"master failed to calibrate metric {statistic.name!r} "
                    f"(stuck in {statistic.phase.value})"
                )
        schemes = {
            statistic.name: scheme_payload(statistic.histogram.scheme)
            for statistic in master.stats
        }
        targets = {
            statistic.name: MetricTargets.from_statistic(statistic)
            for statistic in master.stats
        }
        return master, schemes, targets

    @staticmethod
    def _merge_reports(
        reports: List[SlaveReport], schemes: Dict[str, tuple]
    ) -> Dict[str, Histogram]:
        """Full re-merge from full-state reports (delta_reports=False)."""
        merged: Dict[str, Histogram] = {}
        for name, payload in schemes.items():
            merged[name] = Histogram(scheme_from_payload(payload))
        for report in reports:
            for name in schemes:
                if name in report.histograms:
                    merged[name].merge(report.histogram(name))
        return merged

    @staticmethod
    def _accumulate_reports(
        merged: Dict[str, Histogram], reports: List[SlaveReport]
    ) -> None:
        """Incremental reduce: fold one round of delta reports in place."""
        for report in reports:
            for name, payload in report.histograms.items():
                merged[name].merge_payload(payload)

    @staticmethod
    def _all_converged(
        merged: Dict[str, Histogram], targets: Dict[str, MetricTargets]
    ) -> bool:
        return all(
            is_converged(
                merged[name],
                target.mean_accuracy,
                target.quantile_dict,
                target.confidence,
                target.min_accepted,
            )
            for name, target in targets.items()
        )

    @staticmethod
    def _estimates(
        merged: Dict[str, Histogram],
        targets: Dict[str, MetricTargets],
        converged: bool,
    ) -> Dict[str, Estimate]:
        estimates = {}
        for name, target in targets.items():
            histogram = merged[name]
            estimate = Estimate(
                name=name,
                phase=Phase.CONVERGED if converged else Phase.MEASUREMENT,
                converged=converged,
                lag=None,
                accepted=histogram.count,
                observed=histogram.count,
            )
            if histogram.count:
                (
                    estimate.mean,
                    estimate.std,
                    estimate.quantiles,
                    estimate.mean_ci,
                    estimate.quantile_ci,
                ) = summarize_histogram(
                    histogram, target.quantile_dict, target.confidence
                )
            estimates[name] = estimate
        return estimates

    # -- backends -------------------------------------------------------------------

    def run(self) -> ParallelResult:
        """Execute the full master/slave protocol."""
        started = time.perf_counter()
        master, schemes, targets = self._calibrate_master()
        master_wall = time.perf_counter() - started
        if self.backend == "serial":
            result = self._run_serial(schemes, targets)
        else:
            result = self._run_process(schemes, targets)
        result.master_events = master.simulation.events_processed
        result.master_wall_time = master_wall
        result.wall_time = time.perf_counter() - started
        if self._tracer is not None:
            from repro.observability.telemetry import ExperimentTelemetry

            result.telemetry = ExperimentTelemetry.from_parallel(
                result, tracer=self._tracer, dead_slaves=result.dead_slaves
            )
        return result

    def _run_serial(self, schemes, targets) -> ParallelResult:
        slaves = [
            build_slave_experiment(
                self.factory,
                self.factory_kwargs,
                slave_seed(self.master_seed, slave_id),
                schemes,
            )
            for slave_id in range(self.n_slaves)
        ]
        trackers = [
            DeltaTracker() if self.delta_reports else None
            for _ in range(self.n_slaves)
        ]
        rounds = 0
        converged = False
        reports: List[SlaveReport] = []
        merged: Dict[str, Histogram] = self._merge_reports([], schemes)
        while rounds < self.max_rounds and not converged:
            rounds += 1
            chunk = self._round_chunk(rounds)
            reports = []
            for slave_id, slave in enumerate(slaves):
                slave.run_until_accepted(
                    chunk, max_events=self.max_events_per_chunk
                )
                reports.append(
                    _slave_report(slave, slave_id, trackers[slave_id])
                )
            self._trace_round(rounds, reports)
            merged = self._merge_round(merged, reports, schemes, rounds)
            converged = self._all_converged(merged, targets)
            if self._progress is not None:
                self._progress.parallel_update(rounds, merged, targets)
        return ParallelResult(
            estimates=self._estimates(merged, targets, converged),
            converged=converged,
            n_slaves=self.n_slaves,
            rounds=rounds,
            master_events=0,
            slave_events=[report.events_processed for report in reports],
            total_accepted=sum(report.total_accepted for report in reports),
            wall_time=0.0,
            master_wall_time=0.0,
            slave_digests=(
                [report.digest for report in reports]
                if any(report.digest is not None for report in reports)
                else None
            ),
        )

    @staticmethod
    def _shutdown_slaves(
        processes,
        pipes,
        join_timeout: float = 30.0,
        escalation_timeout: float = 5.0,
        tracer=None,
    ) -> List[tuple]:
        """Stop slave processes, escalating join → terminate → kill.

        Each slave first gets a cooperative ``"stop"`` and a
        ``join_timeout`` to exit cleanly; a survivor is terminated
        (SIGTERM) and, failing that too, killed (SIGKILL) — a hung or
        signal-ignoring slave must never wedge the master's exit path.
        Returns ``[(slave_id, action), ...]`` for every escalation
        beyond the clean join (``"terminate"`` / ``"kill"``), which is
        also what makes this testable with fake process objects.
        """
        for pipe in pipes:
            try:
                pipe.send("stop")
                pipe.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        escalations: List[tuple] = []
        for slave_id, process in enumerate(processes):
            process.join(timeout=join_timeout)
            if not process.is_alive():
                continue
            process.terminate()
            process.join(timeout=escalation_timeout)
            if process.is_alive():
                # multiprocessing.Process.kill() exists since 3.7; fall
                # back to terminate-again for exotic fakes without it.
                kill = getattr(process, "kill", process.terminate)
                kill()
                process.join(timeout=escalation_timeout)
                escalations.append((slave_id, "kill"))
            else:
                escalations.append((slave_id, "terminate"))
            if tracer is not None:
                tracer.event(
                    "shutdown_escalation",
                    component="master",
                    slave=slave_id,
                    action=escalations[-1][1],
                )
        return escalations

    def _run_process(self, schemes, targets) -> ParallelResult:
        context = multiprocessing.get_context("fork")
        pipes = []
        processes = []
        for slave_id in range(self.n_slaves):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_process_slave_main,
                args=(
                    child_conn,
                    self.factory,
                    self.factory_kwargs,
                    slave_seed(self.master_seed, slave_id),
                    schemes,
                    self.max_events_per_chunk,
                    slave_id,
                    self.delta_reports,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            pipes.append(parent_conn)
            processes.append(process)
        rounds = 0
        converged = False
        reports: List[SlaveReport] = []
        merged: Dict[str, Histogram] = self._merge_reports([], schemes)
        alive: Dict[int, object] = dict(enumerate(pipes))
        dead: List[int] = []
        # Last-known cumulative progress per slave, so a mid-run death
        # does not erase its (already merged) contribution from the
        # result's accounting.
        last_events: Dict[int, int] = {i: 0 for i in alive}
        last_accepted: Dict[int, int] = {i: 0 for i in alive}

        def mark_dead(slave_id: int, round_number: int, cause: str) -> None:
            # A dead slave's delta for the current round is lost, but
            # everything it reported in earlier rounds is already merged:
            # the run continues on the survivors and the result is
            # flagged degraded.
            alive.pop(slave_id, None)
            dead.append(slave_id)
            if self._tracer is not None:
                self._tracer.event(
                    "dead",
                    component="slave",
                    slave=slave_id,
                    round=round_number,
                    cause=cause,
                )
        try:
            while rounds < self.max_rounds and not converged:
                rounds += 1
                chunk = self._round_chunk(rounds)
                commanded = []
                for slave_id, pipe in list(alive.items()):
                    try:
                        pipe.send(("chunk", chunk))
                        commanded.append(slave_id)
                    except (BrokenPipeError, OSError) as error:
                        mark_dead(slave_id, rounds, f"send failed: {error}")
                reports = []
                for slave_id in commanded:
                    pipe = alive.get(slave_id)
                    if pipe is None:  # pragma: no cover - defensive
                        continue
                    try:
                        report = pipe.recv()
                    except (EOFError, ConnectionResetError):
                        # A dead slave closes (EOFError) or resets
                        # (ConnectionResetError) its pipe end; without
                        # this the master would block forever waiting on
                        # the remaining recv()s after a partial round.
                        mark_dead(slave_id, rounds, "no report")
                        continue
                    reports.append(report)
                    last_events[slave_id] = report.events_processed
                    last_accepted[slave_id] = report.total_accepted
                if not alive:
                    raise ParallelError(
                        f"every slave has died ({self.n_slaves} started, "
                        f"last loss in round {rounds}); no survivors to "
                        "finish the run"
                    )
                self._trace_round(rounds, reports)
                merged = self._merge_round(merged, reports, schemes, rounds)
                converged = self._all_converged(merged, targets)
                if self._progress is not None:
                    self._progress.parallel_update(rounds, merged, targets)
        finally:
            self._shutdown_slaves(
                processes, list(alive.values()), tracer=self._tracer
            )
        return ParallelResult(
            estimates=self._estimates(merged, targets, converged),
            converged=converged,
            n_slaves=self.n_slaves,
            rounds=rounds,
            master_events=0,
            slave_events=[
                last_events[slave_id] for slave_id in sorted(last_events)
            ],
            total_accepted=sum(last_accepted.values()),
            wall_time=0.0,
            master_wall_time=0.0,
            slave_digests=(
                [report.digest for report in reports]
                if any(report.digest is not None for report in reports)
                else None
            ),
            degraded=bool(dead),
            dead_slaves=sorted(dead),
        )
