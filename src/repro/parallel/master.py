"""The parallel master and its two slave backends.

Protocol (Fig. 3):

1. master runs warm-up + calibration of a serial instance, fixing the
   histogram bin scheme per metric;
2. the bin schemes are broadcast; every slave builds its *own* replica of
   the experiment under a unique seed and runs its own warm-up +
   calibration (lag only — the scheme is imposed);
3. slaves measure in chunks, reporting bin-count *deltas* since their
   previous report (or full histograms with ``delta_reports=False``);
4. the master folds each delta into persistent merged histograms and
   signals stop as soon as the merged (aggregate) sample satisfies
   Eqs. 2-3;
5. final estimates are read off the merged histograms.

Chunk sizes grow geometrically per round (``adaptive_chunking``): early
rounds stay small so convergence is detected promptly on easy targets,
later rounds amortize the report/merge overhead on hard ones.  The
master computes the schedule, so the serial and process backends see
identical per-round chunk sizes and produce identical merged counts.

**Fault tolerance** (see docs/robustness.md).  The master treats slave
death as an input, not an exception: every recv carries a per-round
deadline (a hung slave can no longer stall a round), every death gets a
machine-readable cause code, and — with a
:class:`~repro.faults.recovery.RespawnPolicy` — a replacement slave is
spawned under a fresh generation-aware seed and *re-accumulates* the
dead slave's unreported quota, so a recovered run converges
``degraded=False``.  Deaths never erase merged history: everything a
slave reported in earlier rounds stays valid.  Periodic checkpoints
(:mod:`repro.faults.checkpoint`) record the merged state plus each
slave's work log; ``run(resume_from=...)`` rebuilds slaves by replaying
those logs, bit-for-bit.  A seeded
:class:`~repro.faults.plan.FaultPlan` injects deterministic failures
for chaos testing on either backend.

The experiment ``factory`` must be a callable ``factory(seed, **kwargs)
-> Experiment`` that declares the same metrics every time.  For the
``process`` backend it must be picklable (a module-level function).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.convergence import is_converged, summarize_histogram
from repro.core.histogram import Histogram
from repro.core.statistic import Estimate, Phase
from repro.engine.experiment import Experiment
from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointState,
    SlaveCheckpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.faults.injector import FaultInjector, InjectedFailure
from repro.faults.plan import FaultPlan
from repro.faults.recovery import (
    RespawnPolicy,
    SeedLineage,
    SupervisionError,
    SupervisionPolicy,
    derive_seed,
)
from repro.parallel.protocol import (
    CAUSE_CORRUPT_PAYLOAD,
    CAUSE_DEADLINE_EXCEEDED,
    CAUSE_FLEET_EXHAUSTED,
    CAUSE_HEARTBEAT_TIMEOUT,
    CAUSE_INJECTED,
    CAUSE_PIPE_CLOSED,
    CAUSE_SEND_FAILED,
    DeltaTracker,
    MetricTargets,
    ParallelError,
    SlaveReport,
    payload_digest,
    scheme_from_payload,
    scheme_payload,
    validate_report_payload,
)
from repro.parallel.transport import (
    FrameError,
    LocalPipeTransport,
    Transport,
    TransportCapacityError,
    WorkerEndpoint,
    disconnect_cause,
)


def slave_seed(master_seed: int, slave_id: int, generation: int = 0) -> int:
    """Deterministic, distinct seed for each slave incarnation.

    Generation 0 (the original fleet) reproduces the historical
    unique-seed rule bit-for-bit; respawned replacements mix the
    generation along an independent stride so a replacement never
    replays its dead predecessor's stream (which would double-count the
    partial draws already merged from it).  Uniqueness across a run is
    enforced by :class:`~repro.faults.recovery.SeedLineage`.
    """
    return derive_seed(master_seed, slave_id, generation)


def build_slave_experiment(
    factory: Callable[..., Experiment],
    factory_kwargs: dict,
    seed: int,
    schemes: Dict[str, tuple],
) -> Experiment:
    """Instantiate a slave replica with the master's bin schemes imposed."""
    experiment = factory(seed=seed, **factory_kwargs)
    for name, payload in schemes.items():
        if name not in experiment.stats:
            raise ParallelError(
                f"factory did not declare metric {name!r} for seed {seed}"
            )
        experiment.stats[name].fixed_scheme = scheme_from_payload(payload)
    return experiment


def _slave_report(
    experiment: Experiment,
    slave_id: int,
    tracker: Optional[DeltaTracker] = None,
) -> SlaveReport:
    histograms = {}
    lags = {}
    for statistic in experiment.stats:
        if statistic.histogram is not None:
            histograms[statistic.name] = statistic.histogram.to_payload()
        lags[statistic.name] = statistic.lag
    delta = tracker is not None
    if delta:
        histograms = tracker.delta_histograms(histograms)
    probe = experiment.simulation.probe
    return SlaveReport(
        slave_id=slave_id,
        histograms=histograms,
        events_processed=experiment.simulation.events_processed,
        sim_time=experiment.simulation.now,
        total_accepted=experiment.stats.total_accepted,
        lags=lags,
        delta=delta,
        digest=probe.snapshot() if probe is not None else None,
    )


def _process_slave_main(
    conn,
    factory,
    factory_kwargs,
    seed,
    schemes,
    max_events_per_chunk,
    slave_id,
    delta_reports,
    faults=(),
    replay=(),
    round_offset=0,
):
    """Entry point of one slave process: chunked measure/report loop.

    Commands arrive as ``("chunk", size)`` tuples (the master owns the
    chunk schedule) or the string ``"stop"``.  ``faults`` is this
    incarnation's picklable fault sub-plan; ``replay`` is a logged
    chunk schedule to fast-forward through on resume (the resulting
    baseline report is sent for the master to validate and discard);
    ``round_offset`` maps local command numbering onto master rounds so
    fault specs address the same round on every backend.
    """
    experiment = build_slave_experiment(factory, factory_kwargs, seed, schemes)
    tracker = DeltaTracker() if delta_reports else None
    injector = FaultInjector(faults)
    if replay:
        experiment.replay_chunks(replay, max_events=max_events_per_chunk)
        conn.send(_slave_report(experiment, slave_id, tracker))
    round_number = round_offset
    while True:
        command = conn.recv()
        if command == "stop":
            conn.close()
            return
        if not (
            isinstance(command, tuple)
            and len(command) == 2
            and command[0] == "chunk"
        ):  # pragma: no cover - protocol guard
            raise ParallelError(f"unknown command: {command!r}")
        round_number += 1
        injector.on_chunk_start(round_number)
        experiment.run_until_accepted(
            command[1], max_events=max_events_per_chunk
        )
        report = _slave_report(experiment, slave_id, tracker)
        report = injector.filter_report(round_number, report)
        # A dropped report skips after_send: there was no send for a
        # post_report kill to follow.  FaultPlan rejects plans pairing
        # drop_report with a post_report kill on one slot, so the two
        # backends cannot diverge here (serial raises on the drop).
        if report is not None:
            conn.send(report)
            injector.after_send(round_number)


@dataclass
class ParallelResult:
    """Outcome of a distributed simulation."""

    estimates: Dict[str, Estimate]
    converged: bool
    n_slaves: int
    rounds: int
    master_events: int
    slave_events: List[int]
    total_accepted: int
    wall_time: float
    master_wall_time: float
    extras: Dict[str, float] = field(default_factory=dict)
    #: Per-slave cumulative determinism digests (from the final round's
    #: reports) when slaves ran sanitized, else None.  Comparable across
    #: backends: the master owns the chunk schedule, so slave ``i``
    #: replays the same stream serial or process-parallel.
    slave_digests: Optional[List] = None
    #: True when one or more slaves died and were *not* replaced (no
    #: respawn policy, or its budget ran out).  A degraded result is
    #: statistically valid (every merged observation is real) but
    #: covers fewer independent replicas than requested.  A run whose
    #: every death was recovered by respawn is NOT degraded.
    degraded: bool = False
    #: Slave ids left permanently dead (empty when healthy/recovered).
    dead_slaves: List[int] = field(default_factory=list)
    #: Machine-readable cause code per permanently dead slave
    #: (see the CAUSE_* constants in repro.parallel.protocol).
    failure_causes: Dict[int, str] = field(default_factory=dict)
    #: Respawns performed across the run (0 for a healthy run).
    restarts: int = 0
    #: Final merged-histogram digests per metric: the byte-identity
    #: fingerprint used by the checkpoint/resume determinism contract.
    merged_digests: Dict[str, str] = field(default_factory=dict)
    #: True when this run was restored from a checkpoint.
    resumed: bool = False
    #: repro.observability.ExperimentTelemetry when telemetry was
    #: collected (tracer attached), else None.
    telemetry: Optional[object] = None

    def __getitem__(self, name: str) -> Estimate:
        return self.estimates[name]

    @property
    def total_events(self) -> int:
        """Events simulated across master + all slaves."""
        return self.master_events + sum(self.slave_events)


class _RunBook:
    """Recovery bookkeeping shared by both backends.

    Tracks, per slave id: the current incarnation's seed and
    generation, its work log (chunk quotas completed *and merged*), the
    quota it was commanded but never reported (owed to a replacement),
    cumulative event/accepted accounting across incarnations, respawn
    counts, and — for slaves currently or permanently dead — the cause
    code.  One instance is the single source of truth the checkpoint
    writer serializes and the resume path restores.
    """

    def __init__(self, n_slaves: int, master_seed: int):
        self.lineage = SeedLineage(master_seed)
        self.generation: Dict[int, int] = {}
        self.seed: Dict[int, int] = {}
        self.work_log: Dict[int, List[int]] = {}
        self.owed: Dict[int, int] = {}
        self.causes: Dict[int, str] = {}
        self.restarts: Dict[int, int] = {}
        self.total_restarts = 0
        #: Current-incarnation progress (absolute counters from reports).
        self.events: Dict[int, int] = {}
        self.accepted: Dict[int, int] = {}
        #: Accounting inherited from dead predecessor incarnations.
        self.prior_events: Dict[int, int] = {}
        self.prior_accepted: Dict[int, int] = {}
        for slave_id in range(n_slaves):
            self.generation[slave_id] = 0
            self.seed[slave_id] = self.lineage.issue(slave_id, 0)
            self.work_log[slave_id] = []
            self.owed[slave_id] = 0
            self.restarts[slave_id] = 0
            self.events[slave_id] = 0
            self.accepted[slave_id] = 0
            self.prior_events[slave_id] = 0
            self.prior_accepted[slave_id] = 0

    @classmethod
    def from_checkpoint(cls, state: CheckpointState) -> "_RunBook":
        book = cls(state.n_slaves, state.master_seed)
        # Re-issue the recorded lineage so post-resume respawns keep the
        # uniqueness guarantee against pre-interruption seeds.
        for _seed, slave_id, generation in state.lineage:
            if slave_id >= 0:
                book.lineage.issue(slave_id, generation)
        for slave in state.slaves:
            i = slave.slave_id
            book.generation[i] = slave.generation
            book.seed[i] = book.lineage.issue(i, slave.generation)
            book.work_log[i] = list(slave.chunks)
            book.owed[i] = slave.owed
            book.restarts[i] = slave.restarts
            book.events[i] = slave.events_processed
            book.accepted[i] = slave.total_accepted
            book.prior_events[i] = slave.prior_events
            book.prior_accepted[i] = slave.prior_accepted
        book.causes = dict(state.dead)
        book.total_restarts = state.total_restarts
        return book

    # -- per-round transitions ----------------------------------------------

    def command_quota(self, slave_id: int, chunk: int) -> int:
        """This round's quota: the schedule chunk plus any owed backlog."""
        return chunk + self.owed.get(slave_id, 0)

    def on_reported(self, slave_id: int, quota: int, report) -> None:
        """A report for ``quota`` arrived and was merged."""
        self.work_log[slave_id].append(quota)
        self.owed[slave_id] = 0
        self.events[slave_id] = report.events_processed
        self.accepted[slave_id] = report.total_accepted

    def on_death(self, slave_id: int, cause: str, lost_quota: int) -> None:
        """Record a death; ``lost_quota`` is owed to the replacement."""
        self.causes[slave_id] = cause
        if lost_quota:
            self.owed[slave_id] = lost_quota

    def respawn(self, slave_id: int) -> int:
        """Advance to the next generation; returns the fresh seed."""
        self.prior_events[slave_id] += self.events[slave_id]
        self.prior_accepted[slave_id] += self.accepted[slave_id]
        self.events[slave_id] = 0
        self.accepted[slave_id] = 0
        self.generation[slave_id] += 1
        self.restarts[slave_id] += 1
        self.total_restarts += 1
        self.work_log[slave_id] = []
        self.causes.pop(slave_id, None)
        seed = self.lineage.issue(slave_id, self.generation[slave_id])
        self.seed[slave_id] = seed
        return seed

    # -- result accounting ---------------------------------------------------

    def events_total(self, slave_id: int) -> int:
        return self.prior_events[slave_id] + self.events[slave_id]

    def accepted_total(self, slave_id: int) -> int:
        return self.prior_accepted[slave_id] + self.accepted[slave_id]


class ParallelSimulation:
    """Master orchestration of a distributed BigHouse run.

    Parameters
    ----------
    factory:
        ``factory(seed, **factory_kwargs) -> Experiment``; must declare
        identical metrics on every call.
    n_slaves:
        Number of measurement replicas.
    backend:
        ``"serial"`` (in-process round-robin; deterministic),
        ``"process"`` (one OS process per slave on this host), or
        ``"remote"`` (slaves hosted by :mod:`repro.parallel.agent`
        processes over a :class:`~repro.parallel.transport.RemoteTransport`;
        requires ``transport``).  All backends run the identical
        master schedule, so merged digests are bit-identical.
    chunk_size:
        Accepted observations per slave in the first round between
        merges (rounds grow geometrically under ``adaptive_chunking``).
    max_rounds:
        Safety bound on measure/merge rounds.
    delta_reports:
        When True (default) slaves ship per-round histogram deltas and
        the master accumulates incrementally; False restores full-state
        reports (the A/B configuration — final estimates agree to float
        tolerance either way).
    adaptive_chunking:
        When True (default) the per-round chunk doubles each round up to
        ``max_chunk_size``; False keeps every round at ``chunk_size``.
    max_chunk_size:
        Cap for adaptive growth; defaults to ``16 * chunk_size``.
    round_timeout:
        Per-round recv deadline in host seconds (process backend).  A
        slave that produces no report within the deadline is marked
        dead with cause ``"heartbeat timeout"`` instead of stalling the
        round forever.  ``None`` disables the deadline (the historical
        blocking behavior).
    respawn:
        A :class:`~repro.faults.recovery.RespawnPolicy` enabling
        automatic replacement of dead slaves, or ``None`` (default) to
        keep the detect-and-degrade behavior.
    supervision:
        A :class:`~repro.faults.recovery.SupervisionPolicy` governing
        the run's fate as the fleet shrinks: a fleet floor
        (``min_workers``), a degradation threshold (``degrade_below``),
        and a measurement-phase wall-clock ``deadline``.  Violations
        raise :class:`~repro.faults.recovery.SupervisionError` with a
        machine-readable cause, or — with ``on_exhausted="continue"``
        — let the run finish ``degraded=True`` with whatever survives.
        ``None`` (default) keeps the historical behavior: run until
        every slave is dead, flag any unreplaced death degraded.
    fault_plan:
        A :class:`~repro.faults.plan.FaultPlan` of injected failures
        for chaos runs, or ``None``.
    checkpoint_path / checkpoint_interval:
        When ``checkpoint_path`` is set, an atomic resumable snapshot
        is written there every ``checkpoint_interval`` rounds; restore
        with ``run(resume_from=checkpoint_path)``.
    transport:
        Worker dispatch backend for the process/remote backends.
        Defaults to a fresh :class:`LocalPipeTransport` per run for
        ``"process"``; required for ``"remote"``.  A caller-provided
        transport is never closed by the run — its owner closes it.
    join_timeout:
        Remote backend: how long to wait for an agent slot when
        spawning or respawning a slave.
    """

    def __init__(
        self,
        factory: Callable[..., Experiment],
        factory_kwargs: Optional[dict] = None,
        n_slaves: int = 4,
        master_seed: int = 0,
        chunk_size: int = 2000,
        backend: str = "serial",
        max_rounds: int = 10_000,
        max_events_per_chunk: int = 10_000_000,
        delta_reports: bool = True,
        adaptive_chunking: bool = True,
        max_chunk_size: Optional[int] = None,
        round_timeout: Optional[float] = 600.0,
        respawn: Optional[RespawnPolicy] = None,
        supervision: Optional[SupervisionPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        checkpoint_path=None,
        checkpoint_interval: int = 1,
        transport: Optional[Transport] = None,
        join_timeout: float = 30.0,
    ):
        if n_slaves < 1:
            raise ParallelError(f"need >= 1 slave, got {n_slaves}")
        if chunk_size < 1:
            raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
        if backend not in ("serial", "process", "remote"):
            raise ParallelError(f"unknown backend {backend!r}")
        if backend == "remote" and transport is None:
            raise ParallelError(
                "backend 'remote' needs a transport (a RemoteTransport "
                "listening for repro agents)"
            )
        if max_chunk_size is not None and max_chunk_size < chunk_size:
            raise ParallelError(
                f"max_chunk_size ({max_chunk_size}) must be >= "
                f"chunk_size ({chunk_size})"
            )
        if round_timeout is not None and round_timeout <= 0:
            raise ParallelError(
                f"round_timeout must be > 0 or None, got {round_timeout}"
            )
        if checkpoint_interval < 1:
            raise ParallelError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        self.factory = factory
        self.factory_kwargs = dict(factory_kwargs or {})
        self.n_slaves = n_slaves
        self.master_seed = master_seed
        self.chunk_size = chunk_size
        self.backend = backend
        self.max_rounds = max_rounds
        self.max_events_per_chunk = max_events_per_chunk
        self.delta_reports = delta_reports
        self.adaptive_chunking = adaptive_chunking
        self.max_chunk_size = (
            max_chunk_size if max_chunk_size is not None else 16 * chunk_size
        )
        self.round_timeout = round_timeout
        self.respawn = respawn
        self.supervision = supervision
        self.fault_plan = fault_plan
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.transport = transport
        self.join_timeout = join_timeout
        self._tracer = None
        self._progress = None
        self._master_events = 0

    # -- observability ---------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Attach a :class:`repro.observability.Tracer` to the master.

        The master emits ``master/*`` records (merge spans when the
        tracer carries a host clock, round counters, dead-slave /
        respawn / checkpoint events) and ``slave/*`` report events.
        The calibration experiment also inherits the tracer, so a
        traced parallel run covers engine, statistic, master, and slave
        components.  The parallel layer is the boundary: host-clock use
        is legitimate here.
        """
        self._tracer = tracer

    def attach_progress(self, reporter) -> None:
        """Attach a ProgressReporter; it renders per-round convergence."""
        self._progress = reporter

    def _trace_round(self, round_number: int, reports: List[SlaveReport]) -> None:
        tracer = self._tracer
        if tracer is None:
            return
        for report in reports:
            tracer.event(
                "report",
                component="slave",
                sim_time=report.sim_time,
                slave=report.slave_id,
                round=round_number,
                events=report.events_processed,
                accepted=report.total_accepted,
            )

    def _trace_event(self, name: str, component: str = "master", **fields) -> None:
        if self._tracer is not None:
            self._tracer.event(name, component=component, **fields)

    def _trace_scheduled_faults(self, round_number: int) -> None:
        """Emit the plan's entries for this round (chaos audit trail)."""
        if self.fault_plan is None or self._tracer is None:
            return
        for spec in self.fault_plan.at_round(round_number):
            self._trace_event(
                "fault_scheduled",
                component="faults",
                slave=spec.slave_id,
                round=spec.round,
                kind=spec.kind,
                generation=spec.generation,
                phase=spec.phase,
            )

    def _merge_round(self, merged, reports, schemes, round_number: int):
        """One reduce step, traced as a ``master/merge`` span when possible."""
        tracer = self._tracer

        def reduce():
            if self.delta_reports:
                self._accumulate_reports(merged, reports)
                return merged
            return self._merge_reports(reports, schemes)

        if tracer is not None and tracer.has_clock:
            with tracer.span(
                "merge", component="master",
                round=round_number, reports=len(reports),
            ):
                return reduce()
        return reduce()

    def _round_chunk(self, round_number: int) -> int:
        """Accepted-observation quota per slave for one round (1-based).

        Geometric growth capped at ``max_chunk_size``; computed by the
        master so every backend follows the identical schedule.
        """
        if not self.adaptive_chunking:
            return self.chunk_size
        grown = self.chunk_size << min(round_number - 1, 60)
        return min(grown, self.max_chunk_size)

    # -- master steps ----------------------------------------------------------

    def _calibrate_master(self):
        master = self.factory(seed=self.master_seed, **self.factory_kwargs)
        if self._tracer is not None:
            master.attach_tracer(self._tracer)
        master.run_until_calibrated()
        for statistic in master.stats:
            if statistic.phase not in (Phase.MEASUREMENT, Phase.CONVERGED):
                raise ParallelError(
                    f"master failed to calibrate metric {statistic.name!r} "
                    f"(stuck in {statistic.phase.value})"
                )
        schemes = {
            statistic.name: scheme_payload(statistic.histogram.scheme)
            for statistic in master.stats
        }
        targets = {
            statistic.name: MetricTargets.from_statistic(statistic)
            for statistic in master.stats
        }
        return master, schemes, targets

    @staticmethod
    def _merge_reports(
        reports: List[SlaveReport], schemes: Dict[str, tuple]
    ) -> Dict[str, Histogram]:
        """Full re-merge from full-state reports (delta_reports=False)."""
        merged: Dict[str, Histogram] = {}
        for name, payload in schemes.items():
            merged[name] = Histogram(scheme_from_payload(payload))
        for report in reports:
            for name in schemes:
                if name in report.histograms:
                    merged[name].merge(report.histogram(name))
        return merged

    @staticmethod
    def _accumulate_reports(
        merged: Dict[str, Histogram], reports: List[SlaveReport]
    ) -> None:
        """Incremental reduce: fold one round of delta reports in place."""
        for report in reports:
            for name, payload in report.histograms.items():
                merged[name].merge_payload(payload)

    @staticmethod
    def _all_converged(
        merged: Dict[str, Histogram], targets: Dict[str, MetricTargets]
    ) -> bool:
        return all(
            is_converged(
                merged[name],
                target.mean_accuracy,
                target.quantile_dict,
                target.confidence,
                target.min_accepted,
            )
            for name, target in targets.items()
        )

    @staticmethod
    def _estimates(
        merged: Dict[str, Histogram],
        targets: Dict[str, MetricTargets],
        converged: bool,
    ) -> Dict[str, Estimate]:
        estimates = {}
        for name, target in targets.items():
            histogram = merged[name]
            estimate = Estimate(
                name=name,
                phase=Phase.CONVERGED if converged else Phase.MEASUREMENT,
                converged=converged,
                lag=None,
                accepted=histogram.count,
                observed=histogram.count,
            )
            if histogram.count:
                (
                    estimate.mean,
                    estimate.std,
                    estimate.quantiles,
                    estimate.mean_ci,
                    estimate.quantile_ci,
                ) = summarize_histogram(
                    histogram, target.quantile_dict, target.confidence
                )
            estimates[name] = estimate
        return estimates

    # -- report validation / fault handling -------------------------------------

    def _report_problem(
        self, report, slave_id: int, schemes: Dict[str, tuple]
    ) -> Optional[str]:
        """Why a received report must be rejected, or None when clean."""
        if not isinstance(report, SlaveReport):
            return f"expected a SlaveReport, got {type(report).__name__}"
        if report.slave_id != slave_id:
            return (
                f"report claims slave {report.slave_id}, "
                f"expected {slave_id}"
            )
        for name, payload in report.histograms.items():
            if name not in schemes:
                return f"report carries unknown metric {name!r}"
            problem = validate_report_payload(payload, schemes[name])
            if problem is not None:
                return f"{name}: {problem}"
        return None

    def _slave_faults(self, slave_id: int, generation: int) -> tuple:
        """The picklable fault sub-plan for one incarnation."""
        if self.fault_plan is None:
            return ()
        return self.fault_plan.for_slave(slave_id, generation)

    def _mark_dead(
        self,
        book: _RunBook,
        slave_id: int,
        round_number: int,
        cause: str,
        lost_quota: int,
    ) -> None:
        book.on_death(slave_id, cause, lost_quota)
        self._trace_event(
            "dead",
            component="slave",
            slave=slave_id,
            round=round_number,
            cause=cause,
            generation=book.generation[slave_id],
        )

    def _respawn_candidates(self, book: _RunBook, dead: List[int]) -> List[int]:
        """Dead slaves the policy will replace this round (budget check)."""
        if self.respawn is None:
            return []
        chosen = []
        total = book.total_restarts
        for slave_id in sorted(dead):
            if self.respawn.allows(book.restarts[slave_id], total):
                chosen.append(slave_id)
                total += 1
        return chosen

    # -- supervision --------------------------------------------------------------

    def _enforce_fleet(self, survivors: int, rounds: int) -> None:
        """Abort (typed) when the fleet fell below what the run needs.

        Called after each round's deaths and respawns have settled.
        Without a supervision policy this keeps the historical contract:
        zero survivors is fatal, anything else continues.
        """
        policy = self.supervision
        if survivors == 0:
            if policy is not None:
                raise SupervisionError(
                    f"every slave has died ({self.n_slaves} started, "
                    f"last loss in round {rounds}); no survivors to "
                    "finish the run",
                    cause=CAUSE_FLEET_EXHAUSTED,
                )
            raise ParallelError(
                f"every slave has died ({self.n_slaves} started, "
                f"last loss in round {rounds}); no survivors to "
                "finish the run"
            )
        if policy is None or policy.fleet_ok(survivors):
            return
        if policy.on_exhausted == "abort":
            raise SupervisionError(
                f"fleet fell to {survivors} live slave(s) in round "
                f"{rounds}, below min_workers={policy.min_workers}",
                cause=CAUSE_FLEET_EXHAUSTED,
            )
        self._trace_event(
            "fleet_below_minimum", survivors=survivors, round=rounds,
            min_workers=policy.min_workers,
        )

    def _deadline_exceeded(self, measure_started: float, rounds: int) -> bool:
        """Whether the supervision deadline has passed (and abort if so).

        Returns True to tell the caller to stop cleanly (``"continue"``:
        finish with the merged-so-far state flagged degraded); raises
        :class:`SupervisionError` under ``"abort"``.  The clock starts
        at the measurement phase, so calibration cost never eats the
        budget.
        """
        policy = self.supervision
        if policy is None or policy.deadline is None:
            return False
        elapsed = time.monotonic() - measure_started
        if elapsed <= policy.deadline:
            return False
        if policy.on_exhausted == "abort":
            raise SupervisionError(
                f"run exceeded its deadline ({elapsed:.1f}s > "
                f"{policy.deadline:.1f}s) after {rounds} round(s)",
                cause=CAUSE_DEADLINE_EXCEEDED,
            )
        self._trace_event(
            "deadline_stop", round=rounds, elapsed=elapsed,
            deadline=policy.deadline,
        )
        return True

    # -- checkpointing -----------------------------------------------------------

    def _checkpoint_state(
        self,
        book: _RunBook,
        schemes: Dict[str, tuple],
        targets: Dict[str, MetricTargets],
        merged: Dict[str, Histogram],
        round_number: int,
        dead: List[int],
    ) -> CheckpointState:
        # Every slave gets a record, dead ones included: a dead slave's
        # generation, restart count, owed quota, and accounting must
        # survive a resume, or a post-resume respawn would reset its
        # budget and re-issue a seed the lineage already spent on the
        # dead predecessor — double-counting the draws its reports
        # contributed to the checkpointed merged histograms.  Which
        # slaves are (permanently) dead is the separate cause map below.
        slaves = [
            SlaveCheckpoint(
                slave_id=slave_id,
                seed=book.seed[slave_id],
                generation=book.generation[slave_id],
                chunks=list(book.work_log[slave_id]),
                owed=book.owed.get(slave_id, 0),
                events_processed=book.events[slave_id],
                total_accepted=book.accepted[slave_id],
                restarts=book.restarts[slave_id],
                prior_events=book.prior_events[slave_id],
                prior_accepted=book.prior_accepted[slave_id],
            )
            for slave_id in range(self.n_slaves)
        ]
        return CheckpointState(
            master_seed=self.master_seed,
            n_slaves=self.n_slaves,
            chunk_size=self.chunk_size,
            adaptive_chunking=self.adaptive_chunking,
            max_chunk_size=self.max_chunk_size,
            delta_reports=self.delta_reports,
            round=round_number,
            master_events=self._master_events,
            schemes=dict(schemes),
            targets={
                name: {
                    "mean_accuracy": target.mean_accuracy,
                    "quantile_targets": [
                        list(pair) for pair in target.quantile_targets
                    ],
                    "confidence": target.confidence,
                    "min_accepted": target.min_accepted,
                }
                for name, target in targets.items()
            },
            merged={
                name: histogram.to_payload()
                for name, histogram in merged.items()
            },
            slaves=slaves,
            dead={slave_id: book.causes[slave_id] for slave_id in dead},
            lineage=book.lineage.issued(),
            total_restarts=book.total_restarts,
        )

    def _maybe_checkpoint(
        self, book, schemes, targets, merged, round_number, dead
    ) -> None:
        if self.checkpoint_path is None:
            return
        if round_number % self.checkpoint_interval != 0:
            return
        write_checkpoint(
            self.checkpoint_path,
            self._checkpoint_state(
                book, schemes, targets, merged, round_number, dead
            ),
        )
        self._trace_event("checkpoint", round=round_number)

    def _validate_resume(self, state: CheckpointState) -> None:
        """A checkpoint must match this run's deterministic schedule."""
        expected = {
            "master_seed": self.master_seed,
            "n_slaves": self.n_slaves,
            "chunk_size": self.chunk_size,
            "adaptive_chunking": self.adaptive_chunking,
            "max_chunk_size": self.max_chunk_size,
            "delta_reports": self.delta_reports,
        }
        for key, value in expected.items():
            found = getattr(state, key)
            if found != value:
                raise CheckpointError(
                    f"checkpoint is incompatible: {key} is {found!r}, "
                    f"this run is configured with {value!r}"
                )

    @staticmethod
    def _restore_merged(state: CheckpointState) -> Dict[str, Histogram]:
        merged = {}
        for name, payload in state.merged.items():
            merged[name] = Histogram.from_payload(payload)
        return merged

    @staticmethod
    def _restore_targets(state: CheckpointState) -> Dict[str, MetricTargets]:
        targets = {}
        for name, fields_ in state.targets.items():
            targets[name] = MetricTargets(
                name=name,
                mean_accuracy=fields_["mean_accuracy"],
                quantile_targets=tuple(
                    tuple(pair) for pair in fields_["quantile_targets"]
                ),
                confidence=fields_["confidence"],
                min_accepted=fields_["min_accepted"],
            )
        return targets

    # -- backends -------------------------------------------------------------------

    def run(self, resume_from=None) -> ParallelResult:
        """Execute the full master/slave protocol.

        With ``resume_from`` set to a checkpoint path, calibration is
        skipped (schemes and targets come from the checkpoint), slaves
        are rebuilt by replaying their logged chunk schedules, and the
        run continues from the checkpointed round — producing merged
        histograms byte-identical to an uninterrupted run.
        """
        started = time.perf_counter()
        resume_state = None
        if resume_from is not None:
            resume_state = read_checkpoint(resume_from)
            self._validate_resume(resume_state)
            schemes = dict(resume_state.schemes)
            targets = self._restore_targets(resume_state)
            self._master_events = resume_state.master_events
            master_wall = 0.0
            self._trace_event("resume", round=resume_state.round)
        else:
            master, schemes, targets = self._calibrate_master()
            self._master_events = master.simulation.events_processed
            master_wall = time.perf_counter() - started
        if self.backend == "serial":
            result = self._run_serial(schemes, targets, resume_state)
        else:
            result = self._run_process(schemes, targets, resume_state)
        result.master_events = self._master_events
        result.master_wall_time = master_wall
        result.wall_time = time.perf_counter() - started
        result.resumed = resume_state is not None
        if self._tracer is not None:
            from repro.observability.telemetry import ExperimentTelemetry

            result.telemetry = ExperimentTelemetry.from_parallel(
                result, tracer=self._tracer, dead_slaves=result.dead_slaves
            )
        return result

    def _result(
        self,
        book: _RunBook,
        merged: Dict[str, Histogram],
        targets: Dict[str, MetricTargets],
        converged: bool,
        rounds: int,
        reports: List[SlaveReport],
        dead: List[int],
        force_degraded: bool = False,
    ) -> ParallelResult:
        if self.supervision is not None:
            degraded = force_degraded or self.supervision.is_degraded(
                self.n_slaves - len(dead), len(dead)
            )
        else:
            degraded = force_degraded or bool(dead)
        return ParallelResult(
            estimates=self._estimates(merged, targets, converged),
            converged=converged,
            n_slaves=self.n_slaves,
            rounds=rounds,
            master_events=0,
            slave_events=[
                book.events_total(slave_id)
                for slave_id in range(self.n_slaves)
            ],
            total_accepted=sum(
                book.accepted_total(slave_id)
                for slave_id in range(self.n_slaves)
            ),
            wall_time=0.0,
            master_wall_time=0.0,
            slave_digests=(
                [report.digest for report in reports]
                if any(report.digest is not None for report in reports)
                else None
            ),
            degraded=degraded,
            dead_slaves=sorted(dead),
            failure_causes={
                slave_id: book.causes[slave_id] for slave_id in sorted(dead)
            },
            restarts=book.total_restarts,
            merged_digests={
                name: payload_digest(histogram.to_payload())
                for name, histogram in merged.items()
            },
        )

    # -- serial backend ---------------------------------------------------------

    def _build_serial_slave(self, slave_id: int, book: _RunBook, schemes):
        experiment = build_slave_experiment(
            self.factory, self.factory_kwargs, book.seed[slave_id], schemes
        )
        tracker = DeltaTracker() if self.delta_reports else None
        injector = FaultInjector(
            self._slave_faults(slave_id, book.generation[slave_id]),
            raise_instead=True,
        )
        return experiment, tracker, injector

    def _run_serial(self, schemes, targets, resume=None) -> ParallelResult:
        book = (
            _RunBook.from_checkpoint(resume)
            if resume is not None
            else _RunBook(self.n_slaves, self.master_seed)
        )
        dead: List[int] = sorted(resume.dead) if resume is not None else []
        slaves: Dict[int, Experiment] = {}
        trackers: Dict[int, Optional[DeltaTracker]] = {}
        injectors: Dict[int, FaultInjector] = {}
        for slave_id in range(self.n_slaves):
            if slave_id in dead:
                continue
            experiment, tracker, injector = self._build_serial_slave(
                slave_id, book, schemes
            )
            if resume is not None and book.work_log[slave_id]:
                experiment.replay_chunks(
                    book.work_log[slave_id],
                    max_events=self.max_events_per_chunk,
                )
                baseline = _slave_report(experiment, slave_id, tracker)
                self._check_replay(book, slave_id, baseline)
            slaves[slave_id] = experiment
            trackers[slave_id] = tracker
            injectors[slave_id] = injector
        rounds = resume.round if resume is not None else 0
        reports: List[SlaveReport] = []
        merged: Dict[str, Histogram] = (
            self._restore_merged(resume)
            if resume is not None
            else self._merge_reports([], schemes)
        )
        # A checkpoint taken on the converged round resumes as a no-op.
        converged = (
            self._all_converged(merged, targets)
            if resume is not None
            else False
        )
        measure_started = time.monotonic()
        deadline_stopped = False
        while rounds < self.max_rounds and not converged:
            if self._deadline_exceeded(measure_started, rounds):
                deadline_stopped = True
                break
            rounds += 1
            chunk = self._round_chunk(rounds)
            self._trace_scheduled_faults(rounds)
            reports = []
            dead_this_round: List[int] = []
            for slave_id in sorted(slaves):
                quota = book.command_quota(slave_id, chunk)
                injector = injectors[slave_id]
                slave = slaves[slave_id]
                try:
                    injector.on_chunk_start(rounds)
                    slave.run_until_accepted(
                        quota, max_events=self.max_events_per_chunk
                    )
                    report = injector.filter_report(
                        rounds, _slave_report(slave, slave_id,
                                              trackers[slave_id])
                    )
                except InjectedFailure as failure:
                    self._mark_dead(
                        book, slave_id, rounds,
                        f"{CAUSE_INJECTED}: {failure.spec.kind}", quota,
                    )
                    dead_this_round.append(slave_id)
                    continue
                problem = self._report_problem(report, slave_id, schemes)
                if problem is not None:
                    self._mark_dead(
                        book, slave_id, rounds,
                        f"{CAUSE_CORRUPT_PAYLOAD}: {problem}", quota,
                    )
                    dead_this_round.append(slave_id)
                    continue
                reports.append(report)
                book.on_reported(slave_id, quota, report)
                try:
                    injector.after_send(rounds)
                except InjectedFailure:  # pragma: no cover - defensive
                    # Serial post_report kills are deferred by the
                    # injector to the next round's on_chunk_start so
                    # both backends detect the death in the same round.
                    pass
            for slave_id in dead_this_round:
                slaves.pop(slave_id)
                trackers.pop(slave_id)
                injectors.pop(slave_id)
                dead.append(slave_id)
            self._trace_round(rounds, reports)
            merged = self._merge_round(merged, reports, schemes, rounds)
            converged = self._all_converged(merged, targets)
            if self._progress is not None:
                self._progress.parallel_update(rounds, merged, targets)
            if not converged:
                for slave_id in self._respawn_candidates(book, dead):
                    book.respawn(slave_id)
                    experiment, tracker, injector = self._build_serial_slave(
                        slave_id, book, schemes
                    )
                    slaves[slave_id] = experiment
                    trackers[slave_id] = tracker
                    injectors[slave_id] = injector
                    dead.remove(slave_id)
                    self._trace_event(
                        "respawn",
                        slave=slave_id,
                        round=rounds,
                        generation=book.generation[slave_id],
                        seed=book.seed[slave_id],
                    )
            self._enforce_fleet(len(slaves), rounds)
            self._maybe_checkpoint(
                book, schemes, targets, merged, rounds, dead
            )
        return self._result(
            book, merged, targets, converged, rounds, reports, dead,
            force_degraded=deadline_stopped,
        )

    def _check_replay(self, book: _RunBook, slave_id: int, baseline) -> None:
        """Replayed slave state must land exactly on the checkpoint."""
        expected = (book.events[slave_id], book.accepted[slave_id])
        found = (baseline.events_processed, baseline.total_accepted)
        if found != expected:
            raise ParallelError(
                f"resume replay diverged for slave {slave_id}: expected "
                f"(events, accepted) = {expected}, replay landed on "
                f"{found}; the factory or its workload is not "
                "deterministic in the seed"
            )

    # -- process backend --------------------------------------------------------

    @staticmethod
    def _shutdown_slaves(
        processes,
        pipes,
        join_timeout: float = 30.0,
        escalation_timeout: float = 5.0,
        tracer=None,
    ) -> List[tuple]:
        """Stop slave processes, escalating join → terminate → kill.

        Each slave first gets a cooperative ``"stop"`` and a
        ``join_timeout`` to exit cleanly; a survivor is terminated
        (SIGTERM) and, failing that too, killed (SIGKILL) — a hung or
        signal-ignoring slave must never wedge the master's exit path.
        Returns ``[(slave_id, action), ...]`` for every escalation
        beyond the clean join (``"terminate"`` / ``"kill"``), which is
        also what makes this testable with fake process objects.
        """
        for pipe in pipes:
            try:
                pipe.send("stop")
                pipe.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        escalations: List[tuple] = []
        for slave_id, process in enumerate(processes):
            process.join(timeout=join_timeout)
            if not process.is_alive():
                continue
            process.terminate()
            process.join(timeout=escalation_timeout)
            if process.is_alive():
                # multiprocessing.Process.kill() exists since 3.7; fall
                # back to terminate-again for exotic fakes without it.
                kill = getattr(process, "kill", process.terminate)
                kill()
                process.join(timeout=escalation_timeout)
                escalations.append((slave_id, "kill"))
            else:
                escalations.append((slave_id, "terminate"))
            if tracer is not None:
                tracer.event(
                    "shutdown_escalation",
                    component="master",
                    slave=slave_id,
                    action=escalations[-1][1],
                )
        return escalations

    @staticmethod
    def _reap(process, timeout: float = 5.0) -> None:
        """Ensure one dead-or-condemned slave process is truly gone."""
        process.join(timeout=0.0 if not process.is_alive() else timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout=timeout)
        if process.is_alive():  # pragma: no cover - stuck in kernel
            kill = getattr(process, "kill", process.terminate)
            kill()
            process.join(timeout=timeout)

    @staticmethod
    def _recv_with_deadline(pipe, deadline: Optional[float]):
        """``("ok", obj)`` | ``("timeout", None)`` | ``("eof", None)``.

        Replaces the historical bare ``pipe.recv()``: a slave that
        hangs *without* closing its pipe used to stall the master
        forever; polling against the shared round deadline bounds the
        wait, while a closed/reset pipe still surfaces immediately.
        """
        try:
            if deadline is None:
                remaining = None
            else:
                remaining = max(0.0, deadline - time.monotonic())
            if not pipe.poll(remaining):
                return ("timeout", None)
            return ("ok", pipe.recv())
        except (
            FrameError, EOFError, ConnectionResetError,
            BrokenPipeError, OSError,
        ):
            return ("eof", None)

    def _spawn_process_slave(
        self, transport: Transport, slave_id: int, book: _RunBook, schemes,
        replay=(), round_offset=0,
    ) -> WorkerEndpoint:
        return transport.spawn(
            slave_id,
            book.generation[slave_id],
            _process_slave_main,
            (
                self.factory,
                self.factory_kwargs,
                book.seed[slave_id],
                schemes,
                self.max_events_per_chunk,
                slave_id,
                self.delta_reports,
                self._slave_faults(slave_id, book.generation[slave_id]),
                tuple(replay),
                round_offset,
            ),
            timeout=self.join_timeout,
        )

    def _run_process(self, schemes, targets, resume=None) -> ParallelResult:
        transport = self.transport or LocalPipeTransport("fork")
        if self._tracer is not None:
            transport.attach_tracer(self._tracer)
        transport.start()
        book = (
            _RunBook.from_checkpoint(resume)
            if resume is not None
            else _RunBook(self.n_slaves, self.master_seed)
        )
        dead: List[int] = sorted(resume.dead) if resume is not None else []
        rounds = resume.round if resume is not None else 0
        slaves: Dict[int, WorkerEndpoint] = {}
        resumed_replay: Dict[int, int] = {}
        for slave_id in range(self.n_slaves):
            if slave_id in dead:
                continue
            replay = (
                book.work_log[slave_id] if resume is not None else ()
            )
            slaves[slave_id] = self._spawn_process_slave(
                transport, slave_id, book, schemes,
                replay=replay, round_offset=rounds,
            )
            if replay:
                resumed_replay[slave_id] = len(replay)
        reports: List[SlaveReport] = []
        merged: Dict[str, Histogram] = (
            self._restore_merged(resume)
            if resume is not None
            else self._merge_reports([], schemes)
        )
        # A checkpoint taken on the converged round resumes as a no-op.
        converged = (
            self._all_converged(merged, targets)
            if resume is not None
            else False
        )
        measure_started = time.monotonic()
        deadline_stopped = False

        def drop_slave(slave_id: int) -> None:
            """Forget a dead/condemned slave's endpoint and reap it."""
            endpoint = slaves.pop(slave_id, None)
            if endpoint is not None:
                endpoint.close()
                transport.reap(endpoint)

        try:
            # Resumed slaves replay their work logs and send a baseline
            # report; validate it lands exactly on the checkpoint state.
            if resumed_replay:
                deadline = None
                if self.round_timeout is not None:
                    deadline = time.monotonic() + self.round_timeout * max(
                        1, max(resumed_replay.values())
                    )
                for slave_id in sorted(resumed_replay):
                    status, baseline = self._recv_with_deadline(
                        slaves[slave_id], deadline
                    )
                    if status != "ok":
                        raise ParallelError(
                            f"slave {slave_id} is gone: died during "
                            f"resume replay ({status})"
                        )
                    self._check_replay(book, slave_id, baseline)
            while rounds < self.max_rounds and not converged:
                if self._deadline_exceeded(measure_started, rounds):
                    deadline_stopped = True
                    break
                rounds += 1
                chunk = self._round_chunk(rounds)
                self._trace_scheduled_faults(rounds)
                commanded: Dict[int, int] = {}
                dead_this_round: List[int] = []
                for slave_id in sorted(slaves):
                    quota = book.command_quota(slave_id, chunk)
                    try:
                        slaves[slave_id].send(("chunk", quota))
                        commanded[slave_id] = quota
                    except (BrokenPipeError, OSError) as error:
                        self._mark_dead(
                            book, slave_id, rounds,
                            f"{CAUSE_SEND_FAILED}: {error}", quota,
                        )
                        dead_this_round.append(slave_id)
                reports = []
                deadline = (
                    time.monotonic() + self.round_timeout
                    if self.round_timeout is not None
                    else None
                )
                # Wait on every outstanding pipe at once: a single hung
                # slave must not consume the other slaves' share of the
                # round deadline (sequential recvs would poll the
                # slaves after it with ~0 time left and falsely declare
                # them dead).  Any report that arrives within the round
                # window counts, whatever the arrival order.
                pending: Dict[int, int] = dict(commanded)
                received: Dict[int, object] = {}
                while pending:
                    remaining = (
                        max(0.0, deadline - time.monotonic())
                        if deadline is not None
                        else None
                    )
                    ready = transport.wait(
                        [slaves[slave_id] for slave_id in sorted(pending)],
                        timeout=remaining,
                    )
                    if not ready:
                        # Round deadline expired with reports missing:
                        # everyone still pending is hung.
                        for slave_id in sorted(pending):
                            self._mark_dead(
                                book, slave_id, rounds,
                                CAUSE_HEARTBEAT_TIMEOUT, pending[slave_id],
                            )
                            dead_this_round.append(slave_id)
                        break
                    for endpoint in ready:
                        # Dispatch by endpoint identity — no id()-keyed
                        # connection map that a recycled allocation
                        # could alias.  A stale readiness signal for a
                        # slave dropped within this drain simply skips.
                        slave_id = endpoint.worker_id
                        if (
                            slave_id not in pending
                            or slaves.get(slave_id) is not endpoint
                        ):
                            continue
                        quota = pending.pop(slave_id)
                        try:
                            received[slave_id] = endpoint.recv()
                        except (
                            FrameError, EOFError, ConnectionResetError,
                            BrokenPipeError, OSError,
                        ) as error:
                            # A dead slave closes (EOFError) or resets
                            # its pipe end; without this the master
                            # would block forever after a partial round.
                            # Liveness timeouts and corrupt frames keep
                            # their own cause codes.
                            self._mark_dead(
                                book, slave_id, rounds,
                                disconnect_cause(error, CAUSE_PIPE_CLOSED),
                                quota,
                            )
                            dead_this_round.append(slave_id)
                # Validate and merge in slave-id order regardless of
                # arrival order: float accumulation is not associative,
                # and merged digests must stay bit-identical run-to-run
                # and backend-to-backend.
                for slave_id in sorted(received):
                    report = received[slave_id]
                    problem = self._report_problem(report, slave_id, schemes)
                    if problem is not None:
                        self._mark_dead(
                            book, slave_id, rounds,
                            f"{CAUSE_CORRUPT_PAYLOAD}: {problem}",
                            commanded[slave_id],
                        )
                        dead_this_round.append(slave_id)
                        continue
                    reports.append(report)
                    book.on_reported(slave_id, commanded[slave_id], report)
                for slave_id in dead_this_round:
                    drop_slave(slave_id)
                    dead.append(slave_id)
                self._trace_round(rounds, reports)
                merged = self._merge_round(merged, reports, schemes, rounds)
                converged = self._all_converged(merged, targets)
                if self._progress is not None:
                    self._progress.parallel_update(rounds, merged, targets)
                if not converged:
                    for slave_id in self._respawn_candidates(book, dead):
                        generation = book.generation[slave_id] + 1
                        delay = self.respawn.delay(
                            generation,
                            jitter_seed=slave_seed(
                                self.master_seed, slave_id, generation
                            ),
                        )
                        if delay > 0.0:
                            # Round-synchronous barrier: all reports for
                            # this round are already merged, so the wait
                            # delays the next round start uniformly; it
                            # never stalls an individual slave's recv.
                            time.sleep(delay)  # simlint: disable=blocking-sleep-in-transport
                        book.respawn(slave_id)
                        try:
                            slaves[slave_id] = self._spawn_process_slave(
                                transport, slave_id, book, schemes,
                                round_offset=rounds,
                            )
                        except TransportCapacityError:
                            # No agent slot free: stay degraded this
                            # round; the slave remains a respawn
                            # candidate for the next one.
                            self._trace_event(
                                "respawn_no_capacity",
                                slave=slave_id,
                                round=rounds,
                            )
                            continue
                        dead.remove(slave_id)
                        self._trace_event(
                            "respawn",
                            slave=slave_id,
                            round=rounds,
                            generation=book.generation[slave_id],
                            seed=book.seed[slave_id],
                            backoff=delay,
                        )
                self._enforce_fleet(len(slaves), rounds)
                self._maybe_checkpoint(
                    book, schemes, targets, merged, rounds, dead
                )
        finally:
            transport.shutdown(
                [slaves[i] for i in sorted(slaves)]
            )
            if self.transport is None:
                transport.close()
        return self._result(
            book, merged, targets, converged, rounds, reports, dead,
            force_degraded=deadline_stopped,
        )
