"""The sim-vs-theory validation cases.

Since the sweep engine landed there is one validation path: every
validator here builds its slice of the acceptance grid and runs it
through :mod:`repro.validation.acceptance` (a sweep over
:func:`~repro.validation.acceptance.queue_point_factory`), so the
classic ``validate_*`` entry points, the acceptance tests, and CI all
judge the same experiments by the same CI-aware rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ValidationCase:
    """One sim-vs-theory comparison.

    ``ci`` is the statistics package's own confidence interval for the
    simulated estimate.  The pass rule is CI-aware:

        passed  ⇔  converged and
                   |sim − theory| ≤ tolerance·|theory| + half_width

    so a converged-but-noisy estimate widens its own budget by exactly
    its measured uncertainty instead of flakily failing a hard-coded
    relative-error threshold, while a tight estimate is still held to
    the tolerance.  With no CI attached, half_width is 0 and the rule
    reduces to the historical relative-error check.
    """

    name: str
    simulated: float
    theoretical: float
    tolerance: float
    converged: bool
    ci: Optional[Tuple[float, float]] = None

    @property
    def relative_error(self) -> float:
        """|sim - theory| / |theory|."""
        if self.theoretical == 0:
            return abs(self.simulated)
        return abs(self.simulated - self.theoretical) / abs(self.theoretical)

    @property
    def half_width(self) -> float:
        """Half the CI width (0 when no CI was recorded)."""
        if self.ci is None:
            return 0.0
        return abs(self.ci[1] - self.ci[0]) / 2.0

    @property
    def passed(self) -> bool:
        """True when the simulated estimate is within its CI-aware budget."""
        budget = self.tolerance * abs(self.theoretical) + self.half_width
        return self.converged and abs(
            self.simulated - self.theoretical
        ) <= budget


def _run_slice(
    points, seed: int, accuracy: float, names=None
) -> List[ValidationCase]:
    """Run a slice of the acceptance grid and optionally rename cases
    to the classic validator labels (in grid order)."""
    from repro.validation.acceptance import run_acceptance

    _, cases = run_acceptance(points, accuracy=accuracy, seed=seed)
    if names is not None:
        cases = [
            ValidationCase(
                name,
                case.simulated,
                case.theoretical,
                case.tolerance,
                case.converged,
                ci=case.ci,
            )
            for name, case in zip(names, cases)
        ]
    return cases


def validate_mm1(seed: int = 201, accuracy: float = 0.02) -> List[ValidationCase]:
    """M/M/1 at rho = 0.5: mean, 95th-, and 99th-percentile response."""
    return _run_slice(
        ({"model": "mm1", "rho": 0.5, "metric": "response",
          "quantiles": [0.95, 0.99]},),
        seed,
        accuracy,
        names=("M/M/1 mean response", "M/M/1 p95 response",
               "M/M/1 p99 response"),
    )


def validate_mmk(seed: int = 202, accuracy: float = 0.03) -> List[ValidationCase]:
    """M/M/4 at rho = 0.75: Erlang-C mean waiting."""
    return _run_slice(
        ({"model": "mmk", "rho": 0.75, "k": 4, "metric": "waiting"},),
        seed,
        accuracy,
        names=("M/M/4 mean waiting (Erlang-C)",),
    )


def validate_mg1(seed: int = 203, accuracy: float = 0.02) -> List[ValidationCase]:
    """M/G/1 Pollaczek-Khinchine for heavy-tailed and deterministic service."""
    return _run_slice(
        ({"model": "mg1", "rho": 0.5, "cv": 2.0, "metric": "waiting"},
         {"model": "mg1", "rho": 0.5, "cv": 0.0, "metric": "waiting"}),
        seed,
        accuracy,
        names=("M/G/1 mean waiting (H2 Cv=2)",
               "M/G/1 mean waiting (deterministic)"),
    )


def validate_ps(seed: int = 205, accuracy: float = 0.03) -> List[ValidationCase]:
    """M/G/1-PS: mean response E[S]/(1-rho), insensitive to Cv."""
    return _run_slice(
        ({"model": "ps", "rho": 0.5, "cv": 3.0, "metric": "response"},),
        seed,
        accuracy,
        names=("M/G/1-PS mean response (Cv=3)",),
    )


def run_validation_suite(accuracy: float = 0.02) -> List[ValidationCase]:
    """All validation cases, converged at the given accuracy target."""
    cases: List[ValidationCase] = []
    cases.extend(validate_mm1(accuracy=accuracy))
    cases.extend(validate_mmk(accuracy=max(accuracy, 0.03)))
    cases.extend(validate_mg1(accuracy=accuracy))
    cases.extend(validate_ps(accuracy=max(accuracy, 0.03)))
    return cases


def main() -> int:  # pragma: no cover - thin report wrapper
    """Print the sim-vs-theory table; exit 1 if any case fails."""
    from repro.validation.acceptance import format_acceptance_table

    cases = run_validation_suite()
    print(format_acceptance_table(cases), end="")
    return 1 if any(not case.passed for case in cases) else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
