"""The sim-vs-theory validation cases."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datacenter.processor_sharing import ProcessorSharingServer
from repro.datacenter.server import Server
from repro.distributions import Deterministic, Exponential, HyperExponential
from repro.engine.experiment import Experiment
from repro.theory import (
    mg1_mean_waiting,
    mm1_mean_response,
    mm1_quantile_response,
    mmk_mean_waiting,
)
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class ValidationCase:
    """One sim-vs-theory comparison."""

    name: str
    simulated: float
    theoretical: float
    tolerance: float
    converged: bool

    @property
    def relative_error(self) -> float:
        """|sim - theory| / |theory|."""
        if self.theoretical == 0:
            return abs(self.simulated)
        return abs(self.simulated - self.theoretical) / abs(self.theoretical)

    @property
    def passed(self) -> bool:
        """True when the simulated estimate is within tolerance."""
        return self.converged and self.relative_error <= self.tolerance


def _run_metric(
    workload: Workload,
    station,
    metric: str,
    seed: int,
    accuracy: float,
    quantile: Optional[float] = None,
    max_events: int = 30_000_000,
):
    experiment = Experiment(seed=seed, warmup_samples=500,
                            calibration_samples=3000)
    experiment.add_source(workload, target=station)
    quantiles = {quantile: accuracy} if quantile is not None else None
    if metric == "response":
        experiment.track_response_time(
            station, mean_accuracy=accuracy, quantiles=quantiles
        )
        name = "response_time"
    else:
        experiment.track_waiting_time(
            station, mean_accuracy=accuracy, quantiles=quantiles
        )
        name = "waiting_time"
    result = experiment.run(max_events=max_events)
    return result[name], result.converged


def validate_mm1(seed: int = 201, accuracy: float = 0.02) -> List[ValidationCase]:
    """M/M/1 at rho = 0.5: mean and 90th-percentile response."""
    lam, mu = 10.0, 20.0
    workload = Workload("mm1", Exponential(rate=lam), Exponential(rate=mu))
    estimate, converged = _run_metric(
        workload, Server(), "response", seed, accuracy, quantile=0.9
    )
    return [
        ValidationCase(
            "M/M/1 mean response",
            estimate.mean,
            mm1_mean_response(lam, mu),
            tolerance=3 * accuracy,
            converged=converged,
        ),
        ValidationCase(
            "M/M/1 p90 response",
            estimate.quantiles[0.9],
            mm1_quantile_response(lam, mu, 0.9),
            tolerance=4 * accuracy,
            converged=converged,
        ),
    ]


def validate_mmk(seed: int = 202, accuracy: float = 0.03) -> List[ValidationCase]:
    """M/M/4 at rho = 0.75: Erlang-C mean waiting."""
    lam, mu, k = 30.0, 10.0, 4
    workload = Workload("mmk", Exponential(rate=lam), Exponential(rate=mu))
    estimate, converged = _run_metric(
        workload, Server(cores=k), "waiting", seed, accuracy
    )
    return [
        ValidationCase(
            "M/M/4 mean waiting (Erlang-C)",
            estimate.mean,
            mmk_mean_waiting(lam, mu, k),
            tolerance=5 * accuracy,
            converged=converged,
        )
    ]


def validate_mg1(seed: int = 203, accuracy: float = 0.02) -> List[ValidationCase]:
    """M/G/1 Pollaczek-Khinchine for heavy-tailed and deterministic service."""
    lam = 10.0
    cases = []
    for label, service in (
        ("H2 Cv=2", HyperExponential.from_mean_cv(0.05, 2.0)),
        ("deterministic", Deterministic(0.05)),
    ):
        workload = Workload("mg1", Exponential(rate=lam), service)
        estimate, converged = _run_metric(
            workload, Server(), "waiting", seed, accuracy
        )
        cases.append(
            ValidationCase(
                f"M/G/1 mean waiting ({label})",
                estimate.mean,
                mg1_mean_waiting(lam, service),
                tolerance=6 * accuracy,
                converged=converged,
            )
        )
        seed += 1
    return cases


def validate_ps(seed: int = 205, accuracy: float = 0.03) -> List[ValidationCase]:
    """M/G/1-PS: mean response E[S]/(1-rho), insensitive to Cv."""
    lam = 10.0
    service = HyperExponential.from_mean_cv(0.05, 3.0)
    workload = Workload("ps", Exponential(rate=lam), service)
    estimate, converged = _run_metric(
        workload, ProcessorSharingServer(), "response", seed, accuracy
    )
    return [
        ValidationCase(
            "M/G/1-PS mean response (Cv=3)",
            estimate.mean,
            0.05 / (1.0 - 0.5),
            tolerance=6 * accuracy,
            converged=converged,
        )
    ]


def run_validation_suite(accuracy: float = 0.02) -> List[ValidationCase]:
    """All validation cases, converged at the given accuracy target."""
    cases: List[ValidationCase] = []
    cases.extend(validate_mm1(accuracy=accuracy))
    cases.extend(validate_mmk(accuracy=max(accuracy, 0.03)))
    cases.extend(validate_mg1(accuracy=accuracy))
    cases.extend(validate_ps(accuracy=max(accuracy, 0.03)))
    return cases


def main() -> int:  # pragma: no cover - thin report wrapper
    """Print the sim-vs-theory table; exit 1 if any case fails."""
    cases = run_validation_suite()
    width = max(len(case.name) for case in cases) + 2
    print(f"{'case'.ljust(width)}{'simulated':>12} {'theory':>12} "
          f"{'error':>8}  verdict")
    failures = 0
    for case in cases:
        verdict = "PASS" if case.passed else "FAIL"
        failures += not case.passed
        print(
            f"{case.name.ljust(width)}{case.simulated:>12.6g} "
            f"{case.theoretical:>12.6g} {case.relative_error:>7.2%}  {verdict}"
        )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
