"""Self-validation harness: simulation vs closed-form theory.

The paper's credibility argument is validation (Section 3: "case studies
that have been validated against real hardware").  Without the authors'
hardware we validate against mathematics instead: for every queueing
model with a known closed form, run the full BigHouse pipeline and
compare its converged estimate to the exact answer.

:func:`run_validation_suite` returns a list of :class:`ValidationCase`
rows; ``python -m repro.validation`` prints them as a report.  The test
suite asserts every case passes within its tolerance.
"""

from repro.validation.acceptance import (
    FULL_POINTS,
    MULTISERVER_FULL_POINTS,
    MULTISERVER_SMOKE_POINTS,
    SMOKE_POINTS,
    build_acceptance_spec,
    evaluate,
    format_acceptance_table,
    queue_point_factory,
    run_acceptance,
    theoretical_value,
    write_acceptance_table,
)
from repro.validation.suite import (
    ValidationCase,
    run_validation_suite,
    validate_mg1,
    validate_mm1,
    validate_mmk,
    validate_ps,
)

__all__ = [
    "FULL_POINTS",
    "MULTISERVER_FULL_POINTS",
    "MULTISERVER_SMOKE_POINTS",
    "SMOKE_POINTS",
    "ValidationCase",
    "build_acceptance_spec",
    "evaluate",
    "format_acceptance_table",
    "queue_point_factory",
    "run_acceptance",
    "run_validation_suite",
    "theoretical_value",
    "validate_mm1",
    "validate_mmk",
    "validate_mg1",
    "validate_ps",
    "write_acceptance_table",
]
