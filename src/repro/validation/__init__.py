"""Self-validation harness: simulation vs closed-form theory.

The paper's credibility argument is validation (Section 3: "case studies
that have been validated against real hardware").  Without the authors'
hardware we validate against mathematics instead: for every queueing
model with a known closed form, run the full BigHouse pipeline and
compare its converged estimate to the exact answer.

:func:`run_validation_suite` returns a list of :class:`ValidationCase`
rows; ``python -m repro.validation`` prints them as a report.  The test
suite asserts every case passes within its tolerance.
"""

from repro.validation.suite import (
    ValidationCase,
    run_validation_suite,
    validate_mg1,
    validate_mm1,
    validate_mmk,
    validate_ps,
)

__all__ = [
    "ValidationCase",
    "run_validation_suite",
    "validate_mm1",
    "validate_mmk",
    "validate_mg1",
    "validate_ps",
]
