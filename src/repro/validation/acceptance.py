"""Statistical acceptance harness: a sweep over closed-form queues.

The single validation path: every sim-vs-theory comparison — the
classic :mod:`repro.validation.suite` validators *and* the acceptance
grid exercised by ``tests/test_acceptance_theory.py`` — runs through
one :class:`repro.sweep.SweepSpec` over :func:`queue_point_factory` and
is judged by one rule, CI-aware:

    pass  ⇔  converged  and  |sim − theory| ≤ tol·|theory| + half_width

where ``half_width`` comes from the statistics package's own confidence
interval for that estimate.  A converged-but-noisy run widens its own
budget instead of flaking; a tight run is held to the tolerance.

Grid points are plain dicts (model, rho, cv, k, metric, quantiles), so
they slot directly into a sweep ``grid`` and are content-addressed like
any other point — the acceptance grid caches, parallelizes, and
resumes exactly like a figure sweep.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.sweep import SweepResult, SweepRunner, SweepSpec

#: Default per-server service rate; lam is derived as rho * k * mu.
DEFAULT_MU = 20.0

#: The always-on smoke subset: one point per model family, plus the
#: engine axis — the same M/M/1 and M/M/k models re-judged on the
#: vectorized fastpath engine, so tier-1 always cross-checks the two
#: engines against the same closed forms.  Fastpath points are appended
#: *after* the historical ones: each point's derived seed (and so its
#: digest) is a function of its grid index, and prepending would move
#: every pre-existing result.
SMOKE_POINTS = (
    {"model": "mm1", "rho": 0.5, "metric": "response",
     "quantiles": [0.95, 0.99]},
    {"model": "mmk", "rho": 0.75, "k": 4, "metric": "waiting"},
    {"model": "mg1", "rho": 0.5, "cv": 2.0, "metric": "waiting"},
    {"model": "mm1", "rho": 0.5, "metric": "response",
     "quantiles": [0.95, 0.99], "engine": "fastpath"},
    {"model": "mmk", "rho": 0.75, "k": 4, "metric": "waiting",
     "engine": "fastpath"},
)

#: The full acceptance grid (superset of the smoke subset).
FULL_POINTS = SMOKE_POINTS + (
    {"model": "mm1", "rho": 0.3, "metric": "response",
     "quantiles": [0.95, 0.99]},
    {"model": "mm1", "rho": 0.7, "metric": "response",
     "quantiles": [0.95, 0.99]},
    {"model": "mm1", "rho": 0.9, "metric": "response"},
    {"model": "mmk", "rho": 0.5, "k": 4, "metric": "waiting"},
    {"model": "mmk", "rho": 0.9, "k": 4, "metric": "waiting"},
    {"model": "mg1", "rho": 0.5, "cv": 0.0, "metric": "waiting"},
    {"model": "mg1", "rho": 0.5, "cv": 4.0, "metric": "waiting"},
    {"model": "mg1", "rho": 0.7, "cv": 2.0, "metric": "waiting"},
    {"model": "ps", "rho": 0.5, "cv": 3.0, "metric": "response"},
    {"model": "mg1", "rho": 0.7, "cv": 2.0, "metric": "waiting",
     "engine": "fastpath"},
)

#: Multiserver-job and cloning grids, validated against
#: :mod:`repro.theory.multiserver` (seeded recurrence reference) and
#: :mod:`repro.theory.cloning` (PS closed forms).  Kept as separate
#: tuples — appending them to the historical grids would leave old
#: digests intact but these run as their own spec (and CI smoke job),
#: so tier-1 cost stays flat for everyone not touching gang scheduling.
MULTISERVER_SMOKE_POINTS = (
    {"model": "msj", "rho": 0.5, "n_servers": 4,
     "need_values": [1, 2, 4], "need_weights": [0.5, 0.3, 0.2],
     "metric": "response"},
    {"model": "msj", "rho": 0.7, "n_servers": 4,
     "need_values": [1, 2], "need_weights": [0.5, 0.5],
     "metric": "waiting"},
    {"model": "clone_ps", "rho": 0.5, "backends": 2, "clones": 2,
     "metric": "response"},
)

#: The full multiserver/cloning grid (superset of the smoke subset).
MULTISERVER_FULL_POINTS = MULTISERVER_SMOKE_POINTS + (
    {"model": "msj", "rho": 0.3, "n_servers": 8,
     "need_values": [1, 2, 4], "need_weights": [0.6, 0.3, 0.1],
     "metric": "response"},
    {"model": "msj", "rho": 0.5, "n_servers": 2,
     "need_values": [1, 2], "need_weights": [0.5, 0.5],
     "metric": "response"},
    {"model": "clone_ps", "rho": 0.5, "backends": 4, "clones": 1,
     "metric": "response"},
    {"model": "clone_ps", "rho": 0.7, "backends": 2, "clones": 2,
     "metric": "response"},
    {"model": "clone_ps", "rho": 0.3, "backends": 3, "clones": 3,
     "metric": "response"},
)

#: Tolerance (x accuracy target) per model family; on top of these the
#: CI half-width widens each budget (see module docstring).  ``msj`` is
#: judged against a finite Monte-Carlo reference (not an exact closed
#: form), so its budget also absorbs the reference's own noise.
TOLERANCE_FACTORS = {
    "mm1": 3.0, "mmk": 5.0, "mg1": 6.0, "ps": 6.0,
    "msj": 8.0, "clone_ps": 6.0,
}
#: Quantile estimates are noisier than means.
QUANTILE_FACTOR = 4.0

#: Seed / sample count naming the multiserver recurrence reference run;
#: changing either changes every msj ground-truth value bit-for-bit.
MSJ_REFERENCE_SEED = 0xB16
MSJ_REFERENCE_JOBS = 200_000

#: Grid-entry keys forwarded to :func:`theoretical_value` beyond the
#: classic (rho, cv, k, mu) quadruple.
_EXTRA_KEYS = ("n_servers", "need_values", "need_weights", "backends", "clones")


def queue_point_factory(
    seed: int,
    model: str = "mm1",
    rho: float = 0.5,
    cv: float = 1.0,
    k: int = 1,
    mu: float = DEFAULT_MU,
    metric: str = "response",
    quantiles: Sequence[float] = (),
    accuracy: float = 0.02,
    warmup_samples: int = 500,
    calibration_samples: int = 3000,
    engine: str = "event",
    n_servers: int = 4,
    need_values: Sequence[int] = (1, 2),
    need_weights: Optional[Sequence[float]] = None,
    backends: int = 2,
    clones: int = 2,
):
    """Build the experiment for one acceptance grid point.

    Module-level and picklable, so pool workers can rebuild it from a
    job payload.  ``model`` selects the queueing family: ``mm1``/``mmk``
    (exponential service on a ``k``-core station), ``mg1`` (service
    fitted to ``cv`` — deterministic, Gamma, or hyperexponential),
    ``ps`` (processor sharing, Cv-insensitive), ``msj`` (gang-scheduled
    multiserver jobs on an ``n_servers`` cluster, server need drawn
    from ``need_values``/``need_weights``), and ``clone_ps``
    (synchronized clone-to-``clones`` over ``backends`` PS servers).
    ``engine`` selects the simulation engine (``"fastpath"`` points are
    what hold the vectorized engine to the same theory-vs-sim
    verdicts; ``msj``/``clone_ps`` never qualify for it).
    """
    from repro.datacenter.balancers import CloningBalancer
    from repro.datacenter.cluster import MultiserverCluster
    from repro.datacenter.processor_sharing import ProcessorSharingServer
    from repro.datacenter.server import Server
    from repro.distributions import Choice, Exponential, fit_mean_cv
    from repro.engine.experiment import Experiment
    from repro.workloads.workload import Workload

    if model == "msj":
        need = Choice(need_values, need_weights)
        # rho is the offered load on the whole pool: lam E[k] / (N mu).
        lam = rho * n_servers * mu / need.mean()
        workload = Workload(
            model, Exponential(rate=lam), Exponential(rate=mu)
        ).with_servers_needed(need)
        station = MultiserverCluster(n_servers)
    elif model == "clone_ps":
        # rho is the per-backend load: each of the d replicas offers
        # lam/backends ... lam d / (backends mu) = rho.
        lam = rho * backends * mu / clones
        workload = Workload(model, Exponential(rate=lam), Exponential(rate=mu))
        station = CloningBalancer(
            [ProcessorSharingServer(name=f"ps{i}") for i in range(backends)],
            clones=clones,
        )
    else:
        lam = rho * k * mu
        if model in ("mm1", "mmk"):
            service = Exponential(rate=mu)
        else:
            service = fit_mean_cv(1.0 / mu, cv)
        if model == "ps":
            station = ProcessorSharingServer()
        else:
            station = Server(cores=k)
        workload = Workload(model, Exponential(rate=lam), service)
    experiment = Experiment(
        seed=seed,
        warmup_samples=warmup_samples,
        calibration_samples=calibration_samples,
        engine=engine,
    )
    experiment.add_source(workload, target=station)
    quantile_targets = {float(q): accuracy for q in quantiles} or None
    if metric == "response":
        experiment.track_response_time(
            station, mean_accuracy=accuracy, quantiles=quantile_targets
        )
    else:
        experiment.track_waiting_time(
            station, mean_accuracy=accuracy, quantiles=quantile_targets
        )
    return experiment


@lru_cache(maxsize=None)
def _msj_reference_value(
    lam: float,
    mu: float,
    n_servers: int,
    need_values: tuple,
    need_weights: Optional[tuple],
    metric: str,
) -> float:
    """Seeded recurrence reference for one msj point (cached: evaluate
    re-asks per statistic and the reference run is the expensive part)."""
    from repro.theory.multiserver import reference_mean

    return reference_mean(
        lam, mu, n_servers, need_values, need_weights, metric=metric,
        seed=MSJ_REFERENCE_SEED, n_jobs=MSJ_REFERENCE_JOBS,
    )


def theoretical_value(
    model: str,
    metric: str,
    rho: float,
    cv: float = 1.0,
    k: int = 1,
    mu: float = DEFAULT_MU,
    quantile: Optional[float] = None,
    n_servers: int = 4,
    need_values: Sequence[int] = (1, 2),
    need_weights: Optional[Sequence[float]] = None,
    backends: int = 2,
    clones: int = 2,
) -> Optional[float]:
    """Ground-truth value for one grid point's statistic, or None when
    no exact form exists (e.g. M/M/k quantiles).  Classic families use
    closed forms; ``msj`` uses the seeded multiserver recurrence
    reference (an independent simulator, not a formula) and
    ``clone_ps`` the PS-cloning closed forms."""
    from repro import theory
    from repro.distributions import fit_mean_cv

    if model == "msj":
        if quantile is not None:
            return None
        from repro.distributions import Choice

        mean_need = Choice(need_values, need_weights).mean()
        lam = rho * n_servers * mu / mean_need
        return _msj_reference_value(
            lam, mu, n_servers, tuple(need_values),
            tuple(need_weights) if need_weights is not None else None,
            metric,
        )
    if model == "clone_ps":
        if quantile is not None or metric != "response":
            return None
        lam = rho * backends * mu / clones
        return theory.ps_cloning_response(lam, mu, backends, clones)

    lam = rho * k * mu
    if model == "mm1":
        if quantile is not None:
            if metric != "response":
                return None
            return theory.mm1_quantile_response(lam, mu, quantile)
        if metric == "response":
            return theory.mm1_mean_response(lam, mu)
        return theory.mm1_mean_waiting(lam, mu)
    if quantile is not None:
        return None
    if model == "mmk":
        if metric == "response":
            return theory.mmk_mean_response(lam, mu, k)
        return theory.mmk_mean_waiting(lam, mu, k)
    if model == "mg1":
        service = fit_mean_cv(1.0 / mu, cv)
        if metric == "response":
            return theory.mg1_mean_response(lam, service)
        return theory.mg1_mean_waiting(lam, service)
    if model == "ps":
        # M/G/1-PS mean response E[S]/(1-rho), insensitive to Cv.
        if metric != "response":
            return None
        return (1.0 / mu) / (1.0 - rho)
    raise ValueError(f"unknown model {model!r}")


def point_label(entry: dict) -> str:
    """A human-readable name for one grid entry."""
    model = entry["model"]
    pretty = {
        "mm1": "M/M/1",
        "mmk": f"M/M/{entry.get('k', 1)}",
        "mg1": f"M/G/1 Cv={entry.get('cv', 1.0):g}",
        "ps": f"M/G/1-PS Cv={entry.get('cv', 1.0):g}",
        "msj": (
            f"MSJ N={entry.get('n_servers', 4)} "
            f"k∈{entry.get('need_values', [1, 2])}"
        ),
        "clone_ps": (
            f"PS-clone d={entry.get('clones', 2)}"
            f"/{entry.get('backends', 2)}"
        ),
    }[model]
    label = f"{pretty} rho={entry['rho']:g}"
    engine = entry.get("engine", "event")
    if engine != "event":
        label += f" [{engine}]"
    return label


def build_acceptance_spec(
    points: Iterable[dict] = SMOKE_POINTS,
    accuracy: float = 0.02,
    seed: int = 3001,
    max_events: int = 30_000_000,
    name: str = "acceptance-theory",
) -> SweepSpec:
    """The acceptance grid as an ordinary sweep spec."""
    return SweepSpec(
        name=name,
        kind="factory",
        seed=seed,
        factory=queue_point_factory,
        factory_kwargs={"accuracy": accuracy},
        grid=tuple(dict(entry) for entry in points),
        max_events=max_events,
    )


def evaluate(result: SweepResult, accuracy: float = 0.02) -> List["ValidationCase"]:
    """Judge every sweep point against theory; one case per statistic."""
    from repro.validation.suite import ValidationCase

    cases: List[ValidationCase] = []
    for point in result.points:
        entry = point.params
        model = entry["model"]
        metric = entry.get("metric", "response")
        metric_name = f"{metric}_time"
        estimate = point.estimate(metric_name)
        factor = TOLERANCE_FACTORS[model]
        label = point_label(entry)
        extra = {key: entry[key] for key in _EXTRA_KEYS if key in entry}
        theory_mean = theoretical_value(
            model, metric, entry["rho"],
            cv=entry.get("cv", 1.0), k=entry.get("k", 1),
            mu=entry.get("mu", DEFAULT_MU), **extra,
        )
        mean_ci = estimate.get("mean_ci")
        cases.append(
            ValidationCase(
                f"{label} mean {metric}",
                estimate["mean"],
                theory_mean,
                tolerance=factor * accuracy,
                converged=point.converged,
                ci=tuple(mean_ci) if mean_ci else None,
            )
        )
        for q in entry.get("quantiles", ()):
            theory_q = theoretical_value(
                model, metric, entry["rho"],
                cv=entry.get("cv", 1.0), k=entry.get("k", 1),
                mu=entry.get("mu", DEFAULT_MU), quantile=q, **extra,
            )
            if theory_q is None:
                continue
            q_ci = estimate["quantile_ci"].get(str(q))
            cases.append(
                ValidationCase(
                    f"{label} p{int(round(q * 100))} {metric}",
                    estimate["quantiles"][str(q)],
                    theory_q,
                    tolerance=QUANTILE_FACTOR * accuracy,
                    converged=point.converged,
                    ci=tuple(q_ci) if q_ci else None,
                )
            )
    return cases


def run_acceptance(
    points: Iterable[dict] = SMOKE_POINTS,
    accuracy: float = 0.02,
    seed: int = 3001,
    backend: str = "serial",
    jobs: Optional[int] = None,
    cache=None,
    tracer=None,
    name: str = "acceptance-theory",
) -> Tuple[SweepResult, List["ValidationCase"]]:
    """Run the acceptance grid; returns (sweep result, judged cases)."""
    spec = build_acceptance_spec(points, accuracy=accuracy, seed=seed, name=name)
    result = SweepRunner(
        spec, backend=backend, jobs=jobs, cache=cache, tracer=tracer
    ).run()
    return result, evaluate(result, accuracy=accuracy)


def format_acceptance_table(cases: Iterable["ValidationCase"]) -> str:
    """The acceptance pass table (published as a CI artifact)."""
    cases = list(cases)
    width = max(len(case.name) for case in cases) + 2
    lines = [
        f"{'case'.ljust(width)}{'simulated':>12} {'theory':>12} "
        f"{'error':>8} {'ci half-width':>14}  verdict"
    ]
    for case in cases:
        half = f"{case.half_width:.3g}" if case.ci else "-"
        verdict = "PASS" if case.passed else "FAIL"
        lines.append(
            f"{case.name.ljust(width)}{case.simulated:>12.6g} "
            f"{case.theoretical:>12.6g} {case.relative_error:>7.2%} "
            f"{half:>14}  {verdict}"
        )
    failed = sum(not case.passed for case in cases)
    lines.append(
        f"\n{len(cases) - failed}/{len(cases)} cases passed"
        + (f" ({failed} FAILED)" if failed else "")
    )
    return "\n".join(lines) + "\n"


def write_acceptance_table(
    cases: Iterable["ValidationCase"], path: Union[str, Path]
) -> Path:
    """Write the pass table to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(format_acceptance_table(cases))
    return path
