"""FaultPlan: a seeded, deterministic schedule of injected failures.

A chaos run is only useful if it is *replayable*: the same plan against
the same experiment seed must kill the same slave in the same round
every time, so a recovery bug found in CI reproduces on a laptop.  A
:class:`FaultPlan` is therefore plain data — a tuple of
:class:`FaultSpec` entries addressed by ``(slave_id, generation,
round)`` — with JSON (de)serialization for the ``--chaos`` CLI flag and
a seeded :meth:`FaultPlan.random` constructor for fuzzing.

Fault kinds
-----------

``kill``
    The slave dies (``os._exit`` on the process backend, an
    :class:`~repro.faults.injector.InjectedFailure` on the serial
    backend).  ``phase`` selects *when* within the round: before the
    chunk runs (``"pre_run"``), after the chunk but before the report is
    sent (``"pre_report"``), or immediately after the report is sent
    (``"post_report"``) — the three distinct windows a real crash can
    land in, with different work-loss consequences.
``hang``
    The slave stops responding without closing its pipe (sleeps
    ``delay`` seconds, default effectively forever).  Exercises the
    master's per-round recv deadline; process backend only.
``drop_report``
    The slave runs its chunk but never sends the report (one round).
    The master sees a heartbeat timeout, exactly as if the report were
    lost in transit.
``corrupt_payload``
    The report is sent with a deterministically mangled histogram
    payload; the master must detect it *before* merging and attribute
    the failure to this slave.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.engine.simulation import seeded_rng

#: Every fault kind a plan may schedule.
FAULT_KINDS = ("kill", "hang", "drop_report", "corrupt_payload")

#: The windows within a round a ``kill`` may target.
KILL_PHASES = ("pre_run", "pre_report", "post_report")


class FaultError(ValueError):
    """Raised for malformed fault plans or specs."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure.

    ``round`` is 1-based (matching the master's round counter) and
    ``generation`` selects which incarnation of the slave is targeted:
    generation 0 is the original, each respawn increments it.  A spec
    for generation g never fires on generation g+1 — so "kill slave 2
    at round 3" does not also kill its replacement.
    """

    kind: str
    slave_id: int
    round: int
    generation: int = 0
    phase: str = "pre_report"  # kill only; see KILL_PHASES
    delay: float = 3600.0  # hang only: seconds to stay silent

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected {FAULT_KINDS}"
            )
        if self.slave_id < 0:
            raise FaultError(f"slave_id must be >= 0, got {self.slave_id}")
        if self.round < 1:
            raise FaultError(f"round is 1-based, got {self.round}")
        if self.generation < 0:
            raise FaultError(f"generation must be >= 0, got {self.generation}")
        if self.kind == "kill" and self.phase not in KILL_PHASES:
            raise FaultError(
                f"kill phase must be one of {KILL_PHASES}, got {self.phase!r}"
            )
        if self.delay <= 0:
            raise FaultError(f"delay must be > 0, got {self.delay}")

    def to_dict(self) -> dict:
        """JSON-safe plain form."""
        return {
            "kind": self.kind,
            "slave_id": self.slave_id,
            "round": self.round,
            "generation": self.generation,
            "phase": self.phase,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {"kind", "slave_id", "round", "generation", "phase", "delay"}
        unknown = set(data) - known
        if unknown:
            raise FaultError(f"unknown FaultSpec key(s): {sorted(unknown)}")
        if "kind" not in data:
            raise FaultError("FaultSpec requires a 'kind'")
        return cls(
            kind=data["kind"],
            slave_id=int(data.get("slave_id", 0)),
            round=int(data.get("round", 1)),
            generation=int(data.get("generation", 0)),
            phase=data.get("phase", "pre_report"),
            delay=float(data.get("delay", 3600.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, addressable collection of :class:`FaultSpec` entries."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    #: The seed used by :meth:`random` (informational; kept so a fuzzed
    #: plan serializes with its provenance).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        seen = set()
        for spec in self.specs:
            key = (spec.slave_id, spec.generation, spec.round, spec.kind)
            if key in seen:
                raise FaultError(
                    f"duplicate fault {spec.kind!r} for slave "
                    f"{spec.slave_id} gen {spec.generation} round {spec.round}"
                )
            seen.add(key)
        # A drop_report suppresses the very send a post_report kill is
        # anchored to, so combining them on one (slave, generation,
        # round) cannot execute the same way on both backends (serial
        # raises on the drop before after_send ever runs).  Reject the
        # contradiction up front instead of diverging at run time.
        for spec in self.specs:
            if spec.kind != "kill" or spec.phase != "post_report":
                continue
            slot = (spec.slave_id, spec.generation, spec.round)
            if (*slot, "drop_report") in seen:
                raise FaultError(
                    f"contradictory faults for slave {spec.slave_id} gen "
                    f"{spec.generation} round {spec.round}: drop_report "
                    "suppresses the send a post_report kill fires after"
                )

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_slave(
        self, slave_id: int, generation: int = 0
    ) -> Tuple[FaultSpec, ...]:
        """The (picklable) sub-plan shipped to one slave incarnation."""
        return tuple(
            spec
            for spec in self.specs
            if spec.slave_id == slave_id and spec.generation == generation
        )

    def at_round(self, round_number: int) -> Tuple[FaultSpec, ...]:
        """All specs scheduled for one master round (trace emission)."""
        return tuple(
            spec for spec in self.specs if spec.round == round_number
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def single(cls, kind: str, slave_id: int, round: int, **kwargs) -> "FaultPlan":
        """A one-spec plan (the common test/smoke configuration)."""
        return cls(specs=(FaultSpec(kind=kind, slave_id=slave_id,
                                    round=round, **kwargs),))

    @classmethod
    def random(
        cls,
        seed: int,
        n_slaves: int,
        max_round: int,
        n_faults: int = 1,
        kinds: Iterable[str] = ("kill", "drop_report", "corrupt_payload"),
    ) -> "FaultPlan":
        """A seeded random plan: same arguments, same faults, every time.

        ``hang`` is excluded from the default kinds because it trades
        wall-clock for coverage; opt in explicitly for timeout testing.
        """
        kinds = tuple(kinds)
        if not kinds:
            raise FaultError("need at least one fault kind")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise FaultError(f"unknown fault kind {kind!r}")
        if n_slaves < 1 or max_round < 1:
            raise FaultError("need n_slaves >= 1 and max_round >= 1")
        rng = seeded_rng(seed)
        specs: List[FaultSpec] = []
        taken = set()
        drops = set()       # slots holding a drop_report
        post_kills = set()  # slots holding a kill/post_report
        for index in range(n_faults):
            # Rejection-sample around duplicates and contradictions
            # (drop_report vs kill/post_report on one slot).
            for _ in range(64):
                kind = kinds[int(rng.integers(len(kinds)))]
                slave = int(rng.integers(n_slaves))
                round_number = int(rng.integers(1, max_round + 1))
                phase = KILL_PHASES[int(rng.integers(len(KILL_PHASES)))]
                key = (slave, 0, round_number, kind)
                slot = (slave, 0, round_number)
                if key in taken:
                    continue
                if kind == "drop_report" and slot in post_kills:
                    continue
                if kind == "kill" and phase == "post_report" and slot in drops:
                    continue
                taken.add(key)
                if kind == "drop_report":
                    drops.add(slot)
                elif kind == "kill" and phase == "post_report":
                    post_kills.add(slot)
                specs.append(
                    FaultSpec(kind=kind, slave_id=slave,
                              round=round_number, phase=phase)
                )
                break
            else:
                # Silently yielding fewer specs would let a fuzz run
                # believe it injected faults it never placed.
                raise FaultError(
                    f"could not place fault {index + 1} of {n_faults} "
                    f"after 64 attempts; the n_slaves={n_slaves} x "
                    f"max_round={max_round} x {len(kinds)}-kind space "
                    "is too small for the requested plan"
                )
        return cls(specs=tuple(specs), seed=seed)

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe plain form (``--chaos`` files)."""
        payload: Dict[str, object] = {
            "faults": [spec.to_dict() for spec in self.specs]
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultError("fault plan must be an object with a 'faults' list")
        return cls(
            specs=tuple(
                FaultSpec.from_dict(entry) for entry in data["faults"]
            ),
            seed=data.get("seed"),
        )

    @classmethod
    def load(cls, source: Union[str, Path]) -> "FaultPlan":
        """Parse a plan from a JSON file path or an inline JSON string."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultError(f"invalid fault-plan JSON: {error}") from error
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the plan as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path
