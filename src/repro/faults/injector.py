"""FaultInjector: executes a fault plan inside the slave loop.

The injector is the *only* piece of the fault subsystem that lives on
the slave side of the protocol.  It is constructed from the picklable
per-slave sub-plan (:meth:`repro.faults.plan.FaultPlan.for_slave`) and
consulted at three points in every measurement round:

1. :meth:`on_chunk_start` — before the chunk runs (``kill``/``pre_run``
   and ``hang`` fire here);
2. :meth:`filter_report` — between building and sending the report
   (``kill``/``pre_report``, ``drop_report`` and ``corrupt_payload``
   fire here; the returned report may be ``None`` or mangled);
3. :meth:`after_send` — immediately after a successful send
   (``kill``/``post_report`` fires here).

Two execution modes share the schedule logic:

- **process mode** (default): ``kill`` calls ``os._exit`` so the OS
  reclaims the process without running any cleanup — the closest
  in-repo stand-in for a SIGKILL'd machine — and ``hang`` sleeps with
  the pipe held open, exercising the master's recv deadline.
- **serial mode** (``raise_instead=True``): ``kill``/``drop`` raise
  :class:`InjectedFailure` for the in-process master loop to catch, so
  the serial backend replays the identical failure schedule without
  destroying the test process.  ``hang`` is ignored in serial mode
  (there is no pipe to time out on).
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Optional

from repro.faults.plan import FaultSpec

#: Exit status used by injected kills, distinct from crash exit codes so
#: post-mortem triage can tell a scheduled chaos kill from a real bug.
KILL_EXIT_STATUS = 86


class InjectedFailure(RuntimeError):
    """Raised in serial mode where process mode would die or go silent.

    Carries the triggering :class:`FaultSpec` so the master can record a
    precise cause code.
    """

    def __init__(self, spec: FaultSpec):
        super().__init__(
            f"injected {spec.kind} (slave {spec.slave_id} "
            f"gen {spec.generation} round {spec.round})"
        )
        self.spec = spec


def corrupt_payload(payload: dict) -> dict:
    """Deterministically mangle one histogram payload.

    The mangled form violates the count invariant (``count`` no longer
    equals bins + underflow + overflow) *and* truncates the counts list,
    so both of the master's pre-merge validators can catch it — matching
    the two real-world corruption shapes: bit flips in scalars and
    short reads/truncated frames.
    """
    mangled = dict(payload)
    mangled["count"] = payload["count"] + 1_000_003
    if payload["counts"]:
        mangled["counts"] = list(payload["counts"])[:-1]
    return mangled


class FaultInjector:
    """Executes one slave incarnation's scheduled faults.

    Parameters
    ----------
    specs:
        The picklable sub-plan for this ``(slave_id, generation)``.
    raise_instead:
        Serial mode — raise :class:`InjectedFailure` instead of exiting
        or sleeping (see module docstring).
    sleeper / exiter:
        Injection points for tests: default to ``time.sleep`` and
        ``os._exit``.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        raise_instead: bool = False,
        sleeper=time.sleep,
        exiter=os._exit,
    ):
        self._specs = tuple(specs)
        self._raise = raise_instead
        self._sleep = sleeper
        self._exit = exiter
        #: Serial mode only: a post_report kill observed this round, to
        #: be raised at the *next* round's start (see after_send).
        self._dead_next: Optional[FaultSpec] = None

    def __bool__(self) -> bool:
        return bool(self._specs)

    def _find(self, round_number: int, kind: str,
              phase: Optional[str] = None) -> Optional[FaultSpec]:
        for spec in self._specs:
            if spec.round != round_number or spec.kind != kind:
                continue
            if phase is not None and spec.phase != phase:
                continue
            return spec
        return None

    def _die(self, spec: FaultSpec) -> None:
        if self._raise:
            raise InjectedFailure(spec)
        self._exit(KILL_EXIT_STATUS)

    # -- hooks ---------------------------------------------------------------

    def on_chunk_start(self, round_number: int) -> None:
        """Pre-run hook: ``kill``/``pre_run`` and ``hang`` fire here."""
        if self._dead_next is not None:
            spec, self._dead_next = self._dead_next, None
            raise InjectedFailure(spec)
        spec = self._find(round_number, "kill", phase="pre_run")
        if spec is not None:
            self._die(spec)
        spec = self._find(round_number, "hang")
        if spec is not None and not self._raise:
            # Stay silent with the pipe open: the master's recv deadline
            # must fire.  The sleep bounds the orphan's lifetime if the
            # master dies too.
            self._sleep(spec.delay)

    def filter_report(self, round_number: int, report):
        """Pre-send hook: may kill, drop (return None), or corrupt.

        ``report`` is a :class:`~repro.parallel.protocol.SlaveReport`;
        corruption mangles every metric payload in place of the clean
        ones so the master's validator attributes the failure correctly.
        """
        spec = self._find(round_number, "kill", phase="pre_report")
        if spec is not None:
            self._die(spec)
        spec = self._find(round_number, "drop_report")
        if spec is not None:
            if self._raise:
                raise InjectedFailure(spec)
            return None
        spec = self._find(round_number, "corrupt_payload")
        if spec is not None:
            report.histograms = {
                name: corrupt_payload(payload)
                for name, payload in report.histograms.items()
            }
        return report

    def after_send(self, round_number: int) -> None:
        """Post-send hook: ``kill``/``post_report`` fires here.

        In serial mode the kill is *deferred* to the next round's
        :meth:`on_chunk_start` rather than raised here: the report was
        already merged (exactly as in process mode, where the master
        receives it before the exit), and the process backend only
        detects a post-report death at the next round's send — deferring
        keeps the two backends' detection rounds, and hence their owed
        bookkeeping, identical.
        """
        spec = self._find(round_number, "kill", phase="post_report")
        if spec is not None:
            if self._raise:
                self._dead_next = spec
            else:
                self._exit(KILL_EXIT_STATUS)
