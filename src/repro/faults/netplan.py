"""NetFaultPlan: a seeded, deterministic schedule of *network* faults.

The sibling of :class:`~repro.faults.plan.FaultPlan`: where a FaultPlan
makes workers misbehave (crash, hang, lie), a NetFaultPlan makes the
*wire between* master and workers misbehave — frames delayed, dropped,
duplicated, corrupted, one direction silently blackholed, or the
worker's host connection torn down mid-run.  The two compose: a run may
carry both a FaultPlan (applied inside the workers) and a NetFaultPlan
(applied at the frame boundary by
:class:`~repro.parallel.chaos.ChaosTransport`), and each stays
deterministic independently.

Addressing follows PR 4's scheme: a spec targets one
``(worker_id, generation, round)`` — but here ``round`` is the 1-based
ordinal of *data frames* on that worker's connection in the spec's
``direction`` (``"out"`` = master->worker sends, ``"in"`` =
worker->master deliveries).  On the classic master one round sends one
command out and receives one report in, so frame ordinals coincide with
master rounds; on the pool, ordinal n addresses the n-th
configure/result.  Heartbeat frames are unsequenced and never count, so
a plan addresses the same frame whether or not liveness monitoring is
on — which is what makes the chaos matrix replayable across the remote
loopback backend and the in-memory fake transport.

Fault kinds
-----------

``delay``
    The frame is held ``delay`` seconds before delivery/send.
    Harmless to digests; exercises deadline slack.
``drop``
    The frame vanishes (the sequence number is still consumed).  The
    receiving side sees silence — the master's round deadline or
    heartbeat monitoring must catch it.
``duplicate``
    The *same stamped frame* is delivered twice; receiver-side
    sequence dedup must discard the copy (a double-merged report or a
    double-run chunk is the bug this kind exists to catch).
``corrupt``
    The frame arrives undecodable: the master's reader raises
    :class:`~repro.parallel.transport.FrameError` and the worker dies
    with cause ``"corrupt frame"``.  Inbound only (``direction="in"``)
    — the master-side decode is the boundary under test.
``partition``
    From this frame on, the spec's direction is silently blackholed
    *below* the heartbeat layer (no FIN, acks/pings eaten too): the
    half-open link only liveness monitoring can detect.
``agent_crash``
    The worker's host connection is torn down at the send boundary
    (outbound only), as if the agent process died: the master sees a
    send failure / EOF and the respawn path takes over.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.engine.simulation import seeded_rng
from repro.faults.plan import FaultError

#: Every network fault kind a plan may schedule.
NET_FAULT_KINDS = (
    "delay", "drop", "duplicate", "corrupt", "partition", "agent_crash",
)

#: Frame directions a spec may address.
DIRECTIONS = ("in", "out")

#: Kinds pinned to one direction (the only boundary they make sense at).
_FIXED_DIRECTION = {"corrupt": "in", "agent_crash": "out"}


@dataclass(frozen=True)
class NetFaultSpec:
    """One scheduled network fault.

    ``round`` is the 1-based data-frame ordinal on the targeted worker
    incarnation's connection, counted per ``direction``; ``generation``
    selects the incarnation exactly as in
    :class:`~repro.faults.plan.FaultSpec` — a spec for generation g
    never fires on the respawned generation g+1.
    """

    kind: str
    worker_id: int
    round: int
    generation: int = 0
    direction: str = "in"
    delay: float = 0.5  # delay kind only: seconds to hold the frame

    def __post_init__(self) -> None:
        if self.kind not in NET_FAULT_KINDS:
            raise FaultError(
                f"unknown net fault kind {self.kind!r}; "
                f"expected {NET_FAULT_KINDS}"
            )
        if self.worker_id < 0:
            raise FaultError(
                f"worker_id must be >= 0, got {self.worker_id}"
            )
        if self.round < 1:
            raise FaultError(f"round is 1-based, got {self.round}")
        if self.generation < 0:
            raise FaultError(
                f"generation must be >= 0, got {self.generation}"
            )
        if self.direction not in DIRECTIONS:
            raise FaultError(
                f"direction must be one of {DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        fixed = _FIXED_DIRECTION.get(self.kind)
        if fixed is not None and self.direction != fixed:
            raise FaultError(
                f"{self.kind!r} faults are {fixed!r}-direction only, "
                f"got {self.direction!r}"
            )
        if self.delay <= 0:
            raise FaultError(f"delay must be > 0, got {self.delay}")

    def to_dict(self) -> dict:
        """JSON-safe plain form."""
        return {
            "kind": self.kind,
            "worker_id": self.worker_id,
            "round": self.round,
            "generation": self.generation,
            "direction": self.direction,
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetFaultSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {
            "kind", "worker_id", "round", "generation", "direction", "delay",
        }
        unknown = set(data) - known
        if unknown:
            raise FaultError(
                f"unknown NetFaultSpec key(s): {sorted(unknown)}"
            )
        if "kind" not in data:
            raise FaultError("NetFaultSpec requires a 'kind'")
        kind = data["kind"]
        return cls(
            kind=kind,
            worker_id=int(data.get("worker_id", 0)),
            round=int(data.get("round", 1)),
            generation=int(data.get("generation", 0)),
            direction=data.get(
                "direction", _FIXED_DIRECTION.get(kind, "in")
            ),
            delay=float(data.get("delay", 0.5)),
        )


@dataclass(frozen=True)
class NetFaultPlan:
    """An immutable, addressable collection of :class:`NetFaultSpec`.

    At most one spec per ``(worker_id, generation, round, direction)``
    frame slot: two faults on one frame would have an application order
    the plan cannot express, so the ambiguity is rejected up front.
    """

    specs: Tuple[NetFaultSpec, ...] = field(default_factory=tuple)
    #: The seed used by :meth:`random` (provenance; serialized along).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        seen = set()
        for spec in self.specs:
            slot = (
                spec.worker_id, spec.generation, spec.round, spec.direction,
            )
            if slot in seen:
                raise FaultError(
                    f"two net faults address worker {spec.worker_id} gen "
                    f"{spec.generation} {spec.direction!r}-frame "
                    f"{spec.round}; one frame takes at most one fault"
                )
            seen.add(slot)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def for_worker(
        self, worker_id: int, generation: int = 0
    ) -> Tuple[NetFaultSpec, ...]:
        """The sub-plan applying to one worker incarnation."""
        return tuple(
            spec
            for spec in self.specs
            if spec.worker_id == worker_id
            and spec.generation == generation
        )

    def at_round(self, round_number: int) -> Tuple[NetFaultSpec, ...]:
        """All specs addressing one frame ordinal (trace emission)."""
        return tuple(
            spec for spec in self.specs if spec.round == round_number
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def single(
        cls, kind: str, worker_id: int, round: int, **kwargs
    ) -> "NetFaultPlan":
        """A one-spec plan (the common test/smoke configuration)."""
        return cls(
            specs=(
                NetFaultSpec(
                    kind=kind, worker_id=worker_id, round=round, **kwargs
                ),
            )
        )

    @classmethod
    def random(
        cls,
        seed: int,
        n_workers: int,
        max_round: int,
        n_faults: int = 1,
        kinds: Iterable[str] = ("delay", "drop", "duplicate"),
    ) -> "NetFaultPlan":
        """A seeded random plan: same arguments, same faults, every time.

        ``corrupt``/``partition``/``agent_crash`` are excluded from the
        default kinds because each costs a worker incarnation (opt in
        explicitly, with a respawn policy to absorb the deaths).
        """
        kinds = tuple(kinds)
        if not kinds:
            raise FaultError("need at least one fault kind")
        for kind in kinds:
            if kind not in NET_FAULT_KINDS:
                raise FaultError(f"unknown net fault kind {kind!r}")
        if n_workers < 1 or max_round < 1:
            raise FaultError("need n_workers >= 1 and max_round >= 1")
        rng = seeded_rng(seed)
        specs: List[NetFaultSpec] = []
        taken = set()
        for index in range(n_faults):
            # Rejection-sample around occupied frame slots.
            for _ in range(64):
                kind = kinds[int(rng.integers(len(kinds)))]
                worker = int(rng.integers(n_workers))
                round_number = int(rng.integers(1, max_round + 1))
                direction = _FIXED_DIRECTION.get(
                    kind, DIRECTIONS[int(rng.integers(len(DIRECTIONS)))]
                )
                slot = (worker, 0, round_number, direction)
                if slot in taken:
                    continue
                taken.add(slot)
                specs.append(
                    NetFaultSpec(
                        kind=kind,
                        worker_id=worker,
                        round=round_number,
                        direction=direction,
                    )
                )
                break
            else:
                # Yielding fewer specs than asked would let a fuzz run
                # believe it injected faults it never placed.
                raise FaultError(
                    f"could not place net fault {index + 1} of "
                    f"{n_faults} after 64 attempts; the "
                    f"n_workers={n_workers} x max_round={max_round} "
                    "frame-slot space is too small for the plan"
                )
        return cls(specs=tuple(specs), seed=seed)

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe plain form (``--net-chaos`` files)."""
        payload: Dict[str, object] = {
            "net_faults": [spec.to_dict() for spec in self.specs]
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "NetFaultPlan":
        """Inverse of :meth:`to_dict`."""
        if not isinstance(data, dict) or "net_faults" not in data:
            raise FaultError(
                "net fault plan must be an object with a 'net_faults' list"
            )
        return cls(
            specs=tuple(
                NetFaultSpec.from_dict(entry)
                for entry in data["net_faults"]
            ),
            seed=data.get("seed"),
        )

    @classmethod
    def load(cls, source: Union[str, Path]) -> "NetFaultPlan":
        """Parse a plan from a JSON file path or an inline JSON string."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultError(
                f"invalid net-fault-plan JSON: {error}"
            ) from error
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the plan as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path
