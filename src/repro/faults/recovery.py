"""Recovery policy: respawn budgets, backoff, supervision, seed lineage.

Three independent concerns live here:

- :class:`RespawnPolicy` — *whether and when* to replace a dead slave:
  per-slave and run-total restart budgets, exponential backoff with a
  deterministic seeded jitter (thundering-herd protection that still
  replays bit-identically in chaos tests).
- :class:`SeedLineage` — *which stream* the replacement draws:
  generation-aware seed derivation with an explicit uniqueness
  registry.  Handing a replacement its predecessor's seed would replay
  the predecessor's exact draw sequence and double-count the partial
  observations already merged from it — the classic silent-bias bug
  this class exists to make structurally impossible.
- :class:`SupervisionPolicy` — *whether the run itself survives* a
  shrinking fleet: the minimum fleet size below which continuing is
  pointless, the strength below which a finished result is flagged
  ``degraded``, and an overall wall-clock deadline.  Violations raise
  :class:`SupervisionError` with a machine-readable cause (never a
  silent hang) unless the policy says to continue degraded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.simulation import seeded_rng

#: Golden-ratio multiplier shared with the original per-slave seed rule.
_SEED_STRIDE = 0x9E3779B9
#: A second odd constant decorrelating the generation axis from the
#: slave-id axis, so (slave, gen) pairs spread over the seed space.
_GENERATION_STRIDE = 0x85EBCA6B
_SEED_MASK = 0x7FFFFFFF


def derive_seed(master_seed: int, slave_id: int, generation: int = 0) -> int:
    """Deterministic seed for one slave incarnation.

    Generation 0 reproduces the historical ``slave_seed`` value exactly
    (so healthy runs are bit-compatible with checkpoints and results
    recorded before fault tolerance existed); respawns mix in the
    generation along an independent stride.
    """
    return (
        master_seed
        + _SEED_STRIDE * (slave_id + 1)
        + _GENERATION_STRIDE * generation
    ) & _SEED_MASK


class SeedLineage:
    """Registry of every seed issued during one run.

    The master seed is registered at construction; each
    :meth:`issue` derives a generation-aware slave seed and asserts it
    collides with nothing issued before.  A collision (astronomically
    unlikely, but the whole point of an assertion is the "impossible"
    case) raises rather than silently correlating two streams.
    """

    def __init__(self, master_seed: int):
        self.master_seed = master_seed
        #: seed -> (slave_id, generation); the master itself is (-1, 0).
        self._issued: Dict[int, Tuple[int, int]] = {
            master_seed & _SEED_MASK: (-1, 0)
        }

    def issue(self, slave_id: int, generation: int = 0) -> int:
        """Derive, register, and return a unique seed."""
        seed = derive_seed(self.master_seed, slave_id, generation)
        holder = self._issued.get(seed)
        if holder is not None and holder != (slave_id, generation):
            raise RuntimeError(
                f"seed lineage collision: seed {seed} for slave "
                f"{slave_id} gen {generation} already issued to slave "
                f"{holder[0]} gen {holder[1]}"
            )
        self._issued[seed] = (slave_id, generation)
        return seed

    def issued(self) -> List[Tuple[int, int, int]]:
        """``[(seed, slave_id, generation), ...]`` in seed order."""
        return sorted(
            (seed, slave, gen)
            for seed, (slave, gen) in self._issued.items()
        )

    def __len__(self) -> int:
        return len(self._issued)

    def __contains__(self, seed: int) -> bool:
        return seed in self._issued


def backoff_delay(
    generation: int,
    base: float,
    cap: float,
    jitter: float,
    jitter_seed: Optional[int] = None,
) -> float:
    """Exponential backoff with deterministic jitter.

    ``generation`` is the incarnation being spawned (1 = first respawn).
    The jitter fraction is drawn from a generator seeded with
    ``jitter_seed`` so two runs of the same chaos plan wait identical
    delays — randomness without nondeterminism.
    """
    if generation < 1:
        return 0.0
    delay = min(cap, base * (2.0 ** (generation - 1)))
    if jitter > 0.0 and jitter_seed is not None:
        fraction = float(seeded_rng(jitter_seed).random())
        delay *= 1.0 + jitter * fraction
    return min(cap, delay)


@dataclass(frozen=True)
class RespawnPolicy:
    """When (and how eagerly) dead slaves are replaced.

    ``max_restarts_per_slave`` bounds each slave id's respawn count;
    ``max_total_restarts`` (None = unbounded) caps the whole run so a
    systematically crashing factory cannot respawn forever.  Delays
    follow ``backoff_base * 2**(generation-1)`` capped at
    ``backoff_cap``, stretched by up to ``jitter`` (fractional) of
    seeded noise.
    """

    max_restarts_per_slave: int = 2
    max_total_restarts: Optional[int] = None
    backoff_base: float = 0.25
    backoff_cap: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_restarts_per_slave < 0:
            raise ValueError(
                f"max_restarts_per_slave must be >= 0, got "
                f"{self.max_restarts_per_slave}"
            )
        if (
            self.max_total_restarts is not None
            and self.max_total_restarts < 0
        ):
            raise ValueError(
                f"max_total_restarts must be >= 0, got "
                f"{self.max_total_restarts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def allows(self, restarts_for_slave: int, total_restarts: int) -> bool:
        """Whether one more respawn fits both budgets."""
        if restarts_for_slave >= self.max_restarts_per_slave:
            return False
        if (
            self.max_total_restarts is not None
            and total_restarts >= self.max_total_restarts
        ):
            return False
        return True

    def delay(self, generation: int, jitter_seed: Optional[int] = None) -> float:
        """Backoff before spawning ``generation`` (1 = first respawn)."""
        return backoff_delay(
            generation,
            self.backoff_base,
            self.backoff_cap,
            self.jitter,
            jitter_seed,
        )


class SupervisionError(RuntimeError):
    """A :class:`SupervisionPolicy` aborted the run.

    ``cause`` is the machine-readable cause code (one of the
    ``CAUSE_*`` constants in :mod:`repro.parallel.protocol`); the
    message carries the free-form detail.
    """

    def __init__(self, message: str, cause: str):
        super().__init__(message)
        self.cause = cause


@dataclass(frozen=True)
class SupervisionPolicy:
    """Run-level survival and degradation rules for a shrinking fleet.

    Where :class:`RespawnPolicy` decides the fate of one dead worker,
    this decides the fate of the *run*:

    - ``min_workers`` — the fleet floor.  When the workers still able
      to contribute (live, plus scheduled respawns) fall below it, the
      run aborts with :class:`SupervisionError` (``on_exhausted=
      "abort"``, the default) or presses on with whatever survives
      (``"continue"``).
    - ``degrade_below`` — the full-strength threshold: a finished run
      whose surviving fleet is at least this large is *not* flagged
      ``degraded`` even if it lost (unreplaced) workers along the way.
      ``None`` keeps the strict default — any unreplaced death
      degrades the result.
    - ``deadline`` — overall wall-clock budget in seconds for the run.
      Past it, ``"abort"`` raises while ``"continue"`` stops cleanly
      and returns the merged-so-far result flagged ``degraded`` (with
      honest, wider CIs), never a silent hang.
    """

    min_workers: int = 1
    degrade_below: Optional[int] = None
    deadline: Optional[float] = None
    on_exhausted: str = "abort"

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(
                f"min_workers must be >= 1, got {self.min_workers}"
            )
        if self.degrade_below is not None and self.degrade_below < 1:
            raise ValueError(
                f"degrade_below must be >= 1 or None, "
                f"got {self.degrade_below}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be > 0 or None, got {self.deadline}"
            )
        if self.on_exhausted not in ("abort", "continue"):
            raise ValueError(
                f"on_exhausted must be 'abort' or 'continue', "
                f"got {self.on_exhausted!r}"
            )

    def fleet_ok(self, effective_workers: int) -> bool:
        """Whether the run may continue with this many contributors."""
        return effective_workers >= self.min_workers

    def is_degraded(self, survivors: int, unreplaced_deaths: int) -> bool:
        """Whether a *finished* run at this strength is degraded."""
        if self.degrade_below is not None:
            return survivors < self.degrade_below
        return unreplaced_deaths > 0
