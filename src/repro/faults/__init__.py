"""repro.faults — fault injection, recovery policy, and checkpointing.

BigHouse's headline scaling result rests on the master/slave protocol
surviving long multi-machine runs; this package makes mid-run failure a
first-class, *testable* input instead of an operational surprise:

- :mod:`~repro.faults.plan` — :class:`FaultPlan`, a seeded,
  deterministic schedule of injected failures (kill a slave at round N,
  hang its pipe, drop or corrupt a report) so chaos runs replay
  bit-identically under the determinism sanitizer;
- :mod:`~repro.faults.injector` — the slave-side hook object that
  executes a plan inside the slave loop (process backend: real
  ``os._exit`` / sleeps; serial backend: raised
  :class:`InjectedFailure` exceptions the master handles identically);
- :mod:`~repro.faults.netplan` — :class:`NetFaultPlan`, the network
  sibling of FaultPlan: seeded frame-boundary faults (delay, drop,
  duplicate, corrupt, half-open partition, agent crash) applied by
  :class:`~repro.parallel.chaos.ChaosTransport`;
- :mod:`~repro.faults.recovery` — :class:`RespawnPolicy` (exponential
  backoff + deterministic jitter, per-slave and total restart budgets),
  :class:`SupervisionPolicy` (fleet floor, degradation threshold, and
  overall deadline for graceful degradation), and
  :class:`SeedLineage`, the generation-aware seed registry that
  guarantees a replacement slave draws a fresh unique stream;
- :mod:`~repro.faults.checkpoint` — atomic JSON-lines experiment
  snapshots (merged histogram state, per-slave work logs, seed lineage,
  round counter) and their reader, powering ``repro run --resume``.

See docs/robustness.md for the fault model and recovery semantics.
"""

from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointState,
    read_checkpoint,
    write_checkpoint,
)
from repro.faults.injector import FaultInjector, InjectedFailure
from repro.faults.netplan import NET_FAULT_KINDS, NetFaultPlan, NetFaultSpec
from repro.faults.plan import FAULT_KINDS, FaultError, FaultPlan, FaultSpec
from repro.faults.recovery import (
    RespawnPolicy,
    SeedLineage,
    SupervisionError,
    SupervisionPolicy,
    backoff_delay,
    derive_seed,
)

__all__ = [
    "FAULT_KINDS",
    "NET_FAULT_KINDS",
    "CheckpointError",
    "CheckpointState",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFailure",
    "NetFaultPlan",
    "NetFaultSpec",
    "RespawnPolicy",
    "SeedLineage",
    "SupervisionError",
    "SupervisionPolicy",
    "backoff_delay",
    "derive_seed",
    "read_checkpoint",
    "write_checkpoint",
]
