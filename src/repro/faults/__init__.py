"""repro.faults — fault injection, recovery policy, and checkpointing.

BigHouse's headline scaling result rests on the master/slave protocol
surviving long multi-machine runs; this package makes mid-run failure a
first-class, *testable* input instead of an operational surprise:

- :mod:`~repro.faults.plan` — :class:`FaultPlan`, a seeded,
  deterministic schedule of injected failures (kill a slave at round N,
  hang its pipe, drop or corrupt a report) so chaos runs replay
  bit-identically under the determinism sanitizer;
- :mod:`~repro.faults.injector` — the slave-side hook object that
  executes a plan inside the slave loop (process backend: real
  ``os._exit`` / sleeps; serial backend: raised
  :class:`InjectedFailure` exceptions the master handles identically);
- :mod:`~repro.faults.recovery` — :class:`RespawnPolicy` (exponential
  backoff + deterministic jitter, per-slave and total restart budgets)
  and :class:`SeedLineage`, the generation-aware seed registry that
  guarantees a replacement slave draws a fresh unique stream;
- :mod:`~repro.faults.checkpoint` — atomic JSON-lines experiment
  snapshots (merged histogram state, per-slave work logs, seed lineage,
  round counter) and their reader, powering ``repro run --resume``.

See docs/robustness.md for the fault model and recovery semantics.
"""

from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointState,
    read_checkpoint,
    write_checkpoint,
)
from repro.faults.injector import FaultInjector, InjectedFailure
from repro.faults.plan import FAULT_KINDS, FaultError, FaultPlan, FaultSpec
from repro.faults.recovery import (
    RespawnPolicy,
    SeedLineage,
    backoff_delay,
    derive_seed,
)

__all__ = [
    "FAULT_KINDS",
    "CheckpointError",
    "CheckpointState",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFailure",
    "RespawnPolicy",
    "SeedLineage",
    "backoff_delay",
    "derive_seed",
    "read_checkpoint",
    "write_checkpoint",
]
