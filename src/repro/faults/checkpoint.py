"""Atomic experiment checkpoints: write, read, validate.

A checkpoint captures everything the master needs to restore a parallel
run *exactly*: the calibrated bin schemes and convergence targets, the
merged histogram state, the round counter, and — the key trick — each
slave's **work log** (its seed, generation, and the exact sequence of
chunk quotas it has completed).  Slave state itself is never
serialized: a slave at round k is a pure function of ``(seed, bin
scheme, chunk history)``, so resume rebuilds each slave and *replays*
its logged chunks, landing bit-for-bit on the interrupted state.  An
interrupted-and-resumed run therefore produces byte-identical merged
histograms to an uninterrupted one.

Format: JSON lines (one record object per line, ``record`` key naming
the type) so the file is greppable and the reader is dependency-free,
with the one large array — merged bin counts — packed as little-endian
int64 binary, base64-encoded, rather than a million-token JSON list.
The final ``end`` record carries the expected record count, so a
truncated file (death mid-write on a non-atomic filesystem) is detected
rather than half-loaded; writes go through a temp file + ``os.replace``
so a crash mid-checkpoint leaves the previous checkpoint intact.
"""

from __future__ import annotations

import base64
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

#: Bump when the record layout changes incompatibly.
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised for unreadable, truncated, or incompatible checkpoints."""


def _pack_counts(counts: List[int]) -> str:
    """Bin counts as base64 little-endian int64 (the binary payload)."""
    return base64.b64encode(
        np.asarray(counts, dtype="<i8").tobytes()
    ).decode("ascii")


def _unpack_counts(packed: str) -> List[int]:
    """Inverse of :func:`_pack_counts`."""
    raw = base64.b64decode(packed.encode("ascii"))
    return [int(v) for v in np.frombuffer(raw, dtype="<i8")]


def _encode_float(value: float):
    """inf/-inf are not JSON; histograms use them as extrema sentinels."""
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def _encode_merged(payload: dict) -> dict:
    """Histogram payload with binary counts and JSON-safe extrema."""
    encoded = dict(payload)
    encoded["counts"] = _pack_counts(payload["counts"])
    encoded["min_seen"] = _encode_float(payload["min_seen"])
    encoded["max_seen"] = _encode_float(payload["max_seen"])
    return encoded


def _decode_merged(encoded: dict) -> dict:
    payload = dict(encoded)
    payload["counts"] = _unpack_counts(encoded["counts"])
    payload["min_seen"] = _decode_float(encoded["min_seen"])
    payload["max_seen"] = _decode_float(encoded["max_seen"])
    payload["scheme"] = tuple(encoded["scheme"])
    return payload


@dataclass
class SlaveCheckpoint:
    """One slave's restorable state: identity plus its work log."""

    slave_id: int
    seed: int
    generation: int
    #: Chunk quotas completed *and merged*, oldest first; resume replays
    #: exactly this sequence.
    chunks: List[int] = field(default_factory=list)
    #: Quota commanded but never reported (owed to a replacement).
    owed: int = 0
    #: Validation fingerprints: where replay must land.
    events_processed: int = 0
    total_accepted: int = 0
    restarts: int = 0
    #: Accounting carried over from dead predecessor incarnations
    #: (their merged contributions remain valid observations).
    prior_events: int = 0
    prior_accepted: int = 0

    def to_dict(self) -> dict:
        return {
            "record": "slave",
            "slave_id": self.slave_id,
            "seed": self.seed,
            "generation": self.generation,
            "chunks": list(self.chunks),
            "owed": self.owed,
            "events_processed": self.events_processed,
            "total_accepted": self.total_accepted,
            "restarts": self.restarts,
            "prior_events": self.prior_events,
            "prior_accepted": self.prior_accepted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SlaveCheckpoint":
        return cls(
            slave_id=data["slave_id"],
            seed=data["seed"],
            generation=data["generation"],
            chunks=list(data["chunks"]),
            owed=data.get("owed", 0),
            events_processed=data.get("events_processed", 0),
            total_accepted=data.get("total_accepted", 0),
            restarts=data.get("restarts", 0),
            prior_events=data.get("prior_events", 0),
            prior_accepted=data.get("prior_accepted", 0),
        )


@dataclass
class CheckpointState:
    """The full restorable master state (see module docstring)."""

    master_seed: int
    n_slaves: int
    chunk_size: int
    adaptive_chunking: bool
    max_chunk_size: int
    delta_reports: bool
    round: int
    master_events: int = 0
    #: metric name -> scheme payload tuple (low, high, bins).
    schemes: Dict[str, tuple] = field(default_factory=dict)
    #: metric name -> MetricTargets constructor kwargs.
    targets: Dict[str, dict] = field(default_factory=dict)
    #: metric name -> merged Histogram.to_payload() dict.
    merged: Dict[str, dict] = field(default_factory=dict)
    slaves: List[SlaveCheckpoint] = field(default_factory=list)
    #: Permanently dead slave ids -> cause code.
    dead: Dict[int, str] = field(default_factory=dict)
    #: Every seed issued so far: [(seed, slave_id, generation), ...].
    lineage: List[Tuple[int, int, int]] = field(default_factory=list)
    total_restarts: int = 0
    version: int = CHECKPOINT_VERSION


def write_checkpoint(path: Union[str, Path], state: CheckpointState) -> Path:
    """Atomically write ``state`` to ``path`` (temp file + rename)."""
    path = Path(path)
    records: List[dict] = [
        {
            "record": "meta",
            "version": state.version,
            "master_seed": state.master_seed,
            "n_slaves": state.n_slaves,
            "chunk_size": state.chunk_size,
            "adaptive_chunking": state.adaptive_chunking,
            "max_chunk_size": state.max_chunk_size,
            "delta_reports": state.delta_reports,
            "round": state.round,
            "master_events": state.master_events,
            "total_restarts": state.total_restarts,
        }
    ]
    for name in sorted(state.schemes):
        records.append(
            {
                "record": "metric",
                "name": name,
                "scheme": list(state.schemes[name]),
                "targets": state.targets.get(name, {}),
                "merged": _encode_merged(state.merged[name]),
            }
        )
    for slave in sorted(state.slaves, key=lambda s: s.slave_id):
        records.append(slave.to_dict())
    for slave_id in sorted(state.dead):
        records.append(
            {
                "record": "dead",
                "slave_id": slave_id,
                "cause": state.dead[slave_id],
            }
        )
    records.append(
        {
            "record": "lineage",
            "seeds": [list(entry) for entry in state.lineage],
        }
    )
    records.append({"record": "end", "records": len(records) + 1})
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint(path: Union[str, Path]) -> CheckpointState:
    """Read and structurally validate a checkpoint file."""
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    records: List[dict] = []
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"{path}:{line_number}: invalid JSON: {error}"
            ) from error
        if not isinstance(record, dict) or "record" not in record:
            raise CheckpointError(
                f"{path}:{line_number}: not a checkpoint record"
            )
        records.append(record)
    if not records or records[0].get("record") != "meta":
        raise CheckpointError(f"{path}: missing meta record")
    if records[-1].get("record") != "end":
        raise CheckpointError(
            f"{path}: missing end record (truncated checkpoint?)"
        )
    if records[-1].get("records") != len(records):
        raise CheckpointError(
            f"{path}: end record expects {records[-1].get('records')} "
            f"records, found {len(records)} (truncated checkpoint?)"
        )
    meta = records[0]
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {meta.get('version')} is not "
            f"supported (expected {CHECKPOINT_VERSION})"
        )
    state = CheckpointState(
        master_seed=meta["master_seed"],
        n_slaves=meta["n_slaves"],
        chunk_size=meta["chunk_size"],
        adaptive_chunking=meta["adaptive_chunking"],
        max_chunk_size=meta["max_chunk_size"],
        delta_reports=meta["delta_reports"],
        round=meta["round"],
        master_events=meta.get("master_events", 0),
        total_restarts=meta.get("total_restarts", 0),
        version=meta["version"],
    )
    for record in records[1:-1]:
        kind = record["record"]
        if kind == "metric":
            name = record["name"]
            state.schemes[name] = tuple(record["scheme"])
            state.targets[name] = dict(record["targets"])
            state.merged[name] = _decode_merged(record["merged"])
        elif kind == "slave":
            state.slaves.append(SlaveCheckpoint.from_dict(record))
        elif kind == "dead":
            state.dead[record["slave_id"]] = record["cause"]
        elif kind == "lineage":
            state.lineage = [tuple(entry) for entry in record["seeds"]]
        else:
            raise CheckpointError(
                f"{path}: unknown record type {kind!r}"
            )
    if not state.merged:
        raise CheckpointError(f"{path}: checkpoint has no metric records")
    return state
