"""Closed-form results for the classic queueing models.

Notation: arrival rate ``lam``, per-server service rate ``mu``,
``k`` servers, utilization ``rho = lam / (k mu)``.  All formulas assume
stability (``rho < 1``) and raise :class:`TheoryError` otherwise.
"""

from __future__ import annotations

import math

from repro.distributions.base import Distribution


class TheoryError(ValueError):
    """Raised for unstable or invalid queueing parameters."""


def _check_rates(lam: float, mu: float, k: int = 1) -> float:
    if lam <= 0 or mu <= 0:
        raise TheoryError(f"rates must be > 0: lam={lam}, mu={mu}")
    if k < 1:
        raise TheoryError(f"need k >= 1 servers, got {k}")
    rho = lam / (k * mu)
    if rho >= 1.0:
        raise TheoryError(f"unstable queue: rho = {rho:.3f} >= 1")
    return rho


def utilization(lam: float, mu: float, k: int = 1) -> float:
    """Offered load ``rho = lam / (k mu)`` — *without* the stability gate.

    The closed-form results above refuse unstable parameters; static
    analysis (the sweep/config model lint) instead needs the raw value
    so it can *report* ``rho >= 1`` with the number in hand.  Rates and
    server counts are still validated.
    """
    if lam <= 0 or mu <= 0:
        raise TheoryError(f"rates must be > 0: lam={lam}, mu={mu}")
    if k < 1:
        raise TheoryError(f"need k >= 1 servers, got {k}")
    return lam / (k * mu)


# -- M/M/1 -----------------------------------------------------------------


def mm1_mean_response(lam: float, mu: float) -> float:
    """E[T] = 1 / (mu - lam)."""
    _check_rates(lam, mu)
    return 1.0 / (mu - lam)


def mm1_mean_waiting(lam: float, mu: float) -> float:
    """E[W] = rho / (mu - lam)."""
    rho = _check_rates(lam, mu)
    return rho / (mu - lam)


def mm1_quantile_response(lam: float, mu: float, q: float) -> float:
    """Response time is exponential: x_q = E[T] * -ln(1 - q)."""
    if not 0.0 < q < 1.0:
        raise TheoryError(f"quantile must be in (0, 1), got {q}")
    return mm1_mean_response(lam, mu) * -math.log(1.0 - q)


# -- M/M/k -----------------------------------------------------------------


def erlang_c(lam: float, mu: float, k: int) -> float:
    """Probability an arrival must queue (Erlang-C formula)."""
    rho = _check_rates(lam, mu, k)
    offered = lam / mu  # in Erlangs
    # Sum_{n<k} offered^n / n!  computed stably in log space is overkill
    # for the k's used here; direct evaluation with running terms.
    term = 1.0
    total = 1.0
    for n in range(1, k):
        term *= offered / n
        total += term
    term *= offered / k
    tail = term / (1.0 - rho)
    return tail / (total + tail)


def mmk_mean_waiting(lam: float, mu: float, k: int) -> float:
    """E[W] = C(k, offered) / (k mu - lam)."""
    _check_rates(lam, mu, k)
    return erlang_c(lam, mu, k) / (k * mu - lam)


def mmk_mean_response(lam: float, mu: float, k: int) -> float:
    """E[T] = E[W] + 1/mu."""
    return mmk_mean_waiting(lam, mu, k) + 1.0 / mu


# -- M/G/1 -----------------------------------------------------------------


def mg1_mean_waiting(lam: float, service: Distribution) -> float:
    """Pollaczek-Khinchine: E[W] = lam E[S^2] / (2 (1 - rho))."""
    mean = service.mean()
    rho = _check_rates(lam, 1.0 / mean)
    second_moment = service.variance() + mean * mean
    return lam * second_moment / (2.0 * (1.0 - rho))


def mg1_mean_response(lam: float, service: Distribution) -> float:
    """E[T] = E[W] + E[S]."""
    return mg1_mean_waiting(lam, service) + service.mean()


# -- G/G/1 (approximation) ---------------------------------------------------


def gg1_mean_waiting_approx(
    lam: float,
    service: Distribution,
    interarrival_cv: float,
) -> float:
    """Kingman's heavy-traffic approximation for G/G/1 waiting time.

    E[W] ~ (rho / (1 - rho)) * ((Ca^2 + Cs^2) / 2) * E[S]

    This is exactly the kind of few-moment approximation the paper (citing
    Gupta et al.) warns is "often inadequate" — it is provided so its
    error against simulation can be measured, not as a substitute.
    """
    if interarrival_cv < 0:
        raise TheoryError(f"Cv must be >= 0, got {interarrival_cv}")
    mean = service.mean()
    rho = _check_rates(lam, 1.0 / mean)
    cs2 = service.cv() ** 2
    ca2 = interarrival_cv**2
    return (rho / (1.0 - rho)) * ((ca2 + cs2) / 2.0) * mean
