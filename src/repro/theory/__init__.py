"""Closed-form queuing theory — the pen-and-paper baseline.

The paper motivates simulation by the *failure* of analytic models:
M/M/1-style formulas assume exponential inter-arrivals and services,
G/G/k has no closed form, and few-moment approximations are often
inadequate (Gupta et al. [18]).  This package provides the standard
closed forms and approximations so that

- the test suite can pin the simulator against exact results
  (M/M/1, M/M/k, M/G/1), and
- users can quantify, for their own workloads, how far the convenient
  analytic answer sits from the simulated one (the Fig. 5 exercise).
"""

from repro.theory.cloning import (
    min_of_exponentials_mean,
    ps_clone_to_all_response,
    ps_cloning_response,
    ps_random_split_response,
)
from repro.theory.multiserver import (
    MultiserverReference,
    multiserver_recurrence,
    reference_mean,
    simulate_reference,
)
from repro.theory.queues import (
    TheoryError,
    erlang_c,
    mg1_mean_response,
    mg1_mean_waiting,
    mm1_mean_response,
    mm1_mean_waiting,
    mm1_quantile_response,
    mmk_mean_response,
    mmk_mean_waiting,
    gg1_mean_waiting_approx,
    utilization,
)

__all__ = [
    "TheoryError",
    "mm1_mean_response",
    "mm1_mean_waiting",
    "mm1_quantile_response",
    "erlang_c",
    "mmk_mean_waiting",
    "mmk_mean_response",
    "mg1_mean_waiting",
    "mg1_mean_response",
    "gg1_mean_waiting_approx",
    "utilization",
    # multiserver-job ground truth (Baccelli-style recurrence)
    "MultiserverReference",
    "multiserver_recurrence",
    "simulate_reference",
    "reference_mean",
    # request-cloning closed forms
    "ps_clone_to_all_response",
    "ps_random_split_response",
    "ps_cloning_response",
    "min_of_exponentials_mean",
]
