"""Multiserver-job ground truth: the stochastic recurrence equation.

Baccelli, Olliaro, Marin & Rossi's multiserver-job model (PAPERS.md
entry: *The Multiserver-Job Stochastic Recurrence Equation for Cloud
Computing Performance Evaluation*) describes the exact FCFS sample path
of a cluster where job ``i`` simultaneously holds ``k_i`` of ``N``
identical servers for its whole service ``s_i``, with head-of-line
blocking.  The recurrence generalizes Kiefer–Wolfowitz: with ``R`` the
multiset of the ``N`` server release times after job ``i-1`` is placed,

    start_i  = max(arrival_i, start_{i-1}, kth_smallest(R, k_i))
    finish_i = start_i + s_i

and job ``i`` then occupies the ``k_i`` earliest-released servers,
setting their release times to ``finish_i``.  The ``start_{i-1}`` term
is the FCFS blocking property — nothing overtakes a blocked head.

This module is an *independent reference simulator*: a direct
transcription of that recurrence over pre-sampled arrays, sharing no
code with the discrete-event engine.  The event engine's
:class:`~repro.datacenter.cluster.MultiserverCluster` (without
backfill) must reproduce its start/finish times **bit-for-bit** when
fed the same draws — every operation here is a float ``max``/add over
the identical values — and the acceptance harness pins the full
experiment pipeline against seeded reference runs statistically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.engine.simulation import seeded_rng
from repro.theory.queues import TheoryError


def multiserver_recurrence(
    arrivals: Sequence[float],
    sizes: Sequence[float],
    needs: Sequence[int],
    n_servers: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact FCFS multiserver-job sample path via the recurrence.

    Returns ``(starts, finishes)`` arrays.  ``arrivals`` must be
    non-decreasing absolute times; ``needs`` are per-job server gangs,
    each between 1 and ``n_servers``.
    """
    if n_servers < 1:
        raise TheoryError(f"need n_servers >= 1, got {n_servers}")
    count = len(arrivals)
    if len(sizes) != count or len(needs) != count:
        raise TheoryError(
            f"array length mismatch: {count} arrivals, {len(sizes)} sizes, "
            f"{len(needs)} needs"
        )
    starts = np.empty(count, dtype=float)
    finishes = np.empty(count, dtype=float)
    # Release times of the N servers; kept sorted ascending.  Assigning
    # a gang to the k earliest-released servers and re-sorting is the
    # textbook form of the recurrence operator.
    releases = [0.0] * n_servers
    prev_start = 0.0
    for i in range(count):
        need = int(needs[i])
        if need < 1 or need > n_servers:
            raise TheoryError(
                f"job {i} needs {need} servers, cluster has {n_servers}"
            )
        releases.sort()
        start = arrivals[i]
        if prev_start > start:
            start = prev_start
        kth = releases[need - 1]
        if kth > start:
            start = kth
        finish = start + sizes[i]
        starts[i] = start
        finishes[i] = finish
        for slot in range(need):
            releases[slot] = finish
        prev_start = start
    return starts, finishes


@dataclass(frozen=True)
class MultiserverReference:
    """Summary statistics of one seeded reference run."""

    mean_response: float
    mean_waiting: float
    quantiles: Dict[float, float]
    utilization: float
    n_jobs: int

    def metric(self, name: str) -> float:
        """``"response"`` or ``"waiting"`` mean, by name."""
        if name == "response":
            return self.mean_response
        if name == "waiting":
            return self.mean_waiting
        raise TheoryError(f"unknown metric {name!r}")


def simulate_reference(
    interarrival,
    service,
    servers_needed,
    n_servers: int,
    seed: int = 0,
    n_jobs: int = 200_000,
    warmup: int = 2_000,
    quantiles: Sequence[float] = (),
) -> MultiserverReference:
    """Run the recurrence over freshly sampled streams.

    Draws come from three independent substreams spawned from ``seed``
    (mirroring the event engine's one-generator-per-distribution
    layout, though the streams themselves are intentionally distinct
    from any experiment's), so a (seed, n_jobs) pair names one exact
    reference value forever — the acceptance table's ground truth
    column is reproducible bit-for-bit.
    """
    if n_jobs <= warmup:
        raise TheoryError(f"n_jobs ({n_jobs}) must exceed warmup ({warmup})")
    # A deliberately independent seeded lineage: the reference must not
    # share streams with any Simulation it is judging.
    root = np.random.SeedSequence(seed)  # simlint: disable=global-rng
    gap_rng, size_rng, need_rng = (seeded_rng(s) for s in root.spawn(3))
    gaps = interarrival.sample_block(gap_rng, n_jobs)
    sizes = service.sample_block(size_rng, n_jobs)
    needs = servers_needed.sample_block(need_rng, n_jobs).astype(int)
    np.clip(needs, 1, None, out=needs)
    arrivals = np.cumsum(gaps)
    starts, finishes = multiserver_recurrence(
        arrivals, sizes, needs, n_servers
    )
    response = (finishes - arrivals)[warmup:]
    waiting = (starts - arrivals)[warmup:]
    horizon = finishes.max()
    util = float(np.dot(sizes, needs) / (horizon * n_servers))
    return MultiserverReference(
        mean_response=float(response.mean()),
        mean_waiting=float(waiting.mean()),
        quantiles={
            float(q): float(np.quantile(response, q)) for q in quantiles
        },
        utilization=util,
        n_jobs=n_jobs,
    )


def reference_mean(
    lam: float,
    mu: float,
    n_servers: int,
    need_values: Sequence[int],
    need_weights: Optional[Sequence[float]] = None,
    metric: str = "response",
    seed: int = 0xB16,
    n_jobs: int = 200_000,
    warmup: int = 2_000,
) -> float:
    """Seeded reference mean for an M/M-style multiserver-job cluster.

    ``lam`` is the arrival rate, ``mu`` the per-job service rate
    (exponential interarrivals and services, the paper's base case),
    ``need_values``/``need_weights`` the discrete server-need law.  The
    offered load ``rho = lam * E[k] / (mu * N)`` must be < 1; note that
    unlike M/M/k, stability alone does not preclude long HoL-blocking
    transients — the acceptance tolerances account for that.
    """
    from repro.distributions import Choice, Exponential

    need = Choice(need_values, need_weights)
    rho = lam * need.mean() / (mu * n_servers)
    if rho >= 1.0:
        raise TheoryError(
            f"unstable multiserver cluster: rho = {rho:.3f} >= 1"
        )
    reference = simulate_reference(
        Exponential(rate=lam),
        Exponential(rate=mu),
        need,
        n_servers,
        seed=seed,
        n_jobs=n_jobs,
        warmup=warmup,
    )
    return reference.metric(metric)
