"""Closed forms for request cloning over processor-sharing backends.

The redundancy literature (and the reproducibility report this PR's
test layer follows) gives exact results for *synchronized* clones —
replicas that share one size draw — over PS server farms:

- **Clone-to-all** (d = n): every backend receives every logical job
  with the identical size at the identical instant, so all ``n`` PS
  sample paths coincide and the first completion is *the* completion.
  The whole farm collapses, distributionally, to a single M/G/1-PS
  queue at the full arrival rate: ``E[T] = E[S] / (1 - lam/mu)``.
- **Random split** (d = 1): each logical job goes to one uniformly
  random backend; Poisson thinning makes each backend an independent
  M/G/1-PS at rate ``lam / n``: ``E[T] = E[S] / (1 - lam/(n*mu))``.

Both are insensitive to the service distribution's shape (PS), and both
reduce to ``E[S] / (1 - rho)`` when ``rho`` is the *per-backend* load —
synchronized cloning over PS neither helps nor hurts the mean, which is
exactly the regression the acceptance grid pins.  Intermediate
``1 < d < n`` has no closed form (replica queues correlate); callers
get ``None`` and must simulate.

For tails, :func:`min_of_exponentials_mean` covers the empty-system
sanity case, and the test layer pins the clone-to-all tail *exactly*
(bit-for-bit against a single-server run) rather than via a formula.
"""

from __future__ import annotations

from typing import Optional

from repro.theory.queues import TheoryError, _check_rates


def ps_clone_to_all_response(lam: float, mu: float) -> float:
    """Mean response of synchronized clone-to-all over any number of PS
    backends: the single M/G/1-PS closed form ``E[S]/(1 - rho)``."""
    rho = _check_rates(lam, mu)
    return (1.0 / mu) / (1.0 - rho)


def ps_random_split_response(lam: float, mu: float, n: int) -> float:
    """Mean response of d=1 uniform random dispatch over ``n`` PS
    backends: each is M/G/1-PS at ``lam/n``."""
    if n < 1:
        raise TheoryError(f"need n >= 1 backends, got {n}")
    rho = _check_rates(lam / n, mu)
    return (1.0 / mu) / (1.0 - rho)


def ps_cloning_response(
    lam: float, mu: float, n: int, d: int
) -> Optional[float]:
    """Mean response of synchronized clone-to-``d`` over ``n`` PS
    backends, or ``None`` when no closed form exists (1 < d < n)."""
    if n < 1:
        raise TheoryError(f"need n >= 1 backends, got {n}")
    if not 1 <= d <= n:
        raise TheoryError(f"clone count d must be in 1..{n}, got {d}")
    if d == n:
        return ps_clone_to_all_response(lam, mu)
    if d == 1:
        return ps_random_split_response(lam, mu, n)
    return None


def min_of_exponentials_mean(mu: float, d: int) -> float:
    """Mean of the minimum of ``d`` iid Exp(mu) draws: ``1/(d*mu)``.

    The empty-system response of *independent* (unsynchronized) clones
    on ``d`` idle exponential backends — the best-case tail benefit
    cloning can deliver, useful as a sanity floor in tests.
    """
    if mu <= 0:
        raise TheoryError(f"rate mu must be > 0, got {mu}")
    if d < 1:
        raise TheoryError(f"need d >= 1 clones, got {d}")
    return 1.0 / (d * mu)
