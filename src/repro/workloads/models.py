"""The five Table-1 workload models.

The paper ships five workloads measured on live systems:

===========  =================  ======  =====  ==============  ======  =====
Workload     Inter-arrival avg  sigma   Cv     Service avg     sigma   Cv
===========  =================  ======  =====  ==============  ======  =====
DNS          1.1 s              1.2 s   1.1    194 ms          198 ms  1.0
Mail         206 ms             397 ms  1.9    92 ms           335 ms  3.6
Shell        186 ms             796 ms  4.2    46 ms           725 ms  15
Google       319 us             376 us  1.2    4.2 ms          4.8 ms  1.1
Web          186 ms             380 ms  2.0    75 ms           263 ms  3.4
===========  =================  ======  =====  ==============  ======  =====

The measured traces are not redistributable (they contain live production
traffic), so — per the substitution documented in DESIGN.md — we
synthesize each workload from its published moments with
:func:`repro.distributions.fit_mean_cv` (hyperexponential for Cv > 1,
gamma for Cv < 1, exponential at Cv = 1).  ``empirical=True`` further
materializes the fit as a fine-grained empirical CDF, the exact artifact
shape the original release distributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributions import fit_mean_cv
from repro.engine.simulation import seeded_rng
from repro.workloads.workload import Workload, WorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """Published Table-1 moments for one workload (times in seconds)."""

    name: str
    description: str
    interarrival_mean: float
    interarrival_cv: float
    service_mean: float
    service_cv: float

    @property
    def interarrival_std(self) -> float:
        """sigma of the inter-arrival distribution."""
        return self.interarrival_mean * self.interarrival_cv

    @property
    def service_std(self) -> float:
        """sigma of the service distribution."""
        return self.service_mean * self.service_cv

    def build(self, empirical: bool = False, seed: int = 0xB16) -> Workload:
        """Instantiate the workload from its moments.

        With ``empirical=True`` both distributions are materialized as
        empirical CDFs drawn with a fixed ``seed`` (reproducible across
        runs, as a measured trace file would be).
        """
        workload = Workload(
            name=self.name,
            interarrival=fit_mean_cv(self.interarrival_mean, self.interarrival_cv),
            service=fit_mean_cv(self.service_mean, self.service_cv),
        )
        if empirical:
            workload = workload.as_empirical(seeded_rng(seed))
        return workload


#: Table 1 of the paper, verbatim moments.
TABLE1_SPECS: dict[str, WorkloadSpec] = {
    "dns": WorkloadSpec(
        name="dns",
        description="Departmental DNS and DHCP server under live traffic.",
        interarrival_mean=1.1,
        interarrival_cv=1.1,
        service_mean=0.194,
        service_cv=1.0,
    ),
    "mail": WorkloadSpec(
        name="mail",
        description="Departmental POP and SMTP server under live traffic.",
        interarrival_mean=0.206,
        interarrival_cv=1.9,
        service_mean=0.092,
        service_cv=3.6,
    ),
    "shell": WorkloadSpec(
        name="shell",
        description=(
            "Shell login server under live traffic, executing a variety "
            "of interactive tasks."
        ),
        interarrival_mean=0.186,
        interarrival_cv=4.2,
        service_mean=0.046,
        service_cv=15.0,
    ),
    "google": WorkloadSpec(
        name="google",
        description="Leaf node in a Google Web Search cluster (see [24]).",
        interarrival_mean=319e-6,
        interarrival_cv=1.2,
        service_mean=4.2e-3,
        service_cv=1.1,
    ),
    "web": WorkloadSpec(
        name="web",
        description="Departmental HTTP server under live traffic.",
        interarrival_mean=0.186,
        interarrival_cv=2.0,
        service_mean=0.075,
        service_cv=3.4,
    ),
}


def all_names() -> list[str]:
    """Names of the shipped workloads, Table-1 order."""
    return list(TABLE1_SPECS)


def by_name(name: str, empirical: bool = False, seed: int = 0xB16) -> Workload:
    """Build a shipped workload by name (case-insensitive)."""
    try:
        spec = TABLE1_SPECS[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {', '.join(TABLE1_SPECS)}"
        ) from None
    return spec.build(empirical=empirical, seed=seed)


def dns(empirical: bool = False) -> Workload:
    """Departmental DNS/DHCP server workload."""
    return by_name("dns", empirical)


def mail(empirical: bool = False) -> Workload:
    """Departmental POP/SMTP server workload."""
    return by_name("mail", empirical)


def shell(empirical: bool = False) -> Workload:
    """Interactive shell login server workload (service Cv = 15)."""
    return by_name("shell", empirical)


def google(empirical: bool = False) -> Workload:
    """Google Web Search leaf-node workload."""
    return by_name("google", empirical)


def web(empirical: bool = False) -> Workload:
    """Departmental HTTP server workload."""
    return by_name("web", empirical)
