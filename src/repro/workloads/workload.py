"""The Workload abstraction: an (inter-arrival, service) distribution pair.

"Each workload comprises a pair of distributions ... the client request
inter-arrival distribution and the response service time distribution"
(Section 2.2).  Load is varied by scaling the inter-arrival distribution
(Section 3.1), which :meth:`Workload.at_load` / :meth:`Workload.at_qps`
implement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.distributions import Distribution, EmpiricalDistribution, Scaled
from repro.engine.simulation import seeded_rng


class WorkloadError(ValueError):
    """Raised for invalid workload parameters."""


@dataclass(frozen=True)
class Workload:
    """An immutable workload model.

    Attributes
    ----------
    name:
        Workload identifier (e.g. ``"google"``).
    interarrival:
        Distribution of gaps between successive task arrivals (seconds).
    service:
        Distribution of task service demands (seconds at unit speed).
    servers_needed:
        Optional distribution of each job's *server need* — how many
        servers it holds simultaneously for its whole service (gang
        scheduling; see ``repro.datacenter.cluster.MultiserverCluster``).
        ``None`` (the default) means every job needs one server, which
        is the classic BigHouse task model.
    """

    name: str
    interarrival: Distribution
    service: Distribution
    servers_needed: Optional[Distribution] = None

    # -- derived rates -----------------------------------------------------

    @property
    def arrival_rate(self) -> float:
        """Mean arrivals per second (lambda)."""
        return 1.0 / self.interarrival.mean()

    @property
    def peak_qps(self) -> float:
        """Saturation throughput of one unit-speed core (mu = 1/E[S])."""
        return 1.0 / self.service.mean()

    @property
    def mean_servers_needed(self) -> float:
        """Mean server need E[k] per job (1.0 for classic workloads)."""
        if self.servers_needed is None:
            return 1.0
        return self.servers_needed.mean()

    def offered_load(self, cores: int = 1, speed: float = 1.0) -> float:
        """Utilization rho = lambda * E[S] * E[k] / (cores * speed).

        For classic workloads E[k] = 1 and this is the textbook formula;
        a multiserver-job workload consumes E[k] server-seconds of
        capacity per job-second of service, so its need distribution
        scales the load it offers to the pool.
        """
        if cores < 1:
            raise WorkloadError(f"cores must be >= 1, got {cores}")
        if speed <= 0:
            raise WorkloadError(f"speed must be > 0, got {speed}")
        return (
            self.arrival_rate * self.service.mean() * self.mean_servers_needed
            / (cores * speed)
        )

    # -- load scaling ---------------------------------------------------------

    def scale_interarrival(self, factor: float) -> "Workload":
        """New workload with inter-arrival gaps multiplied by ``factor``
        (factor < 1 means *more* load)."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be > 0, got {factor}")
        return replace(self, interarrival=Scaled(self.interarrival, factor))

    def scale_service(self, factor: float) -> "Workload":
        """New workload with service demands multiplied by ``factor``
        (the S_CPU slowdown knob of Fig. 4)."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be > 0, got {factor}")
        return replace(self, service=Scaled(self.service, factor))

    def at_load(self, load: float, cores: int = 1, speed: float = 1.0) -> "Workload":
        """New workload whose offered load on ``cores`` cores equals
        ``load`` (a fraction of saturation; the QPS%% axis of Figs. 4-5)."""
        if not 0.0 < load < 1.0:
            raise WorkloadError(f"load must be in (0, 1), got {load}")
        current = self.offered_load(cores=cores, speed=speed)
        return self.scale_interarrival(current / load)

    def with_servers_needed(self, distribution: Distribution) -> "Workload":
        """New workload whose jobs draw a server need from
        ``distribution`` (values are truncated to ints >= 1 at the
        source; a Choice over exact integers is the intended shape)."""
        if distribution.mean() < 1.0:
            raise WorkloadError(
                f"mean server need must be >= 1, got {distribution.mean()}"
            )
        return replace(self, servers_needed=distribution)

    def at_qps(self, qps: float) -> "Workload":
        """New workload with mean arrival rate ``qps`` per second."""
        if qps <= 0:
            raise WorkloadError(f"qps must be > 0, got {qps}")
        return self.scale_interarrival(self.arrival_rate / qps)

    # -- conversion ------------------------------------------------------------

    def as_empirical(
        self, rng: Optional[np.random.Generator] = None, n: int = 100_000
    ) -> "Workload":
        """Materialize both distributions as fine-grained empirical CDFs,
        the artifact shape BigHouse actually distributes (< 1 MB each)."""
        # 0xB16 ("BIG") is the historical fixed seed; changing it changes
        # every shipped empirical workload bit-for-bit.
        rng = rng if rng is not None else seeded_rng(0xB16)
        return replace(
            self,
            interarrival=EmpiricalDistribution.from_distribution(
                self.interarrival, rng, n
            ),
            service=EmpiricalDistribution.from_distribution(self.service, rng, n),
        )
