"""Time-varying (diurnal) arrival processes.

Data center load is not stationary: the studies BigHouse targets (power
capping, energy proportionality) exist *because* traffic swings through
daily peaks and troughs.  This module adds a non-homogeneous arrival
source driven by a rate profile:

- :class:`RateProfile` — a periodic piecewise-linear multiplier over the
  base arrival rate (e.g. a diurnal curve);
- :func:`diurnal_profile` — the classic sinusoid-like day shape with a
  configurable peak-to-trough ratio;
- :class:`VariableRateSource` — generates arrivals whose *local* rate
  follows the profile, by scaling each drawn inter-arrival gap with the
  instantaneous multiplier (an inversion-free analogue of thinning that
  preserves the gap distribution's shape at every instant).

Caveat (inherited from the paper's stationarity discussion): the
statistics pipeline assumes steady state; with a time-varying rate the
"converged" estimate is a *time-average over the profile's period*, so
warm-up should cover at least one full period.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datacenter.job import Job
from repro.datacenter.source import _JOB_COUNTER
from repro.distributions.prefetch import PrefetchSampler
from repro.engine.simulation import Simulation
from repro.workloads.workload import Workload, WorkloadError


class RateProfile:
    """Periodic piecewise-linear rate multiplier.

    ``points`` is a sequence of (time, multiplier) knots over one period;
    the profile repeats with ``period`` and interpolates linearly between
    knots (wrapping the last knot to the first).
    """

    def __init__(self, points: Sequence[Tuple[float, float]], period: float):
        if period <= 0:
            raise WorkloadError(f"period must be > 0, got {period}")
        if len(points) < 1:
            raise WorkloadError("profile needs >= 1 knot")
        times = [t for t, _ in points]
        if any(not 0.0 <= t < period for t in times):
            raise WorkloadError("knot times must lie in [0, period)")
        if times != sorted(times):
            raise WorkloadError("knot times must be sorted")
        if any(m <= 0 for _, m in points):
            raise WorkloadError("multipliers must be > 0")
        self.period = float(period)
        # Close the loop: append the first knot one period later.
        self._times = np.array(times + [times[0] + period], dtype=float)
        multipliers = [m for _, m in points]
        self._multipliers = np.array(multipliers + [multipliers[0]], dtype=float)

    def multiplier(self, time: float) -> float:
        """The rate multiplier at absolute time ``time``."""
        phase = time % self.period
        if phase < self._times[0]:
            phase += self.period
        return float(np.interp(phase, self._times, self._multipliers))

    def peak(self) -> float:
        """Largest multiplier anywhere on the profile."""
        return float(self._multipliers.max())

    def mean_multiplier(self) -> float:
        """Time-average multiplier over one period (trapezoidal)."""
        widths = np.diff(self._times)
        mids = (self._multipliers[:-1] + self._multipliers[1:]) / 2.0
        return float((widths * mids).sum() / self.period)


def diurnal_profile(
    peak_to_trough: float = 3.0,
    period: float = 86_400.0,
    knots: int = 24,
    peak_time_fraction: float = 0.58,
) -> RateProfile:
    """A smooth day-shaped profile normalized to peak multiplier 1.0.

    ``peak_to_trough`` is the classic diurnal swing (Google-style traces
    show 2-5x); the peak lands at ``peak_time_fraction`` of the period
    (default mid-afternoon).
    """
    if peak_to_trough < 1.0:
        raise WorkloadError(
            f"peak_to_trough must be >= 1, got {peak_to_trough}"
        )
    if knots < 2:
        raise WorkloadError(f"need >= 2 knots, got {knots}")
    trough = 1.0 / peak_to_trough
    amplitude = (1.0 - trough) / 2.0
    center = (1.0 + trough) / 2.0
    times = np.linspace(0.0, period, knots, endpoint=False)
    phase = 2.0 * np.pi * (times / period - peak_time_fraction)
    multipliers = center + amplitude * np.cos(phase)
    return RateProfile(list(zip(times.tolist(), multipliers.tolist())), period)


class VariableRateSource:
    """Open-loop source whose arrival rate follows a :class:`RateProfile`.

    Each inter-arrival gap is drawn from the workload's distribution and
    divided by the profile multiplier at the draw instant, so the local
    arrival rate is ``base_rate * multiplier(t)`` while the gap
    distribution's shape (its Cv) is preserved at every instant.
    """

    def __init__(
        self,
        workload: Workload,
        profile: RateProfile,
        target,
        max_jobs: Optional[int] = None,
        name: str = "diurnal-source",
    ):
        self.workload = workload
        self.profile = profile
        self.target = target
        self.max_jobs = max_jobs
        self.name = name
        self.generated = 0
        self.sim: Optional[Simulation] = None
        self._arrival_rng = None
        self._service_rng = None
        self._next_gap: Optional[PrefetchSampler] = None
        self._next_size: Optional[PrefetchSampler] = None
        self._label = ""

    def bind(self, sim: Simulation) -> None:
        """Attach and schedule the first arrival."""
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        self._arrival_rng = sim.spawn_rng()
        self._service_rng = sim.spawn_rng()
        self._next_gap = PrefetchSampler(
            self.workload.interarrival, self._arrival_rng
        )
        self._next_size = PrefetchSampler(
            self.workload.service, self._service_rng
        )
        self._label = f"{self.name}:arrival" if sim.tracing else ""
        self.target.bind(sim)
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.max_jobs is not None and self.generated >= self.max_jobs:
            return
        gap = self._next_gap() / self.profile.multiplier(self.sim.now)
        self.sim.schedule_in(gap, self._emit, self._label)

    def _emit(self) -> None:
        job = Job(next(_JOB_COUNTER), size=self._next_size())
        job.arrival_time = self.sim.now
        self.generated += 1
        self.target.arrive(job)
        self._schedule_next()
