"""Synthetic trace generation and trace-derived workload models.

Round-trips the two characterization paths of Fig. 1: a workload model can
*generate* an explicit event trace (:func:`generate_trace`), and a logged
trace can be *distilled back* into a compact empirical workload model
(:func:`workload_from_trace`) — the "offline benchmarking / online
instrumentation" step a BigHouse user performs against a live system.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.distributions import EmpiricalDistribution
from repro.distributions.prefetch import PrefetchSampler
from repro.workloads.workload import Workload, WorkloadError


def generate_trace(
    workload: Workload,
    n: int,
    rng: np.random.Generator,
    start_time: float = 0.0,
) -> List[Tuple[float, float]]:
    """Draw an explicit trace of ``n`` (arrival_time, size) pairs.

    Draws go through :class:`PrefetchSampler` so a generated trace
    consumes the rng stream exactly like an online source serving the
    same draws one at a time (bit-reproducible either way).
    """
    if n < 1:
        raise WorkloadError(f"need n >= 1 trace entries, got {n}")
    gaps = PrefetchSampler(workload.interarrival, rng).take(n)
    sizes = PrefetchSampler(workload.service, rng).take(n)
    arrivals = start_time + np.cumsum(gaps)
    return list(zip(arrivals.tolist(), sizes.tolist()))


def workload_from_trace(
    trace: Sequence[Tuple[float, float]],
    name: str = "traced",
) -> Workload:
    """Distill a logged (arrival_time, size) trace into a workload model.

    Arrival times are differenced into inter-arrival gaps; both marginals
    become empirical CDFs.  This is the lossy-but-compact transformation
    the paper describes: only the correlations captured in the marginal
    distributions survive into the synthetic re-draws.
    """
    if len(trace) < 2:
        raise WorkloadError(f"need >= 2 trace entries, got {len(trace)}")
    arrivals = np.asarray([entry[0] for entry in trace], dtype=float)
    sizes = np.asarray([entry[1] for entry in trace], dtype=float)
    gaps = np.diff(arrivals)
    if np.any(gaps < 0):
        raise WorkloadError("trace arrival times must be non-decreasing")
    return Workload(
        name=name,
        interarrival=EmpiricalDistribution.from_samples(gaps),
        service=EmpiricalDistribution.from_samples(sizes),
    )
