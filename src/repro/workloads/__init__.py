"""Workload models: empirically-characterized task populations.

A :class:`Workload` pairs an inter-arrival distribution with a service
distribution (Section 2.2).  :mod:`repro.workloads.models` ships the five
Table-1 workloads (DNS, Mail, Shell, Google, Web) synthesized from their
published moments; :mod:`repro.workloads.generator` turns workloads into
explicit traces and back.
"""

from repro.workloads.workload import Workload, WorkloadError
from repro.workloads.models import (
    TABLE1_SPECS,
    WorkloadSpec,
    dns,
    google,
    mail,
    shell,
    web,
    by_name,
    all_names,
)
from repro.workloads.generator import generate_trace, workload_from_trace
from repro.workloads.timevarying import (
    RateProfile,
    VariableRateSource,
    diurnal_profile,
)

__all__ = [
    "Workload",
    "WorkloadError",
    "WorkloadSpec",
    "TABLE1_SPECS",
    "dns",
    "mail",
    "shell",
    "google",
    "web",
    "by_name",
    "all_names",
    "generate_trace",
    "workload_from_trace",
    "RateProfile",
    "VariableRateSource",
    "diurnal_profile",
]
