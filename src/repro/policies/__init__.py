"""Scheduling policies layered on the server model.

:class:`DreamWeaver` reproduces the Section-3.2 case study: a scheduler
that coalesces idle periods across the cores of a many-core server so the
whole system can enter a deep sleep mode (PowerNap), trading bounded
per-request delay for full-system idleness.  With ``delay_threshold=0``
it degenerates to plain PowerNap (sleep only when totally idle, wake on
first arrival), which serves as the baseline.
"""

from repro.policies.dreamweaver import DreamWeaver, DreamWeaverError, PolicyState
from repro.policies.governor import OndemandGovernor

__all__ = ["DreamWeaver", "DreamWeaverError", "PolicyState", "OndemandGovernor"]
