"""Utilization-driven DVFS governor (an "ondemand"-style policy).

A small, self-contained example of the kind of power-management policy
BigHouse is designed to evaluate: sample a server's utilization every
epoch and pick the lowest frequency that keeps utilization below a
target, stepping up aggressively on saturation and down conservatively
when there is headroom — the classic Linux ``ondemand`` shape.

Combines with :class:`repro.power.dvfs.ServerDVFS` (for the Eq. 5/6
power/performance coupling) and an :class:`repro.power.meter.EnergyMeter`
to study the latency/energy trade-off of governor tuning.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.simulation import Simulation
from repro.power.dvfs import ServerDVFS
from repro.power.models import PowerModelError


class OndemandGovernor:
    """Epoch-sampled frequency governor for one server.

    Parameters
    ----------
    coupling:
        The server's DVFS coupling.
    epoch:
        Sampling period in simulated seconds.
    up_threshold:
        Utilization above which the governor jumps straight to f_max
        (``ondemand``'s signature move).
    target_utilization:
        Desired post-scaling utilization when stepping down: the
        governor picks f so busy time / epoch ~ target.
    """

    def __init__(
        self,
        coupling: ServerDVFS,
        epoch: float = 0.1,
        up_threshold: float = 0.8,
        target_utilization: float = 0.7,
    ):
        if epoch <= 0:
            raise PowerModelError(f"epoch must be > 0, got {epoch}")
        if not 0.0 < up_threshold <= 1.0:
            raise PowerModelError(
                f"up_threshold must be in (0, 1], got {up_threshold}"
            )
        if not 0.0 < target_utilization <= 1.0:
            raise PowerModelError(
                f"target_utilization must be in (0, 1], got {target_utilization}"
            )
        self.coupling = coupling
        self.epoch = float(epoch)
        self.up_threshold = float(up_threshold)
        self.target_utilization = float(target_utilization)
        self.sim: Optional[Simulation] = None
        self.epochs_run = 0
        self.boosts = 0

    def bind(self, sim: Simulation) -> None:
        """Start the sampling epoch."""
        if self.sim is not None:
            raise PowerModelError("governor already bound")
        self.sim = sim
        sim.schedule_periodic(self.epoch, self.run_epoch, "governor-epoch")

    def run_epoch(self) -> None:
        """One governor decision."""
        self.epochs_run += 1
        perf = self.coupling.perf_model
        utilization = self.coupling.server.utilization_since_marker()
        if utilization >= self.up_threshold:
            self.boosts += 1
            self.coupling.set_frequency(perf.f_max)
            return
        # Demand in "full-speed core-seconds per second" terms: the busy
        # fraction already reflects the current speed, so convert back to
        # work and pick the frequency whose speed meets it at the target.
        current_speed = perf.speed(self.coupling.frequency)
        work_rate = utilization * current_speed
        needed_speed = work_rate / self.target_utilization
        frequency = self._frequency_for_speed(needed_speed)
        self.coupling.set_frequency(frequency)

    def _frequency_for_speed(self, speed: float) -> float:
        """Invert Eq. 6: f = f_max * (speed - (1 - alpha)) / alpha."""
        perf = self.coupling.perf_model
        if perf.alpha == 0:
            return perf.f_max
        frequency = perf.f_max * (speed - (1.0 - perf.alpha)) / perf.alpha
        return perf.clamp(frequency)
