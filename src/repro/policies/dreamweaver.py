"""DreamWeaver: scheduling for idleness (Section 3.2).

"The essence of the scheduling mechanism is to preempt execution and
enter deep sleep if there are fewer outstanding tasks than cores.
However, if any task is delayed by more than a pre-specified threshold,
the system wakes up and execution resumes even if some [cores] remain
idle.  In essence, the technique trades per-request latency to create
opportunities for deep sleep."

Mechanics as implemented here:

- whenever the number of outstanding tasks drops below the core count
  (and no outstanding task has exhausted its delay budget), the whole
  server is paused — in-flight tasks stop progressing;
- each task carries a *delay budget* equal to the threshold; budget is
  consumed only while the server naps (service time is never counted);
- the server wakes when (a) an outstanding task's budget runs out, or
  (b) outstanding tasks reach the core count — whichever first; waking
  takes ``wake_transition`` seconds (PowerNap-style);
- once awake it runs until the nap condition re-arms.  A task that
  exhausted its budget blocks re-napping until it completes, which is
  what prevents wake/nap thrashing at the threshold boundary.

The tuning knob is ``delay_threshold``: sweeping it traces the idle-time
versus 99th-percentile-latency trade-off curve of Fig. 6.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional

from repro.datacenter.job import Job
from repro.datacenter.server import Server
from repro.engine.simulation import Simulation


class DreamWeaverError(RuntimeError):
    """Raised on invalid DreamWeaver configuration or state."""


class PolicyState(enum.Enum):
    """Power state of the managed server."""

    AWAKE = "awake"
    NAPPING = "napping"
    WAKING = "waking"


class DreamWeaver:
    """Idleness-coalescing scheduler wrapped around one server.

    Parameters
    ----------
    server:
        The many-core server to manage (not yet bound).
    delay_threshold:
        Maximum time any single task may spend delayed by napping before
        the system is forced awake.  ``0`` reduces to PowerNap.
    wake_transition:
        Deep-sleep exit latency (the PowerNap paper's ~1 ms scale).
    nap_transition:
        Deep-sleep entry latency; modeled as time at the start of a nap
        during which the system is *not* counted as usefully idle.
    min_benefit_factor:
        Naps expected to last less than ``min_benefit_factor *
        (nap_transition + wake_transition)`` are skipped.  Without this
        gate the policy thrashes at large thresholds: it naps with
        ``cores - 1`` outstanding tasks, arrivals refill the cores within
        a fraction of the transition cost, and the system burns
        transitions for no idleness.  The expected nap length is the
        smaller of the tightest remaining delay budget and the estimated
        time for arrivals to fill the cores (from an online inter-arrival
        estimate).
    """

    def __init__(
        self,
        server: Server,
        delay_threshold: float,
        wake_transition: float = 1e-3,
        nap_transition: float = 1e-3,
        min_benefit_factor: float = 1.0,
    ):
        if delay_threshold < 0:
            raise DreamWeaverError(
                f"delay_threshold must be >= 0, got {delay_threshold}"
            )
        if wake_transition < 0 or nap_transition < 0:
            raise DreamWeaverError("transition times must be >= 0")
        if min_benefit_factor < 0:
            raise DreamWeaverError(
                f"min_benefit_factor must be >= 0, got {min_benefit_factor}"
            )
        self.server = server
        self.delay_threshold = float(delay_threshold)
        self.wake_transition = float(wake_transition)
        self.nap_transition = float(nap_transition)
        self.min_benefit_factor = float(min_benefit_factor)
        # Online inter-arrival estimate for the nap-benefit gate.
        self._arrivals_seen = 0
        self._first_arrival: Optional[float] = None
        self._last_arrival: Optional[float] = None

        self.state = PolicyState.AWAKE
        self.sim: Optional[Simulation] = None
        self._outstanding: Dict[int, Job] = {}
        #: Start of the current nap (fixed until wake; for idle accounting).
        self._nap_started: Optional[float] = None
        #: Time up to which nap delay has been charged to outstanding jobs.
        self._accrual_marker: Optional[float] = None
        #: Instant from which the current nap counts as useful deep sleep.
        self._nap_useful_from: float = 0.0
        self._wake_timer = None
        self.nap_seconds = 0.0
        self.naps_taken = 0
        self.wakes_by_timeout = 0
        self.wakes_by_load = 0

        server.on_arrival(self._handle_arrival)
        server.on_complete(self._handle_complete)

    # -- wiring -------------------------------------------------------------

    def bind(self, sim: Simulation) -> None:
        """Bind the server, then nap immediately (system starts empty)."""
        self.sim = sim
        self.server.bind(sim)
        self._maybe_nap()

    # Allow the policy object itself to be used as an experiment target
    # component boundary is the server.

    # -- delay-budget bookkeeping ---------------------------------------------

    def _remaining_budget(self, job: Job) -> float:
        return self.delay_threshold - job.delay_used

    def _accrue_nap_delays(self, until: float) -> None:
        """Charge nap time since the last charge against outstanding tasks."""
        if self._accrual_marker is None:
            return
        for job in self._outstanding.values():
            accrual_start = max(self._accrual_marker, job.arrival_time)
            if until > accrual_start:
                job.delay_used += until - accrual_start
        # Advance the marker so a later charge never double-counts.
        self._accrual_marker = until

    # -- nap / wake decisions --------------------------------------------------

    def _mean_interarrival(self) -> float:
        """Online estimate of the mean inter-arrival gap (inf until known)."""
        if self._arrivals_seen < 2:
            return math.inf
        span = self._last_arrival - self._first_arrival
        if span <= 0:
            return 0.0
        return span / (self._arrivals_seen - 1)

    def _expected_nap(self) -> float:
        """Expected length of a nap started now: the smaller of the
        tightest remaining delay budget and the time for arrivals to
        refill the cores."""
        budget = math.inf
        if self._outstanding:
            budget = min(
                self._remaining_budget(job)
                for job in self._outstanding.values()
            )
        slots = self.server.cores - len(self._outstanding)
        fill_time = slots * self._mean_interarrival()
        return min(budget, fill_time)

    def _nap_allowed(self) -> bool:
        if self.state is not PolicyState.AWAKE:
            return False
        if len(self._outstanding) >= self.server.cores:
            return False
        if any(
            self._remaining_budget(job) <= 0.0
            for job in self._outstanding.values()
        ):
            return False
        min_benefit = self.min_benefit_factor * (
            self.nap_transition + self.wake_transition
        )
        return self._expected_nap() >= min_benefit

    def _maybe_nap(self) -> None:
        if not self._nap_allowed():
            return
        self.state = PolicyState.NAPPING
        self.naps_taken += 1
        self._nap_started = self.sim.now
        self._accrual_marker = self.sim.now
        self._nap_useful_from = self.sim.now + self.nap_transition
        self.server.pause()
        self._arm_wake_timer()

    def _arm_wake_timer(self) -> None:
        self._cancel_wake_timer()
        if not self._outstanding:
            return  # nothing pending: sleep until an arrival wakes us
        budget = min(
            self._remaining_budget(job) for job in self._outstanding.values()
        )
        budget = max(0.0, budget)
        if math.isinf(budget):
            return
        self._wake_timer = self.sim.schedule_in(
            budget, self._timeout_wake, "dreamweaver:timeout-wake"
        )

    def _cancel_wake_timer(self) -> None:
        if self._wake_timer is not None:
            self.sim.cancel(self._wake_timer)
            self._wake_timer = None

    def _timeout_wake(self) -> None:
        self._wake_timer = None
        self.wakes_by_timeout += 1
        self._initiate_wake()

    def _initiate_wake(self) -> None:
        if self.state is not PolicyState.NAPPING:
            return
        now = self.sim.now
        # Count useful (deep-sleep) idle time, net of the entry transition.
        useful_from = min(max(self._nap_useful_from, self._nap_started), now)
        self.nap_seconds += max(0.0, now - useful_from)
        self._accrue_nap_delays(now)
        self._nap_started = None
        self._accrual_marker = None
        self._cancel_wake_timer()
        self.state = PolicyState.WAKING
        self.sim.schedule_in(
            self.wake_transition, self._finish_wake, "dreamweaver:wake"
        )

    def _finish_wake(self) -> None:
        # Jobs kept waiting through the wake transition also consumed budget.
        for job in self._outstanding.values():
            start = max(job.arrival_time, self.sim.now - self.wake_transition)
            job.delay_used += max(0.0, self.sim.now - start)
        self.state = PolicyState.AWAKE
        self.server.resume()
        # Load may have drained meaning we could nap again right away only
        # if budgets allow; _nap_allowed guards thrashing.
        self._maybe_nap()

    # -- server hooks --------------------------------------------------------------

    def _handle_arrival(self, job: Job, server: Server) -> None:
        self._arrivals_seen += 1
        if self._first_arrival is None:
            self._first_arrival = self.sim.now
        self._last_arrival = self.sim.now
        self._outstanding[job.job_id] = job
        if self.state is PolicyState.NAPPING:
            self._accrue_nap_delays(self.sim.now)
            if (
                len(self._outstanding) >= server.cores
                or self._remaining_budget(job) <= 0.0
            ):
                self.wakes_by_load += 1
                self._initiate_wake()
            else:
                self._arm_wake_timer()

    def _handle_complete(self, job: Job, server: Server) -> None:
        self._outstanding.pop(job.job_id, None)
        self._maybe_nap()

    # -- reporting ---------------------------------------------------------------------

    def idle_fraction(self) -> float:
        """Fraction of elapsed simulation time spent in useful deep sleep."""
        now = self.sim.now if self.sim is not None else 0.0
        if now <= 0:
            return 0.0
        total = self.nap_seconds
        if self.state is PolicyState.NAPPING:
            useful_from = min(max(self._nap_useful_from, self._nap_started), now)
            total += max(0.0, now - useful_from)
        return total / now
