"""DreamWeaver validation study (Section 3.2, Fig. 6).

The paper validated BigHouse against a software prototype of DreamWeaver
running Solr web search: sweeping the pre-specified per-task delay
threshold traces a curve of full-system idle fraction against
99th-percentile query latency — more tolerated delay buys more coalesced
deep sleep at the cost of tail latency.

The Solr/AOL/Wikipedia setup is not redistributable; per DESIGN.md we
drive the same scheduling mechanism with the Google search workload
(also a web-search service) on a many-core server.  The reproduction
target is the *shape* of the trade-off curve, monotone in the threshold.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.datacenter.server import Server
from repro.engine.experiment import Experiment
from repro.policies.dreamweaver import DreamWeaver
from repro.workloads import google


def dreamweaver_point(
    delay_threshold: float,
    load: float = 0.3,
    cores: int = 32,
    seed: int = 0,
    quantile: float = 0.99,
    accuracy: float = 0.1,
    wake_transition: float = 1e-3,
    nap_transition: float = 1e-3,
    max_events: Optional[int] = None,
    warmup_samples: int = 500,
    calibration_samples: int = 3000,
) -> Dict[str, float]:
    """Run one threshold setting; returns idle fraction + tail latency.

    ``load`` is the offered utilization of the many-core server; the
    DreamWeaver study targets the low-load regime where idleness exists
    to be coalesced.
    """
    experiment = Experiment(
        seed=seed,
        warmup_samples=warmup_samples,
        calibration_samples=calibration_samples,
    )
    server = Server(cores=cores, name="solr-like")
    policy = DreamWeaver(
        server,
        delay_threshold=delay_threshold,
        wake_transition=wake_transition,
        nap_transition=nap_transition,
    )
    policy.bind(experiment.simulation)
    workload = google().at_load(load, cores=cores)
    experiment.add_source(workload, target=server)
    experiment.track_response_time(
        server, mean_accuracy=accuracy, quantiles={quantile: accuracy}
    )
    result = experiment.run(max_events=max_events)
    estimate = result["response_time"]
    return {
        "delay_threshold": delay_threshold,
        "idle_fraction": policy.idle_fraction(),
        "latency": estimate.quantiles[quantile],
        "mean_latency": estimate.mean,
        "naps": float(policy.naps_taken),
        "wakes_by_timeout": float(policy.wakes_by_timeout),
        "wakes_by_load": float(policy.wakes_by_load),
        "converged": float(result.converged),
    }


def dreamweaver_tradeoff(
    delay_thresholds: Iterable[float],
    load: float = 0.3,
    cores: int = 32,
    seed: int = 0,
    quantile: float = 0.99,
    accuracy: float = 0.1,
    max_events: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Sweep the delay threshold; one Fig. 6 curve point per setting."""
    return [
        dreamweaver_point(
            threshold,
            load=load,
            cores=cores,
            seed=seed,
            quantile=quantile,
            accuracy=accuracy,
            max_events=max_events,
        )
        for threshold in delay_thresholds
    ]
