"""Google Web search power management (Section 3.1, Figs. 4-5).

The published study [24] instrumented a production search leaf node to
capture inter-arrival and service distributions, then used BigHouse to
predict 95th-percentile latency across processor/memory performance
settings.  Two reproduction axes:

- **Fig. 4** — latency vs load (QPS as a percentage of the nominal peak)
  for CPU slowdown factors S_CPU in {1.0, 1.1, 1.3, 1.6, 2.0}; slowdown
  scales the service distribution.
- **Fig. 5** — the effect of the inter-arrival *shape* at fixed service:
  "Low Cv" (near-uniform loadtester traffic), "Exponential" (the
  pen-and-paper assumption), and "Empirical" (the measured distribution,
  which has *higher* variance than exponential: Table 1 lists Cv = 1.2).
  Poor assumptions lead to large latency underestimates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.datacenter.server import Server
from repro.distributions import Distribution, Exponential, Gamma, fit_mean_cv
from repro.engine.experiment import Experiment
from repro.workloads import google
from repro.workloads.workload import Workload, WorkloadError

#: Fig. 5's three inter-arrival scenarios.
INTERARRIVAL_KINDS = ("empirical", "exponential", "lowcv")

#: Cv used for the "Low Cv" near-uniform loadtester scenario.
LOW_CV = 0.1

#: Fractions of query service time attributable to CPU vs memory.  The
#: study (ref. [24]) varied processor frequency and memory latency
#: independently and measured the resulting per-query service times;
#: query time responds to each component's slowdown in proportion to its
#: share.  The Fig. 4 subset fixes memory and sweeps CPU: its "S_CPU"
#: labels are the measured *relative* query slowdowns at those CPU
#: settings, which is what ``s_cpu`` means throughout this module.
CPU_SHARE = 0.6
MEM_SHARE = 1.0 - CPU_SHARE


def combined_slowdown(cpu_component: float = 1.0,
                      memory_component: float = 1.0) -> float:
    """Overall query slowdown from per-component slowdowns.

    A query's service time decomposes into a CPU part and a memory part;
    slowing a component stretches only its own share:

        S_total = CPU_SHARE * cpu_component + MEM_SHARE * memory_component

    The result is the overall relative slowdown to pass as ``s_cpu`` to
    the sweep functions (the paper's setting space is this 2-D grid; its
    Fig. 4 shows the memory-fixed slice).
    """
    if cpu_component < 1.0 or memory_component < 1.0:
        raise WorkloadError(
            f"component slowdowns must be >= 1.0, got "
            f"cpu={cpu_component}, memory={memory_component}"
        )
    return CPU_SHARE * cpu_component + MEM_SHARE * memory_component

#: Service stations of the modeled leaf node.  A search query is
#: parallelized across all cores of the leaf (the study measured service
#: times by injecting queries one-at-a-time into an isolated node), so the
#: leaf behaves as a single G/G/1 station whose service time is the
#: measured isolated query latency; queuing appears as soon as queries
#: overlap.  This is what lets latency climb over the paper's 20-70% QPS
#: operating range (Fig. 4) — a leaf modeled as k independent cores would
#: show no queuing until ~90% load.
LEAF_CORES = 1


def _interarrival_for(kind: str, mean: float) -> Distribution:
    """Inter-arrival distribution of a given shape with a given mean."""
    if kind == "empirical":
        # The measured distribution: higher variance than exponential.
        return fit_mean_cv(mean, 1.2)
    if kind == "exponential":
        return Exponential.from_mean(mean)
    if kind == "lowcv":
        return Gamma.from_mean_cv(mean, LOW_CV)
    raise WorkloadError(
        f"unknown inter-arrival kind {kind!r}; choose from {INTERARRIVAL_KINDS}"
    )


def search_workload(
    qps_fraction: float,
    s_cpu: float = 1.0,
    interarrival_kind: str = "empirical",
    cores: int = LEAF_CORES,
) -> Workload:
    """The Google search workload at a given load and CPU slowdown.

    ``qps_fraction`` is the offered QPS as a fraction of the *nominal*
    (S_CPU = 1.0) saturation throughput of the leaf — the paper's x-axis.
    Slowing the CPU down (s_cpu > 1) stretches service times, so the same
    QPS fraction yields proportionally higher utilization.
    """
    if not 0.0 < qps_fraction < 1.0:
        raise WorkloadError(
            f"qps_fraction must be in (0, 1), got {qps_fraction}"
        )
    if s_cpu < 1.0:
        raise WorkloadError(f"s_cpu is a slowdown (>= 1.0), got {s_cpu}")
    base = google()
    nominal_peak_qps = cores / base.service.mean()
    qps = qps_fraction * nominal_peak_qps
    slowed = base.scale_service(s_cpu)
    interarrival = _interarrival_for(interarrival_kind, 1.0 / qps)
    return Workload(
        name=f"google/s{s_cpu:g}/{interarrival_kind}",
        interarrival=interarrival,
        service=slowed.service,
    )


def build_search_experiment(
    qps_fraction: float,
    s_cpu: float = 1.0,
    interarrival_kind: str = "empirical",
    cores: int = LEAF_CORES,
    seed: int = 0,
    quantile: float = 0.95,
    accuracy: float = 0.05,
    warmup_samples: int = 1000,
    calibration_samples: int = 5000,
    **experiment_kwargs,
) -> Tuple[Experiment, Server]:
    """One leaf-node latency experiment, ready to run."""
    workload = search_workload(qps_fraction, s_cpu, interarrival_kind, cores)
    if workload.offered_load(cores=cores) >= 1.0:
        raise WorkloadError(
            f"unstable operating point: qps_fraction={qps_fraction}, "
            f"s_cpu={s_cpu} drives utilization to "
            f"{workload.offered_load(cores=cores):.2f}"
        )
    experiment = Experiment(
        seed=seed,
        warmup_samples=warmup_samples,
        calibration_samples=calibration_samples,
        **experiment_kwargs,
    )
    server = Server(cores=cores, name="search-leaf")
    experiment.add_source(workload, target=server)
    experiment.track_response_time(
        server,
        mean_accuracy=accuracy,
        quantiles={quantile: accuracy},
    )
    return experiment, server


def latency_vs_qps(
    qps_fractions: Iterable[float],
    s_cpu: float = 1.0,
    interarrival_kind: str = "empirical",
    cores: int = LEAF_CORES,
    seed: int = 0,
    quantile: float = 0.95,
    accuracy: float = 0.05,
    max_events: Optional[int] = None,
    normalize_by_service_mean: bool = False,
) -> List[Dict[str, float]]:
    """Sweep load and return one row per operating point.

    Each row: ``qps_fraction``, ``latency`` (the target quantile of
    response time, seconds — or multiples of the nominal service mean
    when ``normalize_by_service_mean``), ``mean`` and ``utilization``.
    """
    rows = []
    nominal_mean = google().service.mean()
    for fraction in qps_fractions:
        experiment, _server = build_search_experiment(
            fraction,
            s_cpu=s_cpu,
            interarrival_kind=interarrival_kind,
            cores=cores,
            seed=seed,
            quantile=quantile,
            accuracy=accuracy,
        )
        result = experiment.run(max_events=max_events)
        estimate = result["response_time"]
        latency = estimate.quantiles[quantile]
        mean = estimate.mean
        if normalize_by_service_mean:
            latency /= nominal_mean
            mean /= nominal_mean
        rows.append(
            {
                "qps_fraction": fraction,
                "s_cpu": s_cpu,
                "interarrival": interarrival_kind,
                "latency": latency,
                "mean": mean,
                "utilization": fraction * s_cpu,
                "converged": float(result.converged),
            }
        )
    return rows
