"""Prebuilt experiments reproducing the paper's case studies.

- :mod:`repro.casestudies.google_search` — Section 3.1 / Figs. 4-5:
  power-management performance scaling for Google Web search.
- :mod:`repro.casestudies.dreamweaver_study` — Section 3.2 / Fig. 6:
  DreamWeaver's idleness-vs-latency trade-off.
- :mod:`repro.casestudies.power_capping_study` — Section 4 / Figs. 7-10:
  the cluster-wide power capping example used for all simulator
  performance measurements.
"""

from repro.casestudies.google_search import (
    build_search_experiment,
    latency_vs_qps,
    INTERARRIVAL_KINDS,
)
from repro.casestudies.dreamweaver_study import (
    dreamweaver_point,
    dreamweaver_tradeoff,
)
from repro.casestudies.power_capping_study import (
    CappedClusterExperiment,
    build_capped_cluster,
)

__all__ = [
    "build_search_experiment",
    "latency_vs_qps",
    "INTERARRIVAL_KINDS",
    "dreamweaver_point",
    "dreamweaver_tradeoff",
    "CappedClusterExperiment",
    "build_capped_cluster",
]
