"""The power-capped cluster (Section 4.1) used for Figs. 7-10.

A cluster of quad-core servers, each running its own copy of a workload,
with the proportional power-capping controller recomputing budgets every
simulated second.  The controller makes every server's system model
interact globally each epoch — the property that stresses simulator
scalability.  The experiment can track any subset of the three output
metrics of Fig. 9:

- ``response_time`` — one observation per completed request (frequent),
- ``waiting_time``  — also per completion, but most observations are
  zero because queuing is relatively infrequent, concentrating the
  distribution and making tail quantiles slow to pin down,
- ``capping_level`` — one observation per server per epoch (rare).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datacenter.server import Server
from repro.engine.experiment import Experiment, ExperimentResult
from repro.power.capping import PowerCappingController
from repro.power.dvfs import DVFSPerformanceModel, ServerDVFS
from repro.power.models import CubicDVFSPowerModel
from repro.workloads import by_name

#: The three Fig. 9 metric bundles, cumulative as in the paper.
METRIC_BUNDLES = {
    "response": ("response_time",),
    "+waiting": ("response_time", "waiting_time"),
    "+capping": ("response_time", "waiting_time", "capping_level"),
}


@dataclass
class CappedClusterExperiment:
    """A wired power-capped cluster ready to run."""

    experiment: Experiment
    servers: List[Server]
    couplings: List[ServerDVFS]
    controller: PowerCappingController
    metrics: Sequence[str]
    extras: Dict[str, float] = field(default_factory=dict)

    def run(self, max_events: Optional[int] = None) -> ExperimentResult:
        """Run to convergence of every tracked metric."""
        return self.experiment.run(max_events=max_events)


def build_capped_cluster(
    n_servers: int = 10,
    workload: str = "web",
    load: float = 0.5,
    cores: int = 4,
    seed: int = 0,
    accuracy: float = 0.05,
    quantile: float = 0.95,
    metrics: Sequence[str] = ("response_time",),
    cap_fraction: float = 0.8,
    idle_power: float = 150.0,
    peak_power: float = 300.0,
    alpha: float = 0.9,
    f_min: float = 0.5,
    epoch: float = 1.0,
    warmup_samples: int = 500,
    calibration_samples: int = 3000,
    observe_server: int = 0,
    **experiment_kwargs,
) -> CappedClusterExperiment:
    """Assemble the Section-4.1 cluster.

    ``cap_fraction`` sets the cluster cap as a fraction of the aggregate
    peak power — below 1.0 the cap binds during utilization spikes and
    the controller throttles.  ``metrics`` chooses which of
    ``response_time`` / ``waiting_time`` / ``capping_level`` to track
    (the Fig. 9 bundles); latency metrics observe ``observe_server``.
    """
    if n_servers < 1:
        raise ValueError(f"need >= 1 server, got {n_servers}")
    valid = {"response_time", "waiting_time", "capping_level"}
    unknown = set(metrics) - valid
    if unknown:
        raise ValueError(f"unknown metrics: {sorted(unknown)}; valid: {sorted(valid)}")
    if not metrics:
        raise ValueError("need at least one metric")
    if not 0 <= observe_server < n_servers:
        raise ValueError(
            f"observe_server must be in [0, {n_servers}), got {observe_server}"
        )

    experiment = Experiment(
        seed=seed,
        warmup_samples=warmup_samples,
        calibration_samples=calibration_samples,
        **experiment_kwargs,
    )
    base_workload = by_name(workload).at_load(load, cores=cores)
    perf = DVFSPerformanceModel(alpha=alpha, f_min=f_min)
    servers: List[Server] = []
    couplings: List[ServerDVFS] = []
    for index in range(n_servers):
        server = Server(cores=cores, name=f"capped-{index}")
        experiment.bind(server)
        couplings.append(
            ServerDVFS(server, CubicDVFSPowerModel(idle_power, peak_power), perf)
        )
        servers.append(server)
        experiment.add_source(base_workload, target=server)

    target = servers[observe_server]
    if "response_time" in metrics:
        experiment.track_response_time(
            target, mean_accuracy=accuracy, quantiles={quantile: accuracy}
        )
    if "waiting_time" in metrics:
        # Most waiting observations are zero (queuing is infrequent), so
        # the mean criterion alone is meaningful; the tail quantile is
        # tracked with the same E as the paper's setup.
        experiment.track_waiting_time(
            target, mean_accuracy=accuracy, quantiles={quantile: accuracy}
        )
    on_capping = None
    if "capping_level" in metrics:
        # Mean criterion only: at sane cap fractions most epochs are not
        # capped, so high quantiles of the capping level can sit exactly
        # at zero where a relative-accuracy quantile target is undefined.
        experiment.track(
            "capping_level",
            mean_accuracy=accuracy,
            warmup_samples=max(50, warmup_samples // 10),
            calibration_samples=max(500, calibration_samples // 6),
        )
        on_capping = lambda watts: experiment.record("capping_level", watts)

    controller = PowerCappingController(
        couplings,
        cluster_cap=cap_fraction * peak_power * n_servers,
        epoch=epoch,
        on_capping_level=on_capping,
    )
    controller.bind(experiment.simulation)
    return CappedClusterExperiment(
        experiment=experiment,
        servers=servers,
        couplings=couplings,
        controller=controller,
        metrics=tuple(metrics),
    )
