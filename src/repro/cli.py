"""Command-line interface: ``python -m repro <command>``.

Mirrors how the original BigHouse was driven — configuration files plus
a launcher — without writing any Python:

- ``run <config.json>`` — build and run a configured experiment, print
  every metric's estimates;
- ``workloads`` — list the shipped Table-1 workload models;
- ``characterize <trace.txt>`` — distill a two-column
  ``arrival_time size`` trace into empirical distribution files (the
  Fig. 1 "offline benchmarking" path);
- ``theory mm1|mmk|mg1 ...`` — closed-form baselines for quick checks;
- ``sweep <spec.toml|spec.json>`` — run a whole parameter sweep over a
  persistent worker pool with content-addressed caching (see
  ``docs/sweeps.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _config_factory(seed, config=None, **overrides):
    """Module-level (picklable) factory for ``repro run --parallel``.

    The process backend forks one replica per slave; each rebuilds the
    experiment from the same config document under its own seed.
    """
    from repro.config import build_experiment

    return build_experiment({**(config or {}), "seed": seed}, **overrides)


def _start_remote_transport(args):
    """Bring up the agent-registration server for ``--backend remote``.

    Prints the bound address to stderr (essential with ``--listen
    host:0``, where the OS picks the port the agents must dial).
    """
    from repro.parallel.transport import RemoteTransport, parse_address

    host, port = parse_address(args.listen)
    transport = RemoteTransport(
        host=host,
        port=port,
        key=args.transport_key,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_misses=args.heartbeat_misses,
    )
    transport.start()
    print(
        f"repro: listening for agents on "
        f"{transport.address[0]}:{transport.address[1]} "
        f"(start them with 'repro agent "
        f"{transport.address[0]}:{transport.address[1]}')",
        file=sys.stderr,
    )
    return transport


def _build_supervision(args):
    """A SupervisionPolicy from --min-workers/--deadline/--on-degrade.

    Returns None when every flag is at its default, keeping the
    historical (policy-free) degradation semantics.
    """
    if (
        args.min_workers is None
        and args.deadline is None
        and args.on_degrade == "abort"
    ):
        return None
    from repro.faults import SupervisionPolicy

    return SupervisionPolicy(
        min_workers=args.min_workers if args.min_workers is not None else 1,
        deadline=args.deadline,
        on_exhausted=args.on_degrade,
    )


def _wrap_net_chaos(transport, args):
    """Wrap a started remote transport per --net-chaos, if requested."""
    if not args.net_chaos:
        return transport
    from repro.faults import NetFaultPlan
    from repro.parallel.chaos import ChaosTransport

    return ChaosTransport(transport, NetFaultPlan.load(args.net_chaos))


def _make_observability(args):
    """Build (tracer, progress) from the run command's flags."""
    tracer = None
    if args.trace:
        import time

        from repro.observability import Tracer

        # The CLI is the boundary: the host clock is injected here, so
        # records carry host_time for profiling while the engine itself
        # never reads a wall clock.
        tracer = Tracer.to_path(args.trace, clock=time.perf_counter)
    progress = None
    if args.progress is not None:
        from repro.observability import ProgressReporter

        progress = ProgressReporter(min_interval=args.progress)
    return tracer, progress


def _report_lint(findings, label: str) -> int:
    """Print model-lint findings; exit 0 clean / 1 any error-severity."""
    from repro.analysis.modellint import has_errors

    for finding in findings:
        print(
            f"{finding.location()}: {finding.severity}: "
            f"{finding.rule}: {finding.message}"
        )
    errors = sum(1 for f in findings if f.severity == "error")
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"lint {label}: {len(findings)} {noun} ({errors} error(s))")
    return 1 if has_errors(findings) else 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.config import build_experiment, load_config
    from repro.engine.report import parallel_result_to_dict, result_to_dict

    if args.lint:
        from repro.analysis.modellint import lint_config
        from repro.config import ConfigError

        try:
            config = load_config(args.config)
        except (OSError, ConfigError) as error:
            print(f"run: cannot load {args.config}: {error}",
                  file=sys.stderr)
            return 2
        findings = lint_config(
            config, path=str(args.config), engine=args.engine or None
        )
        return _report_lint(findings, str(args.config))
    if args.sanitize and args.parallel:
        print("--sanitize and --parallel are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.engine and args.engine != "event" and (
        args.parallel or args.sanitize
    ):
        print(
            "--engine auto/fastpath is single-process only "
            "(drop --parallel/--sanitize)",
            file=sys.stderr,
        )
        return 2
    if not args.parallel and (
        args.chaos or args.resume or args.checkpoint or args.respawn
        or args.net_chaos or args.min_workers is not None
        or args.deadline is not None or args.on_degrade != "abort"
    ):
        print(
            "--chaos/--respawn/--checkpoint/--resume/--net-chaos/"
            "--min-workers/--deadline/--on-degrade require --parallel N",
            file=sys.stderr,
        )
        return 2
    if args.net_chaos and args.backend != "remote":
        print(
            "--net-chaos needs the frame layer of --backend remote",
            file=sys.stderr,
        )
        return 2
    if args.backend == "remote" and not args.listen:
        print("--backend remote requires --listen HOST:PORT",
              file=sys.stderr)
        return 2
    tracer, progress = _make_observability(args)
    transport = None
    try:
        if args.parallel:
            from repro.parallel.master import ParallelSimulation

            config = load_config(args.config)
            fault_plan = None
            if args.chaos:
                from repro.faults import FaultPlan

                fault_plan = FaultPlan.load(args.chaos)
            respawn = None
            if args.respawn:
                from repro.faults import RespawnPolicy

                respawn = RespawnPolicy(
                    max_restarts_per_slave=args.max_restarts
                )
            if args.backend == "remote":
                transport = _start_remote_transport(args)
            simulation = ParallelSimulation(
                _config_factory,
                factory_kwargs={"config": config},
                n_slaves=args.parallel,
                master_seed=config.get("seed", 0),
                backend=args.backend,
                round_timeout=args.round_timeout,
                respawn=respawn,
                supervision=_build_supervision(args),
                fault_plan=fault_plan,
                checkpoint_path=args.checkpoint,
                checkpoint_interval=args.checkpoint_interval,
                transport=_wrap_net_chaos(transport, args),
                join_timeout=args.join_timeout,
            )
            if tracer is not None:
                simulation.attach_tracer(tracer)
            if progress is not None:
                simulation.attach_progress(progress)
            result = simulation.run(resume_from=args.resume)
            if args.metrics and result.telemetry is None:
                from repro.observability import ExperimentTelemetry

                result.telemetry = ExperimentTelemetry.from_parallel(
                    result, dead_slaves=result.dead_slaves
                )
            json.dump(parallel_result_to_dict(result), sys.stdout, indent=2)
            sys.stdout.write("\n")
            return 0 if result.converged else 3

        if not args.sanitize:
            experiment = build_experiment(args.config, engine=args.engine)
            if tracer is not None:
                experiment.attach_tracer(tracer)
            if progress is not None:
                experiment.attach_progress(progress)
            experiment.collect_telemetry = args.metrics
            result = experiment.run(max_events=args.max_events)
            json.dump(result_to_dict(result), sys.stdout, indent=2)
            sys.stdout.write("\n")
            return 0 if result.converged else 3

        # Sanitized run: hash the event stream, verify every prefetch
        # block per-draw, then replay the identical config with
        # prefetching disabled and require a bit-identical event stream
        # (see docs/analysis.md).  Exit 4 on any determinism mismatch.
        from repro.analysis.sanitizer import experiment_digest

        config = load_config(args.config)
        experiment = build_experiment(config, sanitize=True)
        if tracer is not None:
            experiment.attach_tracer(tracer)
        if progress is not None:
            experiment.attach_progress(progress)
        experiment.collect_telemetry = args.metrics
        result = experiment.run(max_events=args.max_events)
        twin = experiment_digest(
            lambda seed, **kwargs: build_experiment(
                {**config, "seed": seed}, **kwargs
            ),
            seed=config.get("seed", 0),
            factory_kwargs={"prefetch": False},
            max_events=args.max_events,
        )
        matched = (
            result.sanitizer.event_digest == twin.event_digest
            and result.sanitizer.events_hashed == twin.events_hashed
        )
        payload = result_to_dict(result)
        payload["sanitizer"]["prefetch_off"] = twin.to_dict()
        payload["sanitizer"]["prefetch_determinism"] = (
            "ok" if matched else "FAIL"
        )
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        if not matched:
            print(
                "sanitizer: prefetch-on and prefetch-off event streams "
                "diverge; the run is not reproducible",
                file=sys.stderr,
            )
            return 4
        return 0 if result.converged else 3
    finally:
        if transport is not None:
            transport.close()
        if tracer is not None:
            tracer.close()


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import TABLE1_SPECS

    print(f"{'name':<8} {'ia mean':>10} {'ia Cv':>6} {'svc mean':>10} "
          f"{'svc Cv':>7}  description")
    for spec in TABLE1_SPECS.values():
        print(
            f"{spec.name:<8} {spec.interarrival_mean:>10.6g} "
            f"{spec.interarrival_cv:>6.3g} {spec.service_mean:>10.6g} "
            f"{spec.service_cv:>7.3g}  {spec.description}"
        )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.workloads import workload_from_trace

    trace = []
    path = Path(args.trace)
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                print(f"{path}:{line_number}: expected 'arrival size'",
                      file=sys.stderr)
                return 2
            trace.append((float(parts[0]), float(parts[1])))
    workload = workload_from_trace(trace, name=path.stem)
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    arr_path = out_dir / f"{path.stem}.arr"
    svc_path = out_dir / f"{path.stem}.svc"
    workload.interarrival.save(arr_path)
    workload.service.save(svc_path)
    print(f"inter-arrival: mean={workload.interarrival.mean():.6g}s "
          f"cv={workload.interarrival.cv():.3g} -> {arr_path}")
    print(f"service:       mean={workload.service.mean():.6g}s "
          f"cv={workload.service.cv():.3g} -> {svc_path}")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from repro import theory
    from repro.distributions import fit_mean_cv

    if args.model == "mm1":
        print(f"mean_response  {theory.mm1_mean_response(args.lam, args.mu):.6g}")
        print(f"mean_waiting   {theory.mm1_mean_waiting(args.lam, args.mu):.6g}")
        print(f"p95_response   "
              f"{theory.mm1_quantile_response(args.lam, args.mu, 0.95):.6g}")
    elif args.model == "mmk":
        print(f"erlang_c       {theory.erlang_c(args.lam, args.mu, args.k):.6g}")
        print(f"mean_waiting   "
              f"{theory.mmk_mean_waiting(args.lam, args.mu, args.k):.6g}")
        print(f"mean_response  "
              f"{theory.mmk_mean_response(args.lam, args.mu, args.k):.6g}")
    else:  # mg1
        service = fit_mean_cv(1.0 / args.mu, args.cv)
        print(f"mean_waiting   "
              f"{theory.mg1_mean_waiting(args.lam, service):.6g}")
        print(f"mean_response  "
              f"{theory.mg1_mean_response(args.lam, service):.6g}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepRunner, SweepSpec

    try:
        spec = SweepSpec.load(args.spec)
    except Exception as error:  # surface as a CLI error, not a traceback
        print(f"sweep: cannot load {args.spec}: {error}", file=sys.stderr)
        return 2
    if args.lint:
        from repro.analysis.modellint import lint_spec

        findings = lint_spec(spec, path=str(args.spec))
        return _report_lint(findings, str(args.spec))
    fault_plan = None
    if args.chaos:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.load(args.chaos)
    respawn = None
    if args.respawn:
        from repro.faults import RespawnPolicy

        respawn = RespawnPolicy(max_restarts_per_slave=args.max_restarts)
    if args.net_chaos and args.backend != "remote":
        print(
            "--net-chaos needs the frame layer of --backend remote",
            file=sys.stderr,
        )
        return 2
    if args.backend == "remote" and not args.listen:
        print("--backend remote requires --listen HOST:PORT",
              file=sys.stderr)
        return 2
    tracer, progress = _make_observability(args)

    def on_point(point):
        if progress is not None:
            status = "cached" if point.cached else (
                "ok" if point.converged else "UNCONVERGED"
            )
            print(
                f"sweep {spec.name}: point {point.name} [{status}] "
                f"digest={point.digest}",
                file=sys.stderr,
            )

    transport = None
    if args.backend == "remote":
        transport = _start_remote_transport(args)
    runner = SweepRunner(
        spec,
        backend=args.backend,
        jobs=args.jobs,
        cache=args.cache,
        force=args.force,
        respawn=respawn,
        fault_plan=fault_plan,
        supervision=_build_supervision(args),
        job_timeout=args.point_timeout,
        transport=_wrap_net_chaos(transport, args),
        join_timeout=args.join_timeout,
        tracer=tracer,
        on_point=on_point,
    )
    try:
        result = runner.run()
    finally:
        if transport is not None:
            transport.close()
        if tracer is not None:
            tracer.close()
    document = result.to_dict()
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(
            f"sweep {spec.name}: {len(result.points)} points "
            f"({result.cache_hits} cached, {result.computed} computed) "
            f"in {result.wall_time:.2f}s -> {args.out}"
        )
    else:
        json.dump(document, sys.stdout, indent=2)
        sys.stdout.write("\n")
    return 0 if result.converged else 3


def _cmd_agent(args: argparse.Namespace) -> int:
    from repro.parallel.agent import main as agent_main

    argv = [args.address, "--context", args.context,
            "--reconnect-delay", str(args.reconnect_delay),
            "--reconnect-cap", str(args.reconnect_cap),
            "--backoff-seed", str(args.backoff_seed)]
    if args.slots is not None:
        argv += ["--slots", str(args.slots)]
    if args.transport_key:
        argv += ["--transport-key", args.transport_key]
    if args.max_redial is not None:
        argv += ["--max-redial", str(args.max_redial)]
    if args.idle_exit is not None:
        argv += ["--idle-exit", str(args.idle_exit)]
    return agent_main(argv)


def _add_robustness_args(parser, deadline_help: str) -> None:
    """Flags shared by run/sweep: net chaos, liveness, fleet policy."""
    parser.add_argument(
        "--net-chaos", metavar="PLAN", default=None,
        help=(
            "inject a seeded network fault plan (delay/drop/duplicate/"
            "corrupt/partition/agent_crash) at the frame boundary; a "
            "JSON path or inline JSON (--backend remote only, see "
            "docs/robustness.md)"
        ),
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, metavar="SECONDS",
        default=None,
        help=(
            "ping remote agents this often so a half-open link is "
            "declared dead after interval x misses seconds instead of "
            "the round timeout (--backend remote; default: off)"
        ),
    )
    parser.add_argument(
        "--heartbeat-misses", type=int, metavar="N", default=3,
        help=(
            "missed heartbeats before a silent link is closed with "
            "cause 'liveness timeout' (default: 3)"
        ),
    )
    parser.add_argument(
        "--min-workers", type=int, metavar="N", default=None,
        help=(
            "fleet floor: when fewer workers can still contribute, "
            "abort with a typed cause (default) or press on with "
            "--on-degrade continue"
        ),
    )
    parser.add_argument(
        "--deadline", type=float, metavar="SECONDS", default=None,
        help=deadline_help,
    )
    parser.add_argument(
        "--on-degrade", choices=("abort", "continue"), default="abort",
        help=(
            "what a fleet below --min-workers does: abort with a "
            "machine-readable cause (default) or continue with the "
            "survivors and flag the result degraded"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BigHouse-style stochastic queuing simulation",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run a JSON-configured experiment")
    run.add_argument("config", help="path to the experiment JSON")
    run.add_argument("--max-events", type=int, default=None,
                     help="safety cap on simulated events")
    run.add_argument(
        "--engine",
        choices=("event", "auto", "fastpath"),
        default=None,
        help=(
            "simulation engine: 'event' (default) is the discrete-event "
            "loop, 'fastpath' forces the vectorized Lindley engine "
            "(errors if the model does not qualify), 'auto' picks the "
            "fast path when eligible and falls back otherwise"
        ),
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run with the determinism sanitizer: verify prefetch blocks "
            "per-draw, hash the event stream, and A/B it against a "
            "prefetch-off twin (exit 4 on mismatch)"
        ),
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a structured JSON-lines trace (engine counters, "
            "statistic phase transitions, parallel master records) to "
            "PATH; validate with 'python -m repro.observability PATH'"
        ),
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="attach an end-of-run telemetry digest to the JSON output",
    )
    run.add_argument(
        "--progress",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "report per-metric convergence progress to stderr at most "
            "every SECONDS seconds"
        ),
    )
    run.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        default=None,
        help="distribute measurement over N slave replicas (Fig. 3)",
    )
    run.add_argument(
        "--backend",
        choices=("serial", "process", "remote"),
        default="serial",
        help=(
            "slave backend for --parallel (default: serial); remote "
            "distributes slaves over 'repro agent' hosts and needs "
            "--listen"
        ),
    )
    run.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help=(
            "agent-registration address for --backend remote (port 0 "
            "picks a free port, printed to stderr)"
        ),
    )
    run.add_argument(
        "--transport-key", metavar="KEY", default=None,
        help="shared fleet key agents must present (--backend remote)",
    )
    run.add_argument(
        "--join-timeout", type=float, metavar="SECONDS", default=30.0,
        help=(
            "how long to wait for an agent slot when spawning or "
            "respawning a remote slave (default: 30)"
        ),
    )
    run.add_argument(
        "--chaos",
        metavar="PLAN",
        default=None,
        help=(
            "inject a fault plan into a --parallel run: a JSON file "
            "path or inline JSON (see docs/robustness.md)"
        ),
    )
    run.add_argument(
        "--respawn",
        action="store_true",
        help=(
            "replace dead slaves (generation-aware seeds, exponential "
            "backoff) instead of degrading the run"
        ),
    )
    run.add_argument(
        "--max-restarts",
        type=int,
        metavar="N",
        default=2,
        help="per-slave respawn budget for --respawn (default: 2)",
    )
    run.add_argument(
        "--round-timeout",
        type=float,
        metavar="SECONDS",
        default=600.0,
        help=(
            "per-round report deadline for the process backend; a "
            "silent slave is declared dead instead of stalling the "
            "master (default: 600)"
        ),
    )
    run.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write a resumable snapshot to PATH every checkpoint interval",
    )
    run.add_argument(
        "--checkpoint-interval",
        type=int,
        metavar="ROUNDS",
        default=1,
        help="rounds between checkpoints (default: 1)",
    )
    run.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help=(
            "resume a --parallel run from a checkpoint written by "
            "--checkpoint; the resumed run reproduces the uninterrupted "
            "result bit-for-bit"
        ),
    )
    run.add_argument(
        "--lint",
        action="store_true",
        help=(
            "model-lint the config instead of running it: offered-load "
            "stability, fastpath qualification forecast (exit 1 on "
            "errors, 0 clean)"
        ),
    )
    _add_robustness_args(
        run,
        deadline_help=(
            "wall-clock budget for the measurement phase; past it the "
            "run aborts with a typed cause (default) or, with "
            "--on-degrade continue, returns the merged-so-far result "
            "flagged degraded"
        ),
    )
    run.set_defaults(handler=_cmd_run)

    workloads = commands.add_parser(
        "workloads", help="list the shipped Table-1 workload models"
    )
    workloads.set_defaults(handler=_cmd_workloads)

    characterize = commands.add_parser(
        "characterize",
        help="distill an 'arrival size' trace into .arr/.svc distributions",
    )
    characterize.add_argument("trace", help="two-column trace file")
    characterize.add_argument("--output-dir", default=".",
                              help="where to write the distribution files")
    characterize.set_defaults(handler=_cmd_characterize)

    theory = commands.add_parser(
        "theory", help="closed-form queueing baselines"
    )
    theory.add_argument("model", choices=("mm1", "mmk", "mg1"))
    theory.add_argument("--lam", type=float, required=True,
                        help="arrival rate (tasks/s)")
    theory.add_argument("--mu", type=float, required=True,
                        help="per-server service rate (tasks/s)")
    theory.add_argument("--k", type=int, default=1, help="servers (mmk)")
    theory.add_argument("--cv", type=float, default=1.0,
                        help="service Cv (mg1)")
    theory.set_defaults(handler=_cmd_theory)

    sweep = commands.add_parser(
        "sweep",
        help="run a parameter sweep over a persistent worker pool",
    )
    sweep.add_argument("spec", help="sweep spec (.toml or .json)")
    sweep.add_argument(
        "--jobs", type=int, metavar="N", default=None,
        help="persistent pool width (default: up to 4 workers)",
    )
    sweep.add_argument(
        "--cache", metavar="DIR", default=None,
        help=(
            "content-addressed point cache; re-runs serve unchanged "
            "points from here and recompute only edited ones"
        ),
    )
    sweep.add_argument(
        "--force", action="store_true",
        help="recompute every point even on a cache hit",
    )
    sweep.add_argument(
        "--backend",
        choices=("pool", "spawn", "serial", "remote"),
        default="pool",
        help=(
            "pool = persistent workers (default); spawn = fresh process "
            "per point; serial = in-process; remote = persistent "
            "workers on 'repro agent' hosts (needs --listen)"
        ),
    )
    sweep.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help=(
            "agent-registration address for --backend remote (port 0 "
            "picks a free port, printed to stderr)"
        ),
    )
    sweep.add_argument(
        "--transport-key", metavar="KEY", default=None,
        help="shared fleet key agents must present (--backend remote)",
    )
    sweep.add_argument(
        "--join-timeout", type=float, metavar="SECONDS", default=30.0,
        help=(
            "how long an empty remote fleet waits for an agent to "
            "(re)join before the sweep gives up (default: 30)"
        ),
    )
    sweep.add_argument(
        "--chaos", metavar="PLAN", default=None,
        help="inject a fault plan into the pool workers (JSON path or inline)",
    )
    sweep.add_argument(
        "--respawn", action="store_true",
        help="replace dead pool workers instead of degrading the pool",
    )
    sweep.add_argument(
        "--max-restarts", type=int, metavar="N", default=2,
        help="per-worker respawn budget for --respawn (default: 2)",
    )
    sweep.add_argument(
        "--point-timeout", type=float, metavar="SECONDS", default=600.0,
        help=(
            "per-point deadline; a silent worker is declared dead and "
            "its point requeued (default: 600)"
        ),
    )
    sweep.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a JSON-lines trace (per-point events, pool records)",
    )
    sweep.add_argument(
        "--progress", type=float, metavar="SECONDS", default=None,
        help="report per-point completion to stderr",
    )
    sweep.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the sweep result document to PATH instead of stdout",
    )
    sweep.add_argument(
        "--lint",
        action="store_true",
        help=(
            "model-lint the spec instead of running it: unstable "
            "(rho >= 1) grid points, seed collisions, digest-unstable "
            "constructs, fastpath forecasts (exit 1 on errors, 0 clean)"
        ),
    )
    _add_robustness_args(
        sweep,
        deadline_help=(
            "wall-clock budget for the whole sweep; past it the sweep "
            "always aborts with a typed cause (a partial sweep is not "
            "a meaningful result)"
        ),
    )
    sweep.set_defaults(handler=_cmd_sweep)

    agent = commands.add_parser(
        "agent",
        help="host remote workers for a '--backend remote' master",
    )
    agent.add_argument("address", help="master transport address, HOST:PORT")
    agent.add_argument(
        "--slots", type=int, metavar="N", default=None,
        help="worker slots to offer (default: CPU count)",
    )
    agent.add_argument(
        "--transport-key", metavar="KEY", default=None,
        help="shared fleet key (must match the master's)",
    )
    agent.add_argument(
        "--context", default="fork",
        help="multiprocessing start method for workers (default: fork)",
    )
    agent.add_argument(
        "--reconnect-delay", type=float, metavar="SECONDS", default=0.2,
        help="base seconds of the re-dial backoff (default: 0.2)",
    )
    agent.add_argument(
        "--reconnect-cap", type=float, metavar="SECONDS", default=30.0,
        help="ceiling of the exponential re-dial backoff (default: 30)",
    )
    agent.add_argument(
        "--backoff-seed", type=int, metavar="SEED", default=0,
        help=(
            "seed for the deterministic re-dial jitter (give each "
            "agent its own so probes spread instead of dialing in "
            "lockstep)"
        ),
    )
    agent.add_argument(
        "--max-redial", type=int, metavar="N", default=None,
        help=(
            "consecutive failed dials a slot tolerates before giving "
            "up (default: retry forever)"
        ),
    )
    agent.add_argument(
        "--idle-exit", type=float, metavar="SECONDS", default=None,
        help=(
            "exit after this many seconds without hosting a worker "
            "(useful in CI; default: run forever)"
        ),
    )
    agent.set_defaults(handler=_cmd_agent)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
