"""Project-wide symbol table for the whole-program analysis passes.

The per-file rules in :mod:`repro.analysis.rules` see one module at a
time, which is exactly the blind spot the bug classes this package
hunts live in: an unseeded generator constructed in one module and
*consumed* in another, a worker entry point in ``parallel/pool.py``
reaching a module-level dict defined three imports away.  This module
parses every file once and builds the cross-module index the
:mod:`~repro.analysis.callgraph`, :mod:`~repro.analysis.dataflow`, and
:mod:`~repro.analysis.races` passes resolve names against:

- every module's dotted name (derived by walking up ``__init__.py``
  parents, so both ``src/repro`` and fixture packages index naturally);
- every function and method, keyed by its global qualified name
  ``module.dotted.Class.method``;
- every import binding (``alias -> fully.dotted.target``), including
  relative imports;
- every module-level binding of a *mutable* value (dict/list/set/deque
  literals and constructor calls) — the shared-state candidates the
  race detector checks against worker-reachable code.

Everything is stdlib-``ast`` only: like the per-file linter, the
whole-program pass must run in CI before any simulation dependency is
installed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.linter import (
    LintError,
    iter_python_files,
    relative_module_path,
)

#: Constructor names whose module-level result is mutable shared state.
MUTABLE_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "defaultdict",
        "deque",
        "OrderedDict",
        "Counter",
    }
)


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the package layout on disk.

    Walks parent directories while they carry an ``__init__.py``, so
    ``src/repro/engine/simulation.py`` maps to
    ``repro.engine.simulation`` and a fixture package maps from its own
    root.  A free-standing file maps to its stem.
    """
    path = Path(path).resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method definition anywhere in the project."""

    name: str  # global qualified name: "pkg.mod.func" / "pkg.mod.Cls.meth"
    module: str  # dotted module name
    qualname: str  # module-local: "func" or "Cls.meth"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    params: List[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class definition: its methods and resolvable base names."""

    name: str  # global qualified name
    module: str
    local_name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # as written (dotted)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class MutableGlobal:
    """A module-level name bound to a mutable value."""

    module: str
    name: str
    node: ast.AST  # the binding statement
    kind: str  # "dict" / "list" / "set" / constructor name


@dataclass
class ModuleInfo:
    """Everything the cross-module passes need about one parsed module."""

    name: str  # dotted module name
    path: str  # display path (as given by the caller)
    rel: str  # package-relative path used for scoping
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: local alias -> fully dotted target ("np" -> "numpy",
    #: "derive_seed" -> "repro.faults.recovery.derive_seed").
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    mutable_globals: Dict[str, MutableGlobal] = field(default_factory=dict)
    #: every module-level assigned name (mutable or not), for shadowing.
    global_names: set = field(default_factory=set)


def _mutable_kind(value: ast.AST) -> Optional[str]:
    """The mutability class of a bound value, or None if immutable."""
    if isinstance(value, ast.Dict) or isinstance(value, ast.DictComp):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in MUTABLE_CONSTRUCTORS:
            return name
    return None


def _resolve_relative(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted form of a (possibly relative) ``from`` import."""
    if not node.level:
        return node.module
    parts = module.split(".")
    # level=1 from inside pkg.mod means pkg; __init__ modules already
    # dropped their suffix in module_name_for, so the same rule holds.
    if node.level > len(parts):
        return node.module
    base = parts[: len(parts) - node.level]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def parse_module(
    source: str, path: str, rel: str, name: Optional[str] = None
) -> ModuleInfo:
    """Parse one module's source into its :class:`ModuleInfo`."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        raise LintError(
            f"{path}:{error.lineno}: syntax error: {error.msg}"
        ) from error
    module = ModuleInfo(
        name=name or module_name_for(Path(path)),
        path=path,
        rel=rel,
        tree=tree,
        lines=source.splitlines(),
    )
    _index_imports(module)
    _index_definitions(module)
    _index_globals(module)
    return module


def _index_imports(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(
                    "."
                )[0]
                module.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            origin = _resolve_relative(module.name, node)
            if origin is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.imports[bound] = f"{origin}.{alias.name}"


def _index_definitions(module: ModuleInfo) -> None:
    def add_function(node, class_info: Optional[ClassInfo]) -> None:
        qual = (
            f"{class_info.local_name}.{node.name}"
            if class_info is not None
            else node.name
        )
        info = FunctionInfo(
            name=f"{module.name}.{qual}",
            module=module.name,
            qualname=qual,
            node=node,
            class_name=class_info.local_name if class_info else None,
            params=[arg.arg for arg in node.args.args],
        )
        module.functions[qual] = info
        if class_info is not None:
            class_info.methods[node.name] = info

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, None)
        elif isinstance(node, ast.ClassDef):
            info = ClassInfo(
                name=f"{module.name}.{node.name}",
                module=module.name,
                local_name=node.name,
                node=node,
                bases=[
                    _base_name(base)
                    for base in node.bases
                    if _base_name(base) is not None
                ],
            )
            module.classes[node.name] = info
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(stmt, info)


def _base_name(node: ast.AST) -> Optional[str]:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _index_globals(module: ModuleInfo) -> None:
    for node in module.tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            module.global_names.add(target.id)
            kind = _mutable_kind(value)
            if kind is not None:
                module.mutable_globals[target.id] = MutableGlobal(
                    module=module.name,
                    name=target.id,
                    node=node,
                    kind=kind,
                )


class ProjectIndex:
    """The whole-program symbol table: every module, keyed three ways."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # dotted name -> info
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}  # global name -> info

    @classmethod
    def build(
        cls,
        paths: Iterable,
        project_root: Optional[Path] = None,
    ) -> "ProjectIndex":
        """Parse and index every ``*.py`` file under ``paths``.

        ``project_root``, when given, overrides the package-relative
        path computation: ``rel`` becomes the path relative to it.
        Fixture corpora use this so a tree under ``tests/fixtures``
        indexes as library code rather than test code.
        """
        index = cls()
        seen: set = set()
        for path in iter_python_files(paths):
            resolved = Path(path).resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            if project_root is not None:
                rel = resolved.relative_to(
                    Path(project_root).resolve()
                ).as_posix()
            else:
                rel = relative_module_path(Path(path))
            try:
                source = Path(path).read_text()
            except OSError as error:
                raise LintError(f"cannot read {path}: {error}") from error
            index.add(parse_module(source, str(path), rel))
        return index

    def add(self, module: ModuleInfo) -> None:
        self.modules[module.name] = module
        self.by_path[module.path] = module
        for info in module.functions.values():
            self.functions[info.name] = info

    def resolve(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Resolve a dotted name as written in ``module`` to a global name.

        Returns the fully qualified target (a key of :attr:`functions`,
        a module name, or a ``module.attr`` string), or None when the
        head of the chain is not a known local/import binding.
        """
        head, _, tail = dotted.partition(".")
        if head in module.functions and not tail:
            return module.functions[head].name
        if head in module.classes:
            target = module.classes[head].name
            return f"{target}.{tail}" if tail else target
        if head in module.imports:
            target = module.imports[head]
            return f"{target}.{tail}" if tail else target
        return None

    def function_for(self, global_name: str) -> Optional[FunctionInfo]:
        """Look up a function by global name, following import aliases.

        ``repro.faults.derive_seed`` resolves through the re-exporting
        package ``__init__`` to ``repro.faults.recovery.derive_seed``.
        """
        seen: set = set()
        name: Optional[str] = global_name
        while name is not None and name not in seen:
            seen.add(name)
            if name in self.functions:
                return self.functions[name]
            module_part, _, attr = name.rpartition(".")
            module = self.modules.get(module_part)
            if module is None or not attr:
                return None
            if attr in module.functions:
                return module.functions[attr]
            name = (
                f"{module.imports[attr]}" if attr in module.imports else None
            )
        return None

    def class_for(self, global_name: str) -> Optional[ClassInfo]:
        module_part, _, attr = global_name.rpartition(".")
        module = self.modules.get(module_part)
        if module is not None and attr in module.classes:
            return module.classes[attr]
        return None

    def mro_methods(
        self, module: ModuleInfo, class_name: str
    ) -> Dict[str, FunctionInfo]:
        """Methods visible on a class, following project-known bases."""
        methods: Dict[str, FunctionInfo] = {}
        stack: List[Tuple[ModuleInfo, str]] = [(module, class_name)]
        visited: set = set()
        while stack:
            mod, name = stack.pop()
            info = mod.classes.get(name)
            if info is None or info.name in visited:
                continue
            visited.add(info.name)
            for method_name, fn in info.methods.items():
                methods.setdefault(method_name, fn)
            for base in info.bases:
                resolved = self.resolve(mod, base)
                if resolved is None:
                    continue
                base_info = self.class_for(resolved)
                if base_info is not None:
                    stack.append(
                        (self.modules[base_info.module], base_info.local_name)
                    )
        return methods
