"""The simlint rule registry.

Each rule is a tiny object: an ``id`` (the name used in
``# simlint: disable=…`` suppressions and ``--select``/``--disable``),
a one-line ``summary`` shown by ``--list-rules``, an ``applies(ctx)``
path filter, and a ``check(ctx)`` generator yielding findings.

Adding a rule is three steps (see docs/analysis.md for a worked
example):

1. subclass :class:`Rule`, set ``id`` and ``summary``, implement
   ``check`` (and ``applies`` if the rule is path-scoped);
2. decorate the class with :func:`register_rule`;
3. add seeded positive/negative cases to ``tests/test_simlint.py``.

The rules below encode the determinism invariants the simulator's
statistics rest on — see each rule's docstring for the failure mode it
prevents.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.linter import Finding, ModuleContext

#: Registry mapping rule id -> rule instance, in registration order.
RULES: Dict[str, "Rule"] = {}


def register_rule(cls):
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} must define a non-empty id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


class Rule:
    """Base class for simlint rules."""

    id: str = ""
    summary: str = ""

    def applies(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on the module at ``ctx.rel``."""
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@register_rule
class GlobalRngRule(Rule):
    """No global RNG: all randomness must flow through spawned Generators.

    ``import random`` and module-level ``np.random.*`` calls (including
    bare ``np.random.default_rng()``) create random streams outside the
    experiment's :meth:`Simulation.spawn_rng` seed plumbing, so adding a
    component silently perturbs every other component's draws and runs
    stop being reproducible from the experiment seed.  The sanctioned
    constructors live in ``engine/simulation.py`` (the whitelist);
    everything else must accept a ``numpy.random.Generator``.

    Scope: library code only — test modules legitimately construct
    fixed-seed generators to drive units under test.  Re-wrapping an
    existing bit generator (``np.random.Generator(bit_gen)``) is allowed
    everywhere: it introduces no new entropy source.
    """

    id = "global-rng"
    summary = (
        "no `import random` / module-level np.random.* calls outside the "
        "seed-plumbing whitelist (engine/simulation.py)"
    )

    #: Files allowed to construct generators from raw seeds.
    whitelist = ("engine/simulation.py",)

    #: np.random attributes that are not entropy sources.
    allowed_calls = ("Generator",)

    def applies(self, ctx: ModuleContext) -> bool:
        return (
            not ctx.rel.startswith("tests/")
            and ctx.rel not in self.whitelist
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield ctx.finding(
                            self.id,
                            node,
                            "stdlib `random` is a hidden global stream; "
                            "use the experiment's spawned "
                            "numpy.random.Generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.finding(
                        self.id,
                        node,
                        "stdlib `random` is a hidden global stream; "
                        "use the experiment's spawned "
                        "numpy.random.Generator",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if dotted.startswith(prefix):
                        attr = dotted[len(prefix):]
                        if attr.split(".")[0] in self.allowed_calls:
                            break
                        yield ctx.finding(
                            self.id,
                            node,
                            f"`{dotted}` constructs an ad-hoc random "
                            "stream; thread a seeded Generator (or "
                            "repro.engine.simulation.seeded_rng) instead",
                        )
                        break


@register_rule
class WallClockRule(Rule):
    """No wall-clock reads inside simulation hot paths.

    Inside ``engine/`` and ``datacenter/`` the only clock is
    ``Simulation.now``; a ``time.time()`` or ``datetime.now()`` read
    makes behaviour depend on host speed and breaks run-to-run
    reproducibility.  ``time.perf_counter`` stays legal: it is used to
    *measure* a run's wall time, never to drive simulated behaviour.
    """

    id = "wall-clock"
    summary = (
        "no wall-clock reads (time.time / datetime.now) inside engine/ "
        "or datacenter/"
    )

    banned = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
            "date.today",
        }
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.rel.startswith(("engine/", "datacenter/"))

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in self.banned:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"`{dotted}()` reads the wall clock in a "
                        "simulation hot path; simulated time must come "
                        "from Simulation.now",
                    )


@register_rule
class PrefetchContractRule(Rule):
    """Distribution subclasses overriding ``sample_many`` must be explicit.

    :class:`~repro.distributions.prefetch.PrefetchSampler` consults
    ``prefetch_safe`` to decide whether block draws may replace per-draw
    sampling.  A subclass that overrides ``sample_many`` but silently
    inherits ``prefetch_safe = True`` is asserting bit-identical
    generator consumption without anyone having thought about it — the
    exact bug class that silently changes seeded runs.  Such classes
    must (a) define both ``sample`` and ``sample_many`` and (b) declare
    ``prefetch_safe`` explicitly (class attribute or property), with a
    comment saying why the vectorized path is (or is not) draw-order
    identical.
    """

    id = "prefetch-contract"
    summary = (
        "Distribution subclasses overriding sample_many must define "
        "sample and declare prefetch_safe explicitly"
    )

    #: Class names treated as distribution roots when used as a base.
    known_bases = frozenset(
        {
            "Distribution",
            "Exponential",
            "Deterministic",
            "Uniform",
            "Gamma",
            "Erlang",
            "LogNormal",
            "Weibull",
            "BoundedPareto",
            "Pareto",
            "HyperExponential",
            "EmpiricalDistribution",
            "Scaled",
            "Shifted",
            "Truncated",
            "Mixture",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        classes = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        ]
        # Distribution-ness propagates through in-module inheritance:
        # iterate until the recognized set stops growing.
        recognized: Set[str] = set()
        grew = True
        while grew:
            grew = False
            for cls in classes:
                if cls.name in recognized:
                    continue
                base_names = {
                    dotted_name(base) for base in cls.bases
                } | {
                    base.id
                    for base in cls.bases
                    if isinstance(base, ast.Name)
                }
                if base_names & (self.known_bases | recognized):
                    recognized.add(cls.name)
                    grew = True
        for cls in classes:
            if cls.name not in recognized:
                continue
            methods = {
                stmt.name
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "sample_many" not in methods:
                continue
            declares = "prefetch_safe" in methods or any(
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(target, ast.Name)
                    and target.id == "prefetch_safe"
                    for target in stmt.targets
                )
                or (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "prefetch_safe"
                )
                for stmt in cls.body
            )
            if "sample" not in methods:
                yield ctx.finding(
                    self.id,
                    cls,
                    f"{cls.name} overrides sample_many without defining "
                    "sample; both halves of the draw contract are "
                    "required",
                )
            if not declares:
                yield ctx.finding(
                    self.id,
                    cls,
                    f"{cls.name} overrides sample_many but inherits "
                    "prefetch_safe implicitly; declare it explicitly "
                    "with a one-line why",
                )


@register_rule
class EventMutationRule(Rule):
    """Event records may only be mutated by the engine.

    An event record is a five-slot list ``[time, seq, callback, label,
    state]`` whose lifecycle (PENDING → CANCELLED/FIRED) is owned by
    ``engine/events.py``; the inlined event loop in
    ``engine/simulation.py`` is the one sanctioned fast path.  Any other
    code flipping record slots corrupts heap invariants (lazy-deletion
    accounting, cancellation safety) in ways that only surface as
    wrong statistics much later.
    """

    id = "event-mutation"
    summary = (
        "no mutation of event-record slots (EV_* / PENDING / CANCELLED "
        "/ FIRED) outside engine/events.py"
    )

    #: The engine files that own the record layout.
    whitelist = ("engine/events.py", "engine/simulation.py")

    state_names = frozenset({"PENDING", "CANCELLED", "FIRED"})

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.rel not in self.whitelist

    def _is_event_subscript(self, target: ast.AST) -> bool:
        if not isinstance(target, ast.Subscript):
            return False
        index = target.slice
        return isinstance(index, ast.Name) and index.id.startswith("EV_")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                hits = any(
                    self._is_event_subscript(target)
                    for target in node.targets
                )
                value_is_state = (
                    isinstance(node.value, ast.Name)
                    and node.value.id in self.state_names
                    and any(
                        isinstance(target, ast.Subscript)
                        for target in node.targets
                    )
                )
                if hits or value_is_state:
                    yield ctx.finding(
                        self.id,
                        node,
                        "event records may only be mutated inside "
                        "engine/events.py (use EventQueue.cancel / "
                        "requeue)",
                    )
            elif isinstance(node, ast.AugAssign):
                if self._is_event_subscript(node.target):
                    yield ctx.finding(
                        self.id,
                        node,
                        "event records may only be mutated inside "
                        "engine/events.py (use EventQueue.cancel / "
                        "requeue)",
                    )


@register_rule
class FloatTimeEqRule(Rule):
    """No float ``==`` on simulated-time expressions.

    Simulated timestamps are accumulated floats; exact equality between
    two computed times is true only by accident and silently stops
    being true when draw order, prefetching, or arithmetic
    associativity changes.  Compare with a tolerance
    (``pytest.approx`` / ``math.isclose``) or restructure the logic.
    ``== pytest.approx(...)`` is recognized and allowed.
    """

    id = "float-time-eq"
    summary = (
        "no float == / != on simulated-time expressions (now, "
        "arrival_time, start_time, finish_time, sim_time)"
    )

    time_terms = frozenset(
        {"now", "arrival_time", "start_time", "finish_time", "sim_time"}
    )

    def _time_like(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in self.time_terms
        if isinstance(node, ast.Name):
            return node.id in self.time_terms
        return False

    def _tolerant(self, node: ast.AST) -> bool:
        """Comparand forms that make exact equality acceptable."""
        if isinstance(node, ast.Constant) and node.value is None:
            return True
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted and dotted.split(".")[-1] == "approx":
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                lhs, rhs = operands[index], operands[index + 1]
                pair = (lhs, rhs)
                if not any(self._time_like(side) for side in pair):
                    continue
                if any(self._tolerant(side) for side in pair):
                    continue
                yield ctx.finding(
                    self.id,
                    node,
                    "float equality on a simulated-time expression; "
                    "compare with a tolerance (pytest.approx / "
                    "math.isclose) or restructure",
                )


@register_rule
class TraceInHotLoopRule(Rule):
    """Tracer calls in hot loops must be guarded.

    The observability contract is "zero cost when disabled": components
    hold ``tracer = None`` and the event loop folds its emit threshold
    to ``+inf``, so an untraced run pays one comparison per event.  A
    tracer call placed *unguarded* inside a lexical loop in the
    simulation layers (``engine/``, ``datacenter/``, ``core/``) breaks
    that contract twice over — it either crashes on the None default or
    pays attribute-lookup + call overhead per iteration even when
    tracing is off.  Every in-loop emission must sit under an ``if``
    whose test mentions the tracer (``if tracer is not None:``,
    ``if self._tracer ...:``) or its ``enabled`` flag.

    The parallel master and the CLI are boundary layers and exempt:
    their loops run once per merge round, not once per simulated event.
    """

    id = "trace-in-hot-loop"
    summary = (
        "tracer calls inside engine/ datacenter/ core/ loops must be "
        "guarded by a tracer-None/.enabled check"
    )

    #: Variable/attribute names treated as tracer handles.
    tracer_names = frozenset({"tracer", "_tracer"})

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.rel.startswith(("engine/", "datacenter/", "core/"))

    def _is_tracer_call(self, node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        dotted = dotted_name(func.value)
        if dotted is None:
            return False
        return dotted.split(".")[-1] in self.tracer_names

    def _mentions_tracer(self, test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Name) and sub.id in self.tracer_names:
                return True
            if isinstance(sub, ast.Attribute) and (
                sub.attr in self.tracer_names or sub.attr == "enabled"
            ):
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: list = []

        def scan_expr(node: ast.AST, in_loop: bool, guarded: bool) -> None:
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and self._is_tracer_call(sub)
                    and in_loop
                    and not guarded
                ):
                    findings.append(
                        ctx.finding(
                            self.id,
                            sub,
                            "unguarded tracer call inside a loop in a "
                            "simulation layer; wrap it in `if <tracer> "
                            "is not None:` (zero-cost-when-disabled "
                            "contract)",
                        )
                    )

        def scan(nodes, in_loop: bool, guarded: bool) -> None:
            for node in nodes:
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    # A nested def is a fresh lexical scope: where it is
                    # *called* from decides its hotness, which a lexical
                    # rule cannot see.
                    scan(node.body, False, False)
                elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    if isinstance(node, (ast.For, ast.AsyncFor)):
                        scan_expr(node.iter, in_loop, guarded)
                    else:
                        scan_expr(node.test, in_loop, guarded)
                    scan(node.body, True, guarded)
                    scan(node.orelse, True, guarded)
                elif isinstance(node, ast.If):
                    scan_expr(node.test, in_loop, guarded)
                    # Both branches count as guarded: a lexical rule
                    # cannot tell `if tracer is not None:` from the
                    # inverted `if tracer is None: ... else: emit`.
                    branch_guarded = guarded or self._mentions_tracer(
                        node.test
                    )
                    scan(node.body, in_loop, branch_guarded)
                    scan(node.orelse, in_loop, branch_guarded)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        scan_expr(item.context_expr, in_loop, guarded)
                    scan(node.body, in_loop, guarded)
                elif isinstance(node, ast.Try):
                    scan(node.body, in_loop, guarded)
                    for handler in node.handlers:
                        scan(handler.body, in_loop, guarded)
                    scan(node.orelse, in_loop, guarded)
                    scan(node.finalbody, in_loop, guarded)
                else:
                    scan_expr(node, in_loop, guarded)

        scan(ctx.tree.body, False, False)
        yield from findings


@register_rule
class SwallowExceptionRule(Rule):
    """No silently swallowed exceptions in the fault-handling layers.

    The fault-tolerance contract is that every slave death gets a cause
    code and every suppressed error leaves a trace (see
    docs/robustness.md).  A bare ``except:`` — or an over-broad
    ``except Exception`` / ``except BaseException`` — whose handler
    neither re-raises nor *uses* the caught exception turns a real
    failure (a crashed slave, a corrupt checkpoint, a broken pipe) into
    silence, which in this codebase means a statistically degraded run
    that looks healthy.  Narrow handlers (``except OSError: pass``
    around a best-effort close) stay legal: they suppress one
    anticipated failure, not "anything".

    Scope: ``parallel/`` and ``faults/`` — the layers whose whole job
    is attributing failures — plus ``sweep/`` (pool-worker recovery and
    point requeue logic) and ``engine/fastpath.py`` (the auto-engine
    fallback path), which carry the same must-attribute-failures
    contract.  A handler passes by doing any of: re-raising (bare or
    chained ``raise``), binding the exception (``as error``) and
    referencing it (recording it in a cause code, message, or trace),
    or narrowing the caught type.
    """

    id = "swallow-exception"
    summary = (
        "no bare/over-broad except blocks in parallel/, faults/, "
        "sweep/, or engine/fastpath.py that drop the exception without "
        "re-raising or recording it"
    )

    #: Catch types considered over-broad.
    broad = frozenset({"Exception", "BaseException"})

    def applies(self, ctx: ModuleContext) -> bool:
        return (
            ctx.rel.startswith(("parallel/", "faults/", "sweep/"))
            or ctx.rel == "engine/fastpath.py"
        )

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:  # bare except:
            return True
        types = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            dotted = dotted_name(node)
            if dotted and dotted.split(".")[-1] in self.broad:
                return True
        return False

    def _handles(self, handler: ast.ExceptHandler) -> bool:
        """Whether the handler re-raises or references the exception."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        if handler.name:
            for statement in handler.body:
                for node in ast.walk(statement):
                    if (
                        isinstance(node, ast.Name)
                        and node.id == handler.name
                    ):
                        return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if self._handles(node):
                continue
            what = (
                "a bare `except:`"
                if node.type is None
                else "an over-broad except"
            )
            yield ctx.finding(
                self.id,
                node,
                f"{what} swallows the exception without re-raising or "
                "recording it; narrow the type, or bind the exception "
                "and attribute it (cause code / trace / message)",
            )


@register_rule
class ScalarSampleLoopRule(Rule):
    """No per-draw ``dist.sample(rng)`` loops where block draws apply.

    Every ``Distribution`` exposes ``sample_block(rng, n)`` (and the
    draw-order-safe ``sample_many``), which amortizes Python dispatch
    across a whole numpy block — the difference between the event
    engine's ~600k events/s and the fastpath engine's tens of millions.
    A ``.sample(rng)`` call lexically inside a loop or comprehension
    re-pays that dispatch per draw; batch consumers should pull a block
    instead.

    Exemptions: ``self.sample(...)`` (a distribution's own per-draw
    fallback *is* the reference implementation the block contracts are
    defined against) and test modules (which legitimately drive scalar
    loops to cross-check the block paths).  Event-driven components that
    genuinely need one draw at a time (one per event) sample outside
    any lexical loop, so they do not trip this rule; a deliberate
    in-loop scalar draw takes a ``# simlint: disable=scalar-sample-loop``
    with a why.
    """

    id = "scalar-sample-loop"
    summary = (
        "no per-draw .sample(rng) calls inside loops/comprehensions; "
        "draw a block with sample_block/sample_many instead"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return not ctx.rel.startswith("tests/")

    def _scalar_sample(self, node: ast.Call) -> bool:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "sample"):
            return False
        if not (node.args or node.keywords):
            # Zero-arg .sample() is some other API (e.g. random.sample
            # shadowing would be caught by global-rng anyway).
            return False
        # The per-draw fallback inside a distribution is the contract
        # reference, not a missed vectorization.
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            return False
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        findings: list = []

        def flag(call: ast.Call) -> None:
            findings.append(
                ctx.finding(
                    self.id,
                    call,
                    "per-draw .sample(rng) inside a loop re-pays Python "
                    "dispatch per value; draw a block with "
                    "sample_block(rng, n) (or sample_many for draw-order "
                    "parity) and iterate the array",
                )
            )

        def scan_expr(node: ast.AST, in_loop: bool) -> None:
            for sub in ast.walk(node):
                if isinstance(
                    sub,
                    (ast.ListComp, ast.SetComp, ast.DictComp,
                     ast.GeneratorExp),
                ):
                    # Walk revisits comprehension bodies below; the
                    # element expression is per-iteration by definition.
                    continue
                if (
                    in_loop
                    and isinstance(sub, ast.Call)
                    and self._scalar_sample(sub)
                ):
                    flag(sub)

        def scan_comprehension(node) -> None:
            bodies = (
                [node.key, node.value]
                if isinstance(node, ast.DictComp)
                else [node.elt]
            )
            for body in bodies + [
                comp.iter for comp in node.generators
            ] + [
                cond for comp in node.generators for cond in comp.ifs
            ]:
                for sub in ast.walk(body):
                    if isinstance(sub, ast.Call) and self._scalar_sample(sub):
                        flag(sub)

        def scan(nodes, in_loop: bool) -> None:
            for node in nodes:
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    scan(node.body, False)
                elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    scan(node.body, True)
                    scan(node.orelse, True)
                elif isinstance(node, ast.If):
                    scan_expr(node.test, in_loop)
                    scan(node.body, in_loop)
                    scan(node.orelse, in_loop)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    scan(node.body, in_loop)
                elif isinstance(node, ast.Try):
                    scan(node.body, in_loop)
                    for handler in node.handlers:
                        scan(handler.body, in_loop)
                    scan(node.orelse, in_loop)
                    scan(node.finalbody, in_loop)
                else:
                    scan_expr(node, in_loop)

        scan(ctx.tree.body, False)
        for node in ast.walk(ctx.tree):
            if isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                scan_comprehension(node)
        yield from findings


@register_rule
class ParallelLambdaRule(Rule):
    """No lambdas in objects crossing the pickled parallel protocol.

    The process backend ships factories, commands, and reports through
    ``multiprocessing`` pipes; lambdas are not picklable, so a lambda
    that reaches a pipe fails at runtime — and only on the process
    backend, which the serial-backend tests never exercise.  Inside
    ``parallel/`` every lambda is suspect; everywhere else, lambdas
    passed directly to a ``.send(...)`` call are flagged.
    """

    id = "parallel-lambda"
    summary = (
        "no lambdas inside parallel/ or in .send(...) payloads (they "
        "cannot cross the pickled protocol)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.rel.startswith("parallel/"):
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Lambda):
                    yield ctx.finding(
                        self.id,
                        node,
                        "lambda in the parallel package risks crossing "
                        "the pickled protocol; use a module-level "
                        "function",
                    )
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "send"):
                continue
            payload = list(node.args) + [kw.value for kw in node.keywords]
            for arg in payload:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        yield ctx.finding(
                            self.id,
                            sub,
                            "lambda inside a .send(...) payload cannot "
                            "be pickled across the parallel protocol",
                        )


@register_rule
class BlockingSleepInTransportRule(Rule):
    """No blocking ``time.sleep`` on transport or scheduling threads.

    A ``time.sleep`` inside ``parallel/`` freezes the thread that is
    supposed to be multiplexing workers: heartbeats stop being
    answered, injected-fault due-times slip, and a liveness monitor on
    the other side reads the stall as a dead link.  Waiting must ride a
    poll/wait timeout, a condition variable, an ``asyncio.sleep``, or a
    ``threading.Timer`` — anything that keeps the thread responsive.

    The handful of legitimate blocking waits (a respawn barrier with
    nothing else runnable, a worker-side injected hang where blocking
    *is* the fault) carry an explicit
    ``# simlint: disable=blocking-sleep-in-transport``.
    """

    id = "blocking-sleep-in-transport"
    summary = (
        "no blocking time.sleep in parallel/ (use poll timeouts, "
        "condition waits, or timers)"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.rel.startswith("parallel/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "time.sleep"
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    "`time.sleep()` blocks a transport/scheduling "
                    "thread; wait on a poll timeout, condition "
                    "variable, or timer instead",
                )
