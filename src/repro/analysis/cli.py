"""``python -m repro.analysis`` — the simlint command line.

Usage::

    python -m repro.analysis src tests              # per-file rules
    python -m repro.analysis src --whole-program    # + cross-module passes
    python -m repro.analysis src --whole-program \\
        --baseline .simlint-baseline.json           # gate on NEW findings
    python -m repro.analysis src --whole-program \\
        --write-baseline .simlint-baseline.json     # (re)accept current state
    python -m repro.analysis src --format sarif --out simlint.sarif
    python -m repro.analysis src --cache .simlint-cache   # incremental
    python -m repro.analysis --list-rules           # full rule catalog

Exit codes: ``0`` clean (no findings, or every finding baselined),
``1`` at least one new non-suppressed finding, ``2`` usage, I/O, or
internal analyzer error.  Exit 2 is load-bearing for CI: a crash must
not be mistaken for a clean pass.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.baseline import (
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.linter import Finding, LintError, lint_paths
from repro.analysis.project import (
    WHOLE_PROGRAM_RULES,
    all_rule_ids,
    analyze_project,
)
from repro.analysis.rules import RULES
from repro.analysis.sarif import to_sarif, validate_sarif


def build_parser() -> argparse.ArgumentParser:
    """The simlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "simlint: AST-based determinism & simulation-correctness "
            "analyzer (see docs/analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help=(
            "also run the cross-module passes (rng/clock taint "
            "dataflow, shared-state race detection)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file: findings recorded there are reported but "
            "do not fail the gate"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="incremental analysis cache directory (keyed by digests)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_ids(raw):
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _list_rules() -> int:
    from repro.analysis.modellint import MODEL_RULES

    catalog = {rule_id: rule.summary for rule_id, rule in RULES.items()}
    catalog.update(WHOLE_PROGRAM_RULES)
    catalog.update(MODEL_RULES)
    width = max(len(rule_id) for rule_id in catalog)
    for rule_id, summary in sorted(catalog.items()):
        kind = (
            "whole-program" if rule_id in WHOLE_PROGRAM_RULES
            else "model-lint" if rule_id not in RULES
            else "per-file"
        )
        print(f"{rule_id:<{width}}  [{kind}] {summary}")
    return 0


def _emit(
    args,
    findings,
    scanned: int,
    gate: BaselineResult,
    baselined_active: bool,
) -> None:
    """Render the report in the requested format to stdout or --out."""
    out = sys.stdout
    close = False
    if args.out is not None:
        out = open(args.out, "w")
        close = True
    try:
        if args.format == "sarif":
            catalog = {rid: rule.summary for rid, rule in RULES.items()}
            if args.whole_program:
                catalog.update(WHOLE_PROGRAM_RULES)
            state = None
            if baselined_active:
                baselined = {id(f) for f in gate.baselined}
                state = {
                    position: (
                        "unchanged" if id(f) in baselined else "new"
                    )
                    for position, f in enumerate(findings)
                }
            document = to_sarif(findings, rules=catalog, baseline_state=state)
            problems = validate_sarif(document)
            if problems:
                raise LintError(
                    "internal error: emitted SARIF failed validation: "
                    + "; ".join(problems)
                )
            json.dump(document, out, indent=2, sort_keys=True)
            out.write("\n")
        elif args.format == "json":
            json.dump(
                {
                    "version": 1,
                    "files_scanned": scanned,
                    "findings": [f.to_dict() for f in findings],
                    "new": len(gate.new),
                    "baselined": len(gate.baselined),
                    "stale_baseline_entries": len(gate.stale),
                },
                out,
                indent=2,
            )
            out.write("\n")
        else:
            baselined = {id(f) for f in gate.baselined}
            for finding in findings:
                tag = (
                    " [baselined]"
                    if baselined_active and id(finding) in baselined
                    else ""
                )
                print(
                    f"{finding.location()}: {finding.severity}: "
                    f"{finding.rule}: {finding.message}{tag}",
                    file=out,
                )
            noun = "finding" if len(findings) == 1 else "findings"
            summary = (
                f"simlint: {len(findings)} {noun} in {scanned} "
                "file(s) scanned"
            )
            if baselined_active:
                summary += (
                    f" ({len(gate.new)} new, {len(gate.baselined)} "
                    f"baselined, {len(gate.stale)} stale baseline "
                    "entr(ies))"
                )
            print(summary, file=out)
    finally:
        if close:
            out.close()


def _run(args) -> int:
    if args.whole_program or args.cache is not None:
        findings, scanned = analyze_project(
            args.paths,
            select=_split_ids(args.select),
            disable=_split_ids(args.disable),
            cache_dir=args.cache,
        )
        if not args.whole_program:
            findings = [
                f for f in findings if f.rule not in WHOLE_PROGRAM_RULES
            ]
    else:
        findings, scanned = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            disable=_split_ids(args.disable),
        )

    if args.write_baseline is not None:
        count = write_baseline(findings, args.write_baseline)
        print(
            f"simlint: wrote {count} baseline entr(ies) to "
            f"{args.write_baseline}"
        )
        return 0

    baselined_active = args.baseline is not None
    if baselined_active:
        gate = apply_baseline(findings, load_baseline(args.baseline))
    else:
        gate = BaselineResult(new=list(findings), baselined=[], stale=[])

    _emit(args, findings, scanned, gate, baselined_active)
    return 1 if gate.new else 0


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    try:
        return _run(args)
    except LintError as error:
        print(f"simlint: error: {error}", file=sys.stderr)
        return 2
    except Exception as error:
        # An analyzer crash must exit 2, never masquerade as "clean".
        print(
            f"simlint: internal error: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
