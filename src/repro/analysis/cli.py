"""``python -m repro.analysis`` — the simlint command line.

Usage::

    python -m repro.analysis src tests            # text report
    python -m repro.analysis src --format json    # machine-readable (CI)
    python -m repro.analysis --list-rules         # rule catalog

Exit codes: ``0`` clean, ``1`` at least one non-suppressed finding,
``2`` usage or I/O error (bad path, unknown rule, syntax error).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.linter import LintError, lint_paths
from repro.analysis.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    """The simlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "simlint: AST-based determinism & simulation-correctness "
            "analyzer (see docs/analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_ids(raw):
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULES)
        for rule_id, rule in sorted(RULES.items()):
            print(f"{rule_id:<{width}}  {rule.summary}")
        return 0
    try:
        findings, scanned = lint_paths(
            args.paths,
            select=_split_ids(args.select),
            disable=_split_ids(args.disable),
        )
    except LintError as error:
        print(f"simlint: error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        json.dump(
            {
                "version": 1,
                "files_scanned": scanned,
                "findings": [finding.to_dict() for finding in findings],
            },
            sys.stdout,
            indent=2,
        )
        sys.stdout.write("\n")
    else:
        for finding in findings:
            print(f"{finding.location()}: {finding.rule}: {finding.message}")
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"simlint: {len(findings)} {noun} in {scanned} file(s) scanned"
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
