"""Parallel shared-state race detection.

The parallel protocol's correctness argument (docs/robustness.md) rests
on slaves sharing *nothing*: each slave rebuilds its experiment from a
config document under its own derived seed, and the only channel back
to the master is the pickled report.  Module-level mutable state breaks
that argument twice over — on the fork/serial backends it aliases
between "isolated" slaves, and on the spawn backend it silently
*doesn't*, so the two backends diverge.

This pass flags writes to module-level mutable state (and mutations of
closure-captured state) from any function reachable — per the
:mod:`~repro.analysis.callgraph` — from a slave/worker entry point:

- subscript stores / deletes on a module-level dict/list/set
  (``CACHE[key] = …``);
- mutating method calls (``.append`` / ``.update`` / ``.add`` /
  ``.pop`` / …) on a module-level mutable;
- rebinding a module global via ``global`` + assignment;
- attribute stores on an imported module (``othermod.STATE = …``);
- ``nonlocal`` rebinding of a name captured from an enclosing scope
  when the closure is worker-reachable.

Read-only access is fine (workers may consult registries built at
import time); only *mutation* from worker-reachable code fires.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.callgraph import CallGraph, dotted
from repro.analysis.linter import Finding
from repro.analysis.symbols import FunctionInfo, ModuleInfo, ProjectIndex

RULE_ID = "shared-state-race"

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "appendleft",
        "popleft",
        "sort",
        "reverse",
        "__setitem__",
    }
)


def _local_bindings(node) -> Set[str]:
    """Names bound locally in a function (params, assignments, loops)."""
    bound: Set[str] = set(arg.arg for arg in node.args.args)
    bound.update(arg.arg for arg in node.args.kwonlyargs)
    if node.args.vararg:
        bound.add(node.args.vararg.arg)
    if node.args.kwarg:
        bound.add(node.args.kwarg.arg)
    declared_global: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                for name_node in ast.walk(target):
                    # Only actual binding stores: `x = …` binds x, but
                    # `x[k] = …` / `x.attr = …` leave x a free name.
                    if isinstance(name_node, ast.Name) and isinstance(
                        name_node.ctx, ast.Store
                    ):
                        bound.add(name_node.id)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(sub.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(sub, ast.With):
            for item in sub.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            bound.add(name_node.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if sub is not node:
                bound.add(sub.name)
    return bound - declared_global


class RaceDetector:
    """Flag worker-reachable mutation of shared module-level state."""

    def __init__(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        entries: Iterable[str],
    ) -> None:
        self.index = index
        self.graph = graph
        self.entries = list(entries)
        self.reachable = graph.reachable(self.entries)
        self.findings: List[Finding] = []

    # -- helpers --------------------------------------------------------------

    def _entry_label(self) -> str:
        short = [name.rsplit(".", 1)[-1] for name in sorted(self.entries)]
        return "/".join(short) if short else "worker"

    def _finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=RULE_ID,
                path=module.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                end_line=getattr(node, "end_lineno", line) or line,
            )
        )

    def _shared_target(
        self, module: ModuleInfo, name: str, local: Set[str]
    ) -> Optional[str]:
        """Resolve ``name`` to a shared mutable global, if it is one.

        Returns a display label ``module.NAME`` or None.  Locals shadow
        globals; imported names resolve into the defining module.
        """
        if name in local:
            return None
        if name in module.mutable_globals:
            return f"{module.name}.{name}"
        target = module.imports.get(name)
        if target is not None:
            owner, _, attr = target.rpartition(".")
            owner_mod = self.index.modules.get(owner)
            if owner_mod is not None and attr in owner_mod.mutable_globals:
                return f"{owner_mod.name}.{attr}"
        return None

    def _resolve_mutable(
        self, module: ModuleInfo, base_name: str, local: Set[str]
    ) -> Optional[str]:
        """Resolve a (possibly dotted) base to a shared mutable label.

        Handles both ``CACHE[...]`` (a local/imported mutable global)
        and ``othermod.CACHE[...]`` (an attribute of an imported
        module, following import aliases to the defining module).
        """
        head, _, rest = base_name.partition(".")
        shared = self._shared_target(module, head, local)
        if shared is not None:
            return shared
        if not rest or head in local:
            return None
        imported = module.imports.get(head, head)
        owner = self.index.modules.get(imported)
        if owner is not None:
            attr = rest.split(".")[0]
            if attr in owner.mutable_globals:
                return f"{owner.name}.{attr}"
        return None

    # -- per-function scan ----------------------------------------------------

    def _scan_function(self, info: FunctionInfo) -> None:
        module = self.index.modules[info.module]
        node = info.node
        local = _local_bindings(node)
        declared_global: Set[str] = set()
        entry_label = self._entry_label()

        for sub in ast.walk(node):
            if isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and sub is not node:
                # Nested defs are scanned as their own call-graph nodes.
                continue
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
            elif isinstance(sub, ast.Nonlocal):
                self._finding(
                    module,
                    sub,
                    f"nonlocal rebinding of {', '.join(sub.names)} in "
                    f"worker-reachable code (via {entry_label}); "
                    "closure state shared across slave invocations "
                    "breaks backend equivalence",
                )
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    self._check_store(
                        module, sub, target, local, declared_global,
                        entry_label,
                    )
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    self._check_store(
                        module, sub, target, local, declared_global,
                        entry_label,
                    )
            elif isinstance(sub, ast.Call):
                self._check_mutating_call(
                    module, sub, local, entry_label
                )

    def _check_store(
        self,
        module: ModuleInfo,
        stmt: ast.AST,
        target: ast.AST,
        local: Set[str],
        declared_global: Set[str],
        entry_label: str,
    ) -> None:
        # CACHE[key] = value  /  del CACHE[key]  /  CACHE[key] += 1
        if isinstance(target, ast.Subscript):
            base = target.value
            base_name = dotted(base)
            if base_name is None:
                return
            shared = self._resolve_mutable(module, base_name, local)
            if base_name.split(".")[0] in declared_global:
                shared = shared or f"{module.name}.{base_name}"
            if shared is not None:
                self._finding(
                    module,
                    stmt,
                    f"subscript store into module-level mutable "
                    f"`{shared}` from worker-reachable code (via "
                    f"{entry_label}); shared state diverges across "
                    "parallel backends",
                )
            return
        # global X; X = ...  — rebinding a module global from a worker.
        if isinstance(target, ast.Name) and target.id in declared_global:
            self._finding(
                module,
                stmt,
                f"worker-reachable rebinding of module global "
                f"`{module.name}.{target.id}` (via {entry_label}); "
                "slave-side writes to module state are invisible to "
                "other backends",
            )
            return
        # othermod.STATE = ...  — attribute store on an imported module.
        if isinstance(target, ast.Attribute):
            base_name = dotted(target.value)
            if base_name is None:
                return
            head = base_name.split(".")[0]
            if head in local or head == "self":
                return
            imported = module.imports.get(head)
            if imported is not None and imported in self.index.modules:
                self._finding(
                    module,
                    stmt,
                    f"attribute store `{base_name}.{target.attr} = …` "
                    f"mutates module `{imported}` from worker-reachable "
                    f"code (via {entry_label})",
                )

    def _check_mutating_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        local: Set[str],
        entry_label: str,
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in MUTATING_METHODS:
            return
        base_name = dotted(func.value)
        if base_name is None:
            return
        shared = self._resolve_mutable(module, base_name, local)
        if shared is not None:
            self._finding(
                module,
                node,
                f"`.{func.attr}()` mutates module-level mutable "
                f"`{shared}` from worker-reachable code (via "
                f"{entry_label}); shared state diverges across "
                "parallel backends",
            )

    # -- driver ---------------------------------------------------------------

    def run(self) -> List[Finding]:
        for name in sorted(self.reachable):
            info = self.index.functions.get(name)
            if info is not None:
                self._scan_function(info)
        # Dedup (a nested def shares source lines with its parent scan).
        unique: Dict[tuple, Finding] = {}
        for finding in self.findings:
            unique[
                (finding.path, finding.line, finding.col, finding.message)
            ] = finding
        self.findings = sorted(unique.values(), key=Finding.sort_key)
        return self.findings


def analyze_races(
    index: ProjectIndex,
    graph: CallGraph,
    entries: Iterable[str],
) -> List[Finding]:
    """Run the shared-state race pass from the given worker entries."""
    return RaceDetector(index, graph, entries).run()
