"""Cross-module RNG / wall-clock taint dataflow.

The determinism contract says every random draw flows from the
experiment seed and every timestamp flows from ``Simulation.now``.  The
per-file rules catch *creations* of illegal streams (``global-rng``,
``wall-clock``) in scoped directories; this pass catches what they
structurally cannot: a hazard created in one function or module and
*consumed* in another.

Taint sources
    - unseeded RNG construction: ``np.random.default_rng()`` /
      ``numpy.random.RandomState()`` / ``random.Random()`` with no
      arguments, and any draw from the stdlib ``random`` module stream;
    - host clock reads: ``time.time`` / ``time.time_ns`` /
      ``datetime.now`` and friends.

Propagation
    Through assignments, arithmetic, attribute access, function
    parameters, and return values — across function and module
    boundaries via per-function summaries iterated to a fixpoint over
    the :mod:`~repro.analysis.callgraph`.  Module-level bindings
    propagate too (a tainted module global read by an importing module
    stays tainted).

Sinks
    - sampling: ``.sample`` / ``.sample_many`` / ``.sample_block``;
    - event scheduling: ``.schedule`` / ``.schedule_at``;
    - statistics / merge: ``.observe`` / ``.observe_block`` /
      ``.merge`` / ``.merge_payload`` / ``.insert_block``;
    - seeding: a *clock*-tainted value used to seed any generator
      (``seeded_rng`` / ``default_rng(x)`` / ``RandomState(x)``) —
      host time laundered into a "seeded" stream is still host time.

A tainted value reaching a sink yields an ``rng-taint`` or
``clock-taint`` finding at the sink call site, with the origin
location in the message so the cross-module path is actionable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.analysis.callgraph import CallGraph, dotted
from repro.analysis.linter import Finding
from repro.analysis.symbols import FunctionInfo, ModuleInfo, ProjectIndex

#: Fully-resolved callables that create an *unseeded* stream when
#: called with no arguments.
UNSEEDED_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: The stdlib ``random`` module: any draw is the hidden global stream.
GLOBAL_STREAM_PREFIX = "random."

#: Fully-resolved callables that read the host clock.
CLOCK_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "time.monotonic",
        "time.monotonic_ns",
    }
)

#: Sink method names -> human description of the protected path.
SINK_METHODS = {
    "sample": "sampling",
    "sample_many": "sampling",
    "sample_block": "sampling",
    "schedule": "event-scheduling",
    "schedule_at": "event-scheduling",
    "observe": "statistics",
    "observe_block": "statistics",
    "merge": "merge",
    "merge_payload": "merge",
    "insert_block": "statistics",
}

#: Callables whose argument becomes a seed; clock taint here means the
#: "seeded" stream is actually keyed on host time.
SEED_CONSTRUCTORS = frozenset(
    {
        "seeded_rng",
        "default_rng",
        "RandomState",
        "derive_seed",
    }
)

#: Taint kinds and their rule ids.
RULE_FOR_KIND = {"rng": "rng-taint", "clock": "clock-taint"}

#: Fixpoint bound; summaries over acyclic call chains converge in the
#: chain depth, cycles in a handful more rounds.
MAX_ROUNDS = 12


@dataclass(frozen=True)
class Taint:
    """A concrete hazard value: what was created, and where."""

    kind: str  # "rng" | "clock"
    origin_path: str
    origin_line: int
    origin: str  # the expression that created it, e.g. "time.time()"


@dataclass(frozen=True)
class ParamTaint:
    """Summary placeholder: 'whatever flows into parameter i'."""

    index: int


TaintSet = FrozenSet[Union[Taint, ParamTaint]]
EMPTY: TaintSet = frozenset()


@dataclass
class Summary:
    """What one function does with taint, independent of call context."""

    #: taints always present in the return value.
    returns: TaintSet = EMPTY
    #: parameter indexes whose taint reaches the return value.
    returns_params: FrozenSet[int] = frozenset()
    #: parameter index -> sink description its value reaches.
    param_sinks: Tuple[Tuple[int, str], ...] = ()

    def key(self) -> tuple:
        return (self.returns, self.returns_params, self.param_sinks)


class TaintAnalysis:
    """Whole-program taint pass over a built project index + call graph."""

    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self.summaries: Dict[str, Summary] = {}
        self.module_env: Dict[str, Dict[str, TaintSet]] = {}
        self.findings: List[Finding] = []
        self._reported: Set[tuple] = set()

    # -- name resolution ------------------------------------------------------

    def _resolved_call_name(
        self, module: ModuleInfo, func: ast.AST
    ) -> Optional[str]:
        name = dotted(func)
        if name is None:
            return None
        head, _, tail = name.partition(".")
        if head in module.imports:
            base = module.imports[head]
            return f"{base}.{tail}" if tail else base
        return name

    def _source_taint(
        self, module: ModuleInfo, node: ast.Call
    ) -> Optional[Taint]:
        resolved = self._resolved_call_name(module, node.func)
        if resolved is None:
            return None
        if resolved in CLOCK_SOURCES:
            return Taint(
                kind="clock",
                origin_path=module.path,
                origin_line=node.lineno,
                origin=f"{resolved}()",
            )
        if (
            resolved in UNSEEDED_CONSTRUCTORS
            and not node.args
            and not node.keywords
        ):
            return Taint(
                kind="rng",
                origin_path=module.path,
                origin_line=node.lineno,
                origin=f"{resolved}()",
            )
        if resolved.startswith(GLOBAL_STREAM_PREFIX) and resolved.count(
            "."
        ) == 1:
            # random.random(), random.randint(...), random.choice(...):
            # draws from the hidden global stream (random.Random with
            # args is handled above as a constructor).
            return Taint(
                kind="rng",
                origin_path=module.path,
                origin_line=node.lineno,
                origin=f"{resolved}()",
            )
        return None

    def _project_callee(
        self, module: ModuleInfo, info: FunctionInfo, node: ast.Call
    ) -> Optional[FunctionInfo]:
        name = dotted(node.func)
        if name is None:
            return None
        head = name.split(".")[0]
        if head == "self" and info.class_name is not None:
            attr = name.split(".", 1)[1] if "." in name else ""
            if attr and "." not in attr:
                return self.index.mro_methods(
                    module, info.class_name
                ).get(attr)
            return None
        resolved = self.index.resolve(module, name)
        if resolved is None:
            return None
        return self.index.function_for(resolved)

    # -- findings -------------------------------------------------------------

    def _report(
        self,
        module: ModuleInfo,
        node: ast.AST,
        taint: Taint,
        sink_desc: str,
    ) -> None:
        rule = RULE_FOR_KIND[taint.kind]
        what = (
            "unseeded/global RNG"
            if taint.kind == "rng"
            else "host-clock value"
        )
        same_file = taint.origin_path == module.path
        origin = (
            f"line {taint.origin_line}"
            if same_file
            else f"{taint.origin_path}:{taint.origin_line}"
        )
        message = (
            f"{what} from {taint.origin} (created at {origin}) reaches "
            f"the {sink_desc} path; thread a seeded "
            f"numpy.random.Generator / simulated time instead"
        )
        key = (rule, module.path, node.lineno, node.col_offset, message)
        if key in self._reported:
            return
        self._reported.add(key)
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=rule,
                path=module.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                end_line=getattr(node, "end_lineno", line) or line,
            )
        )

    # -- expression evaluation ------------------------------------------------

    def _eval(
        self,
        module: ModuleInfo,
        info: Optional[FunctionInfo],
        node: ast.AST,
        env: Dict[str, TaintSet],
        collect: bool,
    ) -> TaintSet:
        """Taints carried by ``node``; optionally records sink findings."""
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            # A module global (possibly imported from elsewhere).
            return self._global_taint(module, node.id)
        if isinstance(node, ast.Call):
            return self._eval_call(module, info, node, env, collect)
        if isinstance(node, ast.Attribute):
            return self._eval(module, info, node.value, env, collect)
        result: Set = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.operator, ast.cmpop, ast.boolop,
                                  ast.unaryop, ast.expr_context)):
                continue
            result |= self._eval(module, info, child, env, collect)
        return frozenset(result)

    def _global_taint(self, module: ModuleInfo, name: str) -> TaintSet:
        seen: Set[Tuple[str, str]] = set()
        current: Optional[Tuple[ModuleInfo, str]] = (module, name)
        while current is not None:
            mod, local = current
            if (mod.name, local) in seen:
                break
            seen.add((mod.name, local))
            env = self.module_env.get(mod.name, {})
            if local in env:
                return env[local]
            target = mod.imports.get(local)
            if target is None:
                break
            owner, _, attr = target.rpartition(".")
            owner_mod = self.index.modules.get(owner)
            if owner_mod is None or not attr:
                break
            current = (owner_mod, attr)
        return EMPTY

    def _eval_call(
        self,
        module: ModuleInfo,
        info: Optional[FunctionInfo],
        node: ast.Call,
        env: Dict[str, TaintSet],
        collect: bool,
    ) -> TaintSet:
        args = list(node.args) + [kw.value for kw in node.keywords]
        arg_taints = [
            self._eval(module, info, arg, env, collect) for arg in args
        ]
        source = self._source_taint(module, node)
        if source is not None:
            return frozenset({source})

        func_dotted = dotted(node.func)
        attr = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else (func_dotted or "")
        )

        # Sink: a tainted value handed to a protected method.
        if collect and attr in SINK_METHODS:
            for taints in arg_taints:
                for taint in taints:
                    if isinstance(taint, Taint):
                        self._report(
                            module, node, taint, SINK_METHODS[attr]
                        )
        # Sink: host time laundered into a seed.
        if collect and attr.split(".")[-1] in SEED_CONSTRUCTORS:
            for taints in arg_taints:
                for taint in taints:
                    if isinstance(taint, Taint) and taint.kind == "clock":
                        self._report(module, node, taint, "seed-derivation")

        callee = (
            self._project_callee(module, info, node)
            if info is not None
            else None
        )
        if callee is None and func_dotted is not None:
            resolved = self.index.resolve(module, func_dotted)
            if resolved is not None:
                callee = self.index.function_for(resolved)
        if callee is not None:
            summary = self.summaries.get(callee.name, Summary())
            result: Set = set(
                t for t in summary.returns if isinstance(t, Taint)
            )
            # Map call arguments onto parameter indexes (methods: skip
            # the self slot for attribute-style calls).
            offset = 0
            if callee.is_method and isinstance(node.func, ast.Attribute):
                offset = 1
            positional = {
                i + offset: taints
                for i, taints in enumerate(arg_taints[: len(node.args)])
            }
            keyword = {}
            for kw, taints in zip(
                node.keywords, arg_taints[len(node.args):]
            ):
                if kw.arg and kw.arg in callee.params:
                    keyword[callee.params.index(kw.arg)] = taints
            by_index = {**positional, **keyword}
            for index in summary.returns_params:
                result |= {
                    t
                    for t in by_index.get(index, EMPTY)
                    if isinstance(t, Taint)
                } | {
                    t
                    for t in by_index.get(index, EMPTY)
                    if isinstance(t, ParamTaint)
                }
            if collect:
                for index, sink_desc in summary.param_sinks:
                    for taint in by_index.get(index, EMPTY):
                        if isinstance(taint, Taint):
                            self._report(module, node, taint, sink_desc)
            # Param placeholders flowing straight through:
            return frozenset(result)

        # Unknown callee: conservatively propagate argument taints
        # (float(t), math.floor(t), f-string building, …).
        result = set()
        for taints in arg_taints:
            result |= taints
        return frozenset(result)

    # -- per-function analysis ------------------------------------------------

    def _analyze_function(
        self, info: FunctionInfo, collect: bool
    ) -> Summary:
        module = self.index.modules[info.module]
        env: Dict[str, TaintSet] = {
            name: frozenset({ParamTaint(i)})
            for i, name in enumerate(info.params)
        }
        returns: Set = set()
        param_sinks: Dict[int, str] = {}

        def record_param_sink(taints: TaintSet, sink_desc: str) -> None:
            for taint in taints:
                if isinstance(taint, ParamTaint):
                    param_sinks.setdefault(taint.index, sink_desc)

        def walk(node: ast.AST) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return  # nested defs analyzed as their own functions
            if isinstance(node, ast.Assign):
                taints = self._eval(module, info, node.value, env, collect)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = taints
                self._scan_sinks(module, info, node.value, env,
                                 record_param_sink, collect)
                return
            if isinstance(node, ast.AnnAssign) and node.value is not None:
                taints = self._eval(module, info, node.value, env, collect)
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = taints
                self._scan_sinks(module, info, node.value, env,
                                 record_param_sink, collect)
                return
            if isinstance(node, ast.AugAssign):
                taints = self._eval(module, info, node.value, env, collect)
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = env.get(
                        node.target.id, EMPTY
                    ) | taints
                self._scan_sinks(module, info, node.value, env,
                                 record_param_sink, collect)
                return
            if isinstance(node, ast.Return):
                if node.value is not None:
                    returns.update(
                        self._eval(module, info, node.value, env, collect)
                    )
                    self._scan_sinks(module, info, node.value, env,
                                     record_param_sink, collect)
                return
            if isinstance(node, ast.Expr):
                self._eval(module, info, node.value, env, collect)
                self._scan_sinks(module, info, node.value, env,
                                 record_param_sink, collect)
                return
            for child in ast.iter_child_nodes(node):
                walk(child)

        for stmt in info.node.body:
            walk(stmt)

        return Summary(
            returns=frozenset(
                t for t in returns if isinstance(t, Taint)
            ),
            returns_params=frozenset(
                t.index for t in returns if isinstance(t, ParamTaint)
            ),
            param_sinks=tuple(sorted(param_sinks.items())),
        )

    def _scan_sinks(
        self,
        module: ModuleInfo,
        info: FunctionInfo,
        expr: ast.AST,
        env: Dict[str, TaintSet],
        record_param_sink,
        collect: bool,
    ) -> None:
        """Record *parameter* flows into sinks for the summary."""
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else (dotted(node.func) or "")
            )
            args = list(node.args) + [kw.value for kw in node.keywords]
            if attr in SINK_METHODS:
                for arg in args:
                    record_param_sink(
                        self._eval(module, info, arg, env, False),
                        SINK_METHODS[attr],
                    )
            if attr.split(".")[-1] in SEED_CONSTRUCTORS:
                for arg in args:
                    taints = self._eval(module, info, arg, env, False)
                    record_param_sink(
                        frozenset(
                            t
                            for t in taints
                            if isinstance(t, ParamTaint)
                        ),
                        "seed-derivation",
                    )
            callee = self._project_callee(module, info, node)
            if callee is not None:
                summary = self.summaries.get(callee.name)
                if summary is None or not summary.param_sinks:
                    continue
                offset = (
                    1
                    if callee.is_method
                    and isinstance(node.func, ast.Attribute)
                    else 0
                )
                sinky = dict(summary.param_sinks)
                for i, arg in enumerate(node.args):
                    if i + offset in sinky:
                        record_param_sink(
                            self._eval(module, info, arg, env, False),
                            sinky[i + offset],
                        )
                for kw in node.keywords:
                    if kw.arg and kw.arg in callee.params:
                        index = callee.params.index(kw.arg)
                        if index in sinky:
                            record_param_sink(
                                self._eval(
                                    module, info, kw.value, env, False
                                ),
                                sinky[index],
                            )

    def _module_level_env(self, module: ModuleInfo) -> Dict[str, TaintSet]:
        env: Dict[str, TaintSet] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                taints = self._eval(module, None, stmt.value, env, False)
                if taints:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = taints
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                taints = self._eval(module, None, stmt.value, env, False)
                if taints and isinstance(stmt.target, ast.Name):
                    env[stmt.target.id] = taints
        return {k: v for k, v in env.items() if v}

    # -- driver ---------------------------------------------------------------

    def run(self) -> List[Finding]:
        """Iterate summaries to a fixpoint, then collect findings."""
        # Module-level bindings first (two rounds so cross-module
        # global-to-global references settle).
        for _ in range(2):
            for module in self.index.modules.values():
                self.module_env[module.name] = self._module_level_env(
                    module
                )
        functions = [
            info
            for info in self.index.functions.values()
            if "<locals>" not in info.name
        ]
        for _ in range(MAX_ROUNDS):
            changed = False
            for info in functions:
                summary = self._analyze_function(info, collect=False)
                previous = self.summaries.get(info.name)
                if previous is None or previous.key() != summary.key():
                    self.summaries[info.name] = summary
                    changed = True
            if not changed:
                break
        # Final pass with findings enabled.
        self.findings = []
        self._reported = set()
        for info in functions:
            self._analyze_function(info, collect=True)
        # Module-level sink calls (rare but legal):
        for module in self.index.modules.values():
            env = dict(self.module_env.get(module.name, {}))
            for stmt in module.tree.body:
                if isinstance(stmt, ast.Expr):
                    self._eval(module, None, stmt.value, env, True)
        self.findings.sort(key=Finding.sort_key)
        return self.findings


def analyze_taint(index: ProjectIndex, graph: CallGraph) -> List[Finding]:
    """Run the cross-module taint pass; returns sorted findings."""
    return TaintAnalysis(index, graph).run()
