"""Finding baselines: track legacy findings, gate only new ones.

A whole-program pass grows in power over time; every new rule would
otherwise be blocked on fixing (or suppressing) every historical
finding before CI could adopt it.  The baseline file decouples the two:
findings present in the committed baseline are reported as *baselined*
(and do not fail the gate), anything not in it is *new* and fails CI.

Fingerprints deliberately exclude line/column numbers — inserting a
docstring above a legacy finding must not make it "new".  A fingerprint
hashes ``(rule, path, message, occurrence)``, where ``occurrence``
disambiguates identical findings within one file (two copies of the
same hazard are two baseline slots; fixing one retires one).

File format (JSON, committed at the repo root as
``.simlint-baseline.json``)::

    {
      "version": 1,
      "findings": [
        {"fingerprint": "…", "rule": "…", "path": "…", "message": "…"},
        …
      ]
    }

``path`` and ``message`` are informational (so diffs are reviewable);
matching is by fingerprint only.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.linter import Finding, LintError

BASELINE_VERSION = 1

#: The conventional committed baseline location.
DEFAULT_BASELINE = ".simlint-baseline.json"


def _normalized_path(path: str) -> str:
    """Stable cross-machine path form: posix separators, no leading ./"""
    normalized = path.replace("\\", "/")
    while normalized.startswith("./"):
        normalized = normalized[2:]
    return normalized


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Line-number-independent identity of one finding."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(finding.rule.encode())
    digest.update(b"\x00")
    digest.update(_normalized_path(finding.path).encode())
    digest.update(b"\x00")
    digest.update(finding.message.encode())
    digest.update(b"\x00")
    digest.update(str(occurrence).encode())
    return digest.hexdigest()


def fingerprints(findings: Sequence[Finding]) -> List[str]:
    """Fingerprints for a finding list, occurrence-disambiguated."""
    counts: Dict[tuple, int] = {}
    result = []
    for finding in findings:
        key = (finding.rule, _normalized_path(finding.path),
               finding.message)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        result.append(fingerprint(finding, occurrence))
    return result


@dataclass
class BaselineResult:
    """Outcome of matching findings against a baseline."""

    new: List[Finding]  # not in the baseline: these gate CI
    baselined: List[Finding]  # tracked legacy findings
    stale: List[str]  # baseline fingerprints with no matching finding

    @property
    def clean(self) -> bool:
        return not self.new


def load_baseline(path) -> Dict[str, dict]:
    """Read a baseline file; returns fingerprint -> entry."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise LintError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise LintError(
            f"baseline {path} is not valid JSON: {error}"
        ) from error
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path}: expected version {BASELINE_VERSION} "
            f"document, got {data.get('version') if isinstance(data, dict) else data!r}"
        )
    entries = {}
    for entry in data.get("findings", []):
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise LintError(
                f"baseline {path}: malformed entry {entry!r}"
            )
        entries[entry["fingerprint"]] = entry
    return entries


def write_baseline(findings: Sequence[Finding], path) -> int:
    """Write the baseline for the given findings; returns entry count.

    Entries are sorted by (path, rule, message) so the committed file
    diffs deterministically.
    """
    ordered = sorted(
        zip(findings, fingerprints(findings)),
        key=lambda pair: (
            _normalized_path(pair[0].path),
            pair[0].rule,
            pair[0].message,
            pair[1],
        ),
    )
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": print_,
                "rule": finding.rule,
                "path": _normalized_path(finding.path),
                "message": finding.message,
            }
            for finding, print_ in ordered
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return len(ordered)


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, dict]
) -> BaselineResult:
    """Split findings into new vs baselined; report stale entries."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen: set = set()
    for finding, print_ in zip(findings, fingerprints(findings)):
        if print_ in baseline:
            baselined.append(finding)
            seen.add(print_)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - seen)
    return BaselineResult(new=new, baselined=baselined, stale=stale)
