"""Incremental analysis cache keyed by file content digests.

The whole-program pass re-parses every file on every run; that is fine
once (< 10 s over this repository) but wasteful in pre-commit, which
runs on every commit touching two files.  The cache stores:

- **per-file findings** keyed by the file's content digest (plus the
  analyzer version and active rule set), so per-file rule results for
  untouched files are served without re-parsing;
- **whole-program findings** keyed by the digest of *all* file digests
  — any edit anywhere invalidates the cross-module result, which is
  the only sound granularity for an interprocedural pass.

Entries are plain JSON under the cache directory; a corrupt or
version-mismatched entry is treated as a miss and recomputed (the same
corrupt→recompute policy as the sweep cache).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.linter import Finding

#: Bump when rule semantics change so stale caches self-invalidate.
ANALYSIS_VERSION = "2"


def _finding_to_json(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "end_line": finding.end_line,
        "severity": finding.severity,
    }


def _finding_from_json(data: dict) -> Finding:
    return Finding(
        rule=data["rule"],
        path=data["path"],
        line=data["line"],
        col=data["col"],
        message=data["message"],
        end_line=data.get("end_line", 0),
        severity=data.get("severity", "error"),
    )


def file_digest(source: bytes) -> str:
    """Content digest of one file's bytes."""
    return hashlib.blake2b(source, digest_size=16).hexdigest()


class AnalysisCache:
    """On-disk findings cache for the incremental pass."""

    def __init__(self, root, rule_ids: Iterable[str] = ()) -> None:
        self.root = Path(root)
        token = hashlib.blake2b(digest_size=8)
        token.update(ANALYSIS_VERSION.encode())
        for rule_id in sorted(rule_ids):
            token.update(b"\x00")
            token.update(rule_id.encode())
        #: Version+ruleset discriminator mixed into every key.
        self.token = token.hexdigest()

    # -- keys -----------------------------------------------------------------

    def file_key(self, digest: str) -> str:
        return f"file-{self.token}-{digest}"

    def project_key(self, digests: Dict[str, str]) -> str:
        """One key over the whole project state (rel path -> digest)."""
        rollup = hashlib.blake2b(digest_size=16)
        for rel in sorted(digests):
            rollup.update(rel.encode())
            rollup.update(b"\x00")
            rollup.update(digests[rel].encode())
            rollup.update(b"\x00")
        return f"project-{self.token}-{rollup.hexdigest()}"

    # -- storage --------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[List[Finding]]:
        """Cached findings for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        try:
            return [
                _finding_from_json(item) for item in entry["findings"]
            ]
        except (KeyError, TypeError):
            return None

    def put(self, key: str, findings: Sequence[Finding]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "findings": [_finding_to_json(f) for f in findings],
        }
        tmp = self._path(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        tmp.replace(self._path(key))
