"""The simlint driver: parse files, run rules, apply suppressions.

The linter is deliberately dependency-free (stdlib ``ast`` only) so it
can run in CI before any simulation dependency is installed.  Rules live
in :mod:`repro.analysis.rules`; each is a small object with an ``id``,
a one-line ``summary``, an ``applies(ctx)`` path filter, and a
``check(ctx)`` generator yielding :class:`Finding`.

**Suppressions.** A finding is discarded when any physical line spanned
by the flagged statement carries a comment of the form::

    do_something()  # simlint: disable=RULE
    other_thing()   # simlint: disable=rule-a,rule-b  (optional reason)
    anything()      # simlint: disable=all

The rule list is comma-separated rule ids; ``all`` suppresses every
rule on that line.  Suppressions are intentionally per-line — there is
no file-level or block-level escape hatch, so every waiver is visible
next to the code it excuses.

**Module-relative paths.** Rules scope themselves by where a file sits
in the package (``engine/…``, ``datacenter/…``, ``tests/…``).  The
linter derives that relative path from the filesystem path: everything
after the last ``/repro/`` segment for library code, ``tests/…`` for
the test tree, and the bare filename otherwise.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence


class LintError(RuntimeError):
    """Raised for unusable inputs (missing paths, unreadable files)."""


#: Matches ``# simlint: disable=rule-a,rule-b`` anywhere in a line.
_SUPPRESSION = re.compile(
    r"#\s*simlint:\s*disable=([a-zA-Z0-9_\-]+(?:\s*,\s*[a-zA-Z0-9_\-]+)*)"
)


#: Finding severities, most severe first.  ``error`` findings gate CI;
#: ``warning`` findings flag probable-but-unproven hazards; ``note``
#: findings are informational forecasts (e.g. fastpath eligibility).
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    rule: str
    path: str  # as given by the caller (display path)
    line: int
    col: int
    message: str
    end_line: int = 0  # last physical line of the flagged statement
    severity: str = "error"

    def location(self) -> str:
        """``path:line:col`` rendering used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> tuple:
        """The canonical report order: (path, line, col, rule)."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        """JSON-safe form for ``--format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    path: str  # display path
    rel: str  # package-relative path, e.g. "engine/simulation.py"
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def finding(
        self,
        rule_id: str,
        node: ast.AST,
        message: str,
        severity: str = "error",
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule_id,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            end_line=getattr(node, "end_lineno", line) or line,
            severity=severity,
        )


def relative_module_path(path: Path) -> str:
    """Package-relative path used for rule scoping (see module docstring)."""
    posix = path.as_posix()
    marker = "/repro/"
    index = posix.rfind(marker)
    if index >= 0:
        return posix[index + len(marker):]
    test_marker = "/tests/"
    index = posix.rfind(test_marker)
    if index >= 0:
        return "tests/" + posix[index + len(test_marker):]
    if posix.startswith("tests/"):
        return posix
    return path.name


def suppressed_rules(lines: Sequence[str], start: int, end: int) -> set:
    """Rule ids suppressed on any physical line in [start, end] (1-based)."""
    ids: set = set()
    for line_number in range(max(1, start), min(len(lines), end) + 1):
        match = _SUPPRESSION.search(lines[line_number - 1])
        if match:
            ids.update(
                part.strip() for part in match.group(1).split(",")
            )
    return ids


def _active_rules(
    select: Optional[Iterable[str]], disable: Optional[Iterable[str]]
) -> List:
    from repro.analysis.rules import RULES

    selected = set(select) if select else None
    disabled = set(disable) if disable else set()
    unknown = (selected or set()) | disabled
    unknown -= set(RULES)
    if unknown:
        raise LintError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return [
        rule
        for rule_id, rule in sorted(RULES.items())
        if (selected is None or rule_id in selected)
        and rule_id not in disabled
    ]


def lint_source(
    source: str,
    rel: str,
    path: Optional[str] = None,
    select: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module given as a source string.

    ``rel`` is the package-relative path rules scope on (e.g.
    ``"engine/simulation.py"`` or ``"tests/test_foo.py"``); ``path`` is
    the display path used in findings (defaults to ``rel``).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        raise LintError(
            f"{path or rel}:{error.lineno}: syntax error: {error.msg}"
        ) from error
    ctx = ModuleContext(
        path=path or rel,
        rel=rel,
        tree=tree,
        lines=source.splitlines(),
    )
    findings: List[Finding] = []
    for rule in _active_rules(select, disable):
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            suppressed = suppressed_rules(
                ctx.lines, finding.line, finding.end_line or finding.line
            )
            if finding.rule in suppressed or "all" in suppressed:
                continue
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: Path,
    select: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    try:
        source = Path(path).read_text()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from error
    return lint_source(
        source,
        rel=relative_module_path(Path(path)),
        path=str(path),
        select=select,
        disable=disable,
    )


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            yield path
        else:
            raise LintError(f"no such file or directory: {path}")


def lint_paths(
    paths: Iterable,
    select: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
) -> tuple:
    """Lint every ``*.py`` file under ``paths``.

    Returns ``(findings, files_scanned)``.  The finding list is sorted
    globally by ``(path, line, col, rule)`` — not by filesystem
    iteration order — so text/JSON/SARIF reports and baseline diffs are
    byte-stable across machines and path-argument orderings.
    """
    findings: List[Finding] = []
    scanned = 0
    seen: set = set()
    for path in iter_python_files(paths):
        # Overlapping path arguments (e.g. `src src/repro`) must not
        # double-report a file.
        resolved = Path(path).resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        findings.extend(lint_file(path, select=select, disable=disable))
        scanned += 1
    findings.sort(key=Finding.sort_key)
    return findings, scanned
