"""Correctness tooling: static analysis + runtime determinism sanitizer.

BigHouse's statistics stack (runs-up independence, online histograms,
convergence-terminated measurement) is only trustworthy if every random
draw is seed-deterministic and the serial/parallel and prefetch-on/off
configurations are step-identical.  This package enforces those
invariants two ways:

- **simlint** (:mod:`repro.analysis.linter` / :mod:`repro.analysis.rules`)
  — an AST static-analysis pass run as ``python -m repro.analysis``.  It
  checks simulation-correctness rules (no global RNG, no wall-clock in
  hot paths, the ``prefetch_safe`` declaration contract, no event-record
  mutation outside the engine, no float ``==`` on simulated time, no
  lambdas crossing the pickled parallel protocol).  Findings can be
  suppressed per line with ``# simlint: disable=RULE``.

- **the whole-program pass** (``--whole-program``) — a project-wide
  symbol table (:mod:`repro.analysis.symbols`) and call graph
  (:mod:`repro.analysis.callgraph`) feed two cross-module analyses:
  RNG/host-clock taint dataflow (:mod:`repro.analysis.dataflow`) and
  slave-reachable shared-state race detection
  (:mod:`repro.analysis.races`).  Production surface: severity levels,
  a committed baseline (:mod:`repro.analysis.baseline`), SARIF 2.1.0
  output (:mod:`repro.analysis.sarif`), and an incremental cache
  keyed by file digests (:mod:`repro.analysis.cache`).

- **the model lint** (:mod:`repro.analysis.modellint`, surfaced as
  ``repro run --lint`` / ``repro sweep --lint``) — static validation
  of config documents and SweepSpecs against ``repro.theory`` and the
  seed lineage: unstable (rho >= 1) grid points, seed collisions,
  cache-digest-unstable constructs, fastpath qualification forecasts.

- **the determinism sanitizer** (:mod:`repro.analysis.sanitizer`) — an
  opt-in runtime probe (``Experiment(..., sanitize=True)`` or
  ``repro run --sanitize``) that hashes the event-dispatch stream and
  RNG block boundaries so A/B configurations (prefetch on vs off,
  serial vs process backends) can be asserted bit-identical, and that
  cross-checks every prefetched block against per-draw replay.

See ``docs/analysis.md`` for the rule catalog and extension guide.
"""

from repro.analysis.baseline import (
    apply_baseline,
    fingerprints,
    load_baseline,
    write_baseline,
)
from repro.analysis.linter import (
    SEVERITIES,
    Finding,
    LintError,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.project import (
    WHOLE_PROGRAM_RULES,
    all_rule_ids,
    analyze_project,
)
from repro.analysis.rules import RULES, Rule, register_rule
from repro.analysis.sarif import to_sarif, validate_sarif

__all__ = [
    "Finding",
    "LintError",
    "SEVERITIES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Rule",
    "RULES",
    "register_rule",
    "WHOLE_PROGRAM_RULES",
    "all_rule_ids",
    "analyze_project",
    "apply_baseline",
    "fingerprints",
    "load_baseline",
    "write_baseline",
    "to_sarif",
    "validate_sarif",
]
