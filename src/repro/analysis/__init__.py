"""Correctness tooling: static analysis + runtime determinism sanitizer.

BigHouse's statistics stack (runs-up independence, online histograms,
convergence-terminated measurement) is only trustworthy if every random
draw is seed-deterministic and the serial/parallel and prefetch-on/off
configurations are step-identical.  This package enforces those
invariants two ways:

- **simlint** (:mod:`repro.analysis.linter` / :mod:`repro.analysis.rules`)
  — an AST static-analysis pass run as ``python -m repro.analysis``.  It
  checks simulation-correctness rules (no global RNG, no wall-clock in
  hot paths, the ``prefetch_safe`` declaration contract, no event-record
  mutation outside the engine, no float ``==`` on simulated time, no
  lambdas crossing the pickled parallel protocol).  Findings can be
  suppressed per line with ``# simlint: disable=RULE``.

- **the determinism sanitizer** (:mod:`repro.analysis.sanitizer`) — an
  opt-in runtime probe (``Experiment(..., sanitize=True)`` or
  ``repro run --sanitize``) that hashes the event-dispatch stream and
  RNG block boundaries so A/B configurations (prefetch on vs off,
  serial vs process backends) can be asserted bit-identical, and that
  cross-checks every prefetched block against per-draw replay.

See ``docs/analysis.md`` for the rule catalog and extension guide.
"""

from repro.analysis.linter import (
    Finding,
    LintError,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import RULES, Rule, register_rule

__all__ = [
    "Finding",
    "LintError",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Rule",
    "RULES",
    "register_rule",
]
