"""SARIF 2.1.0 output for simlint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI surfaces ingest — GitHub code scanning, VS Code SARIF
viewers, and review dashboards all consume it directly, which is how
whole-program findings show up inline on pull requests instead of in a
build log.  This module emits the minimal conforming subset: one run,
the tool's rule catalog (every rule that *could* fire, not just those
that did), and one result per finding with a physical location.

Severity mapping: simlint ``error``/``warning``/``note`` map onto the
identically named SARIF ``level`` values.  Baselined findings (when a
baseline was applied) carry ``baselineState: "unchanged"`` so viewers
can fold them; new findings carry ``baselineState: "new"``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.analysis.linter import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "simlint"
TOOL_URI = "https://example.invalid/docs/analysis.md"

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _uri(path: str) -> str:
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    return uri


def _rule_descriptor(rule_id: str, summary: str) -> dict:
    return {
        "id": rule_id,
        "shortDescription": {"text": summary or rule_id},
        "helpUri": TOOL_URI,
    }


def to_sarif(
    findings: Sequence[Finding],
    rules: Optional[Dict[str, str]] = None,
    baseline_state: Optional[Dict[int, str]] = None,
    tool_version: str = "1.0.0",
) -> dict:
    """Build a SARIF 2.1.0 log document.

    ``rules`` maps rule id -> one-line summary for the tool catalog
    (defaults to the ids present in the findings).  ``baseline_state``
    maps finding *index* -> ``"new"`` / ``"unchanged"`` when a baseline
    was applied.
    """
    catalog = dict(rules or {})
    for finding in findings:
        catalog.setdefault(finding.rule, "")
    driver_rules = [
        _rule_descriptor(rule_id, summary)
        for rule_id, summary in sorted(catalog.items())
    ]
    rule_index = {
        descriptor["id"]: position
        for position, descriptor in enumerate(driver_rules)
    }
    results = []
    for position, finding in enumerate(findings):
        result = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _uri(finding.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": max(1, finding.col),
                            "endLine": max(
                                1, finding.end_line or finding.line
                            ),
                        },
                    }
                }
            ],
        }
        if baseline_state and position in baseline_state:
            result["baselineState"] = baseline_state[position]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": TOOL_URI,
                        "rules": driver_rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }


def validate_sarif(document: dict) -> Iterable[str]:
    """Self-check the invariants the 2.1.0 schema requires of our subset.

    Returns an iterable of problem strings (empty = valid).  This is
    not a full JSON-schema validator — it asserts exactly the
    properties our emitter promises, so tests fail loudly if the shape
    regresses.
    """
    problems = []
    if document.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    if "$schema" not in document:
        problems.append("missing $schema")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems
    for run_number, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            problems.append(f"runs[{run_number}]: tool.driver.name missing")
        rule_ids = [rule.get("id") for rule in driver.get("rules", [])]
        if len(rule_ids) != len(set(rule_ids)):
            problems.append(f"runs[{run_number}]: duplicate rule ids")
        for number, result in enumerate(run.get("results", [])):
            where = f"runs[{run_number}].results[{number}]"
            if not result.get("ruleId"):
                problems.append(f"{where}: ruleId missing")
            elif result["ruleId"] not in rule_ids:
                problems.append(
                    f"{where}: ruleId {result['ruleId']!r} not in "
                    "tool.driver.rules"
                )
            if result.get("level") not in ("error", "warning", "note",
                                           "none"):
                problems.append(f"{where}: bad level {result.get('level')!r}")
            message = result.get("message", {})
            if not isinstance(message, dict) or "text" not in message:
                problems.append(f"{where}: message.text missing")
            for location in result.get("locations", []):
                region = location.get("physicalLocation", {}).get(
                    "region", {}
                )
                start_line = region.get("startLine")
                if not isinstance(start_line, int) or start_line < 1:
                    problems.append(
                        f"{where}: region.startLine must be a positive int"
                    )
    return problems
