"""Domain model lint: static validation of configs and SweepSpecs.

The AST rules catch determinism hazards in *code*; this pass catches
hazards in *data* — the config documents and sweep specs that drive
experiments.  It cross-checks them against the repository's own domain
facts (``repro.theory``, the seed-derivation lineage, the sweep cache's
content addressing, and the fastpath engine's eligibility test) before
any simulation runs:

``unstable-point``
    A (grid point's) workload offers ``rho >= 1`` to its server pool —
    :func:`repro.theory.utilization` says the queue has no steady
    state, so the acceptance loop would burn its full event budget and
    report garbage.  Near-saturation points (``rho >= 0.95``) get a
    warning: stable, but convergence is painfully slow.

``seed-collision``
    Two points pin the same explicit seed, or an explicit seed equals
    another point's derived lineage seed — their sample streams would
    be identical, silently correlating "independent" replicas.

``seed-override-ignored``
    A ``config``-kind sweep sets a ``seed`` axis/param or a base seed:
    the runner derives each point's seed from the master lineage *after*
    applying params, so the explicit value is silently discarded.  For
    ``factory``/``task`` kinds an explicit ``seed`` param is worse — the
    runner already passes ``seed`` positionally, so the call crashes
    with a duplicate-argument ``TypeError``.

``digest-unstable``
    The spec contains constructs the sweep cache cannot address stably:
    ``__main__:``-anchored factory references (resolve differently per
    entry point, unimportable in slaves) or non-finite floats (NaN
    breaks canonical-JSON equality, so cached results can never hit).

``fastpath-forecast``
    For ``engine = "auto"`` sweeps, a note per point that will *miss*
    the vectorized fastpath and why (``qualifies()``'s reason);
    for ``engine = "fastpath"``, a non-qualifying point is an error —
    the run would die with :class:`~repro.engine.fastpath.FastpathError`.

``spec-error``
    The document cannot be built at all (malformed workload/metrics,
    unknown distribution, non-canonicalizable values, …).

Findings reuse :class:`~repro.analysis.linter.Finding` — same severity
levels, same deterministic ordering, same SARIF emission — but anchor
to the spec/config *file* (line 1: TOML/JSON decoding drops line
information).  Heavy domain imports happen inside functions so that
``repro.analysis`` stays importable without numpy.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.analysis.linter import Finding

#: Model-lint rule catalog: id -> one-line summary.
MODEL_RULES: Dict[str, str] = {
    "unstable-point": (
        "no grid point may offer rho >= 1 to its server pool "
        "(no steady state; the acceptance loop cannot converge)"
    ),
    "seed-collision": (
        "no two points may share a seed (explicit duplicates, or an "
        "explicit seed shadowing another point's derived lineage seed)"
    ),
    "seed-override-ignored": (
        "explicit seed params are discarded by the derived lineage "
        "(config kind) or crash the factory call (factory/task kinds)"
    ),
    "digest-unstable": (
        "no spec construct the sweep cache cannot content-address "
        "stably (__main__: factory refs, non-finite floats)"
    ),
    "fastpath-forecast": (
        "forecast which points qualify for the vectorized fastpath "
        "engine; forced-fastpath specs must qualify everywhere"
    ),
    "multiserver-misfit": (
        "gang jobs must fit their cluster (max servers_needed <= "
        "cluster servers) and gang workloads need a gang-aware station"
    ),
    "clone-overload": (
        "replicated load must stay stable: clone count x rho < 1, or "
        "the cloned replicas saturate the pool"
    ),
    "spec-error": "the spec/config document must build at all",
}

#: rho at and above which a point is statically hopeless.
RHO_UNSTABLE = 1.0
#: rho at and above which convergence is slow enough to warn about.
RHO_SLOW = 0.95


def _finding(
    path: str, rule: str, message: str, severity: str = "error"
) -> Finding:
    return Finding(
        rule=rule, path=path, line=1, col=1,
        message=message, end_line=1, severity=severity,
    )


def _walk_floats(value, where: str, out: List[str]) -> None:
    """Collect locations of non-finite floats in a plain-data tree."""
    if isinstance(value, float):
        if not math.isfinite(value):
            out.append(f"{where} = {value!r}")
    elif isinstance(value, dict):
        for key, item in value.items():
            _walk_floats(item, f"{where}.{key}", out)
    elif isinstance(value, (list, tuple)):
        for position, item in enumerate(value):
            _walk_floats(item, f"{where}[{position}]", out)


# -- single config ------------------------------------------------------------


def lint_config(
    config: dict,
    path: str = "<config>",
    engine: Optional[str] = None,
    label: str = "",
) -> List[Finding]:
    """Model-lint one experiment config document.

    ``engine`` overrides the document's engine (as ``repro run
    --engine`` and sweep specs do); ``label`` prefixes messages when the
    config is one point of a sweep.
    """
    from repro.config.loader import ConfigError, build_workload
    from repro.theory import utilization
    from repro.workloads.workload import WorkloadError

    findings: List[Finding] = []
    prefix = f"{label}: " if label else ""
    if not isinstance(config, dict):
        return [_finding(
            path, "spec-error",
            f"{prefix}config must be an object, got "
            f"{type(config).__name__}",
        )]

    server_spec = config.get("servers", {})
    if not isinstance(server_spec, dict):
        server_spec = {}
    total_cores = server_spec.get("count", 1) * server_spec.get("cores", 1)
    speed = server_spec.get("speed", 1.0)
    cluster_spec = config.get("cluster")
    if isinstance(cluster_spec, dict):
        # Gang-scheduled cluster: the pool is its server count.
        total_cores = cluster_spec.get("servers", 1)
        speed = cluster_spec.get("speed", 1.0)
    balancer_spec = config.get("balancer")
    clone_factor = 1
    if isinstance(balancer_spec, dict) and (
        balancer_spec.get("policy") == "cloning"
    ):
        clone_factor = max(1, int(balancer_spec.get("clones", 2)))

    workload_spec = dict(config.get("workload", {}) or {})
    declared_load = workload_spec.get("load")
    workload = None
    if isinstance(declared_load, (int, float)) and declared_load >= 1.0:
        # at_load would refuse this outright; report it as the model
        # problem it is rather than a build failure.
        findings.append(_finding(
            path, "unstable-point",
            f"{prefix}workload.load = {declared_load} gives rho = "
            f"{float(declared_load):.3f} >= 1: no steady state, the "
            "acceptance test cannot converge",
        ))
    else:
        workload_spec.setdefault("cores_for_load", total_cores)
        try:
            workload = build_workload(workload_spec)
        except (ConfigError, WorkloadError, ValueError) as error:
            findings.append(_finding(
                path, "spec-error",
                f"{prefix}workload does not build: {error}",
            ))
        if workload is not None:
            mean_need = getattr(workload, "mean_servers_needed", 1.0)
            try:
                rho = utilization(
                    workload.arrival_rate,
                    workload.peak_qps,
                    max(1, total_cores),
                ) / max(speed, 1e-12) * mean_need
            except (ValueError, ZeroDivisionError) as error:
                findings.append(_finding(
                    path, "spec-error",
                    f"{prefix}cannot evaluate offered load: {error}",
                ))
            else:
                if rho >= RHO_UNSTABLE:
                    findings.append(_finding(
                        path, "unstable-point",
                        f"{prefix}offered load rho = {rho:.3f} >= 1 "
                        f"across {total_cores} core(s): no steady "
                        "state, the acceptance test cannot converge",
                    ))
                elif rho >= RHO_SLOW:
                    findings.append(_finding(
                        path, "unstable-point",
                        f"{prefix}offered load rho = {rho:.3f} is near "
                        "saturation; convergence will be very slow",
                        severity="warning",
                    ))
                elif clone_factor * rho >= RHO_UNSTABLE:
                    # Synchronized clone-to-d multiplies every backend's
                    # offered load by d; a stable-looking rho can still
                    # saturate the pool once replicated.
                    findings.append(_finding(
                        path, "clone-overload",
                        f"{prefix}clone count {clone_factor} x rho = "
                        f"{clone_factor * rho:.3f} >= 1: the replicated "
                        "load saturates the pool; lower the clone count "
                        "or the offered load",
                    ))
            findings.extend(_check_multiserver_fit(
                workload, cluster_spec, path, prefix
            ))

    findings.extend(_forecast_fastpath(config, path, engine, prefix))
    findings.sort(key=Finding.sort_key)
    return findings


def _check_multiserver_fit(
    workload, cluster_spec, path: str, prefix: str
) -> List[Finding]:
    """Gang workloads must have a gang-aware station that fits them."""
    need_dist = getattr(workload, "servers_needed", None)
    if need_dist is None:
        return []
    if not isinstance(cluster_spec, dict):
        return [_finding(
            path, "multiserver-misfit",
            f"{prefix}workload draws servers_needed but there is no "
            "'cluster' section: plain servers ignore gang needs and "
            "the results silently model single-server jobs",
            severity="warning",
        )]
    n_servers = cluster_spec.get("servers", 1)
    max_value = getattr(need_dist, "max_value", None)
    if not callable(max_value):
        return []
    largest = max_value()
    if largest > n_servers:
        return [_finding(
            path, "multiserver-misfit",
            f"{prefix}servers_needed can draw {largest:g} but the "
            f"cluster has only {n_servers} server(s): such jobs can "
            "never be placed and the run dies at their first arrival",
        )]
    return []


def _forecast_fastpath(
    config: dict, path: str, engine: Optional[str], prefix: str
) -> List[Finding]:
    """Predict ``qualifies()`` for auto/fastpath engines, statically."""
    from repro.config.loader import ConfigError, build_experiment
    from repro.engine.fastpath import qualifies
    from repro.workloads.workload import WorkloadError

    effective = engine if engine is not None else config.get("engine", "event")
    if effective not in ("auto", "fastpath"):
        return []
    try:
        experiment = build_experiment(config, engine=effective)
    except (ConfigError, WorkloadError, ValueError) as error:
        return [_finding(
            path, "spec-error",
            f"{prefix}experiment does not build: {error}",
        )]
    outcome = qualifies(experiment)
    if outcome.ok:
        return []
    if effective == "fastpath":
        return [_finding(
            path, "fastpath-forecast",
            f"{prefix}engine = 'fastpath' is forced but the model does "
            f"not qualify ({outcome.reason}); the run will fail with "
            "FastpathError",
        )]
    return [_finding(
        path, "fastpath-forecast",
        f"{prefix}model will take the event engine, not the fastpath "
        f"({outcome.reason})",
        severity="note",
    )]


# -- whole sweep specs --------------------------------------------------------


def lint_spec(spec, path: str = "<spec>") -> List[Finding]:
    """Model-lint a :class:`~repro.sweep.spec.SweepSpec`.

    Static only — nothing is simulated.  Per-point config checks run
    through :func:`lint_config` on the same materialized document the
    runner would execute (params applied, then the derived seed).
    """
    from repro.sweep.spec import SweepError, apply_params

    findings: List[Finding] = []

    # Digest stability of the raw spec payload.
    non_finite: List[str] = []
    _walk_floats(spec.base, "base", non_finite)
    _walk_floats(spec.axes, "axes", non_finite)
    _walk_floats(list(spec.grid), "grid", non_finite)
    _walk_floats(spec.factory_kwargs, "factory_kwargs", non_finite)
    for where in non_finite:
        findings.append(_finding(
            path, "digest-unstable",
            f"non-finite float {where}: NaN/Inf breaks canonical-JSON "
            "equality, so cache digests can never match",
        ))
    ref = None
    try:
        ref = spec.factory_ref
    except SweepError as error:
        findings.append(_finding(path, "spec-error", str(error)))
    if ref is not None and ref.startswith("__main__:"):
        findings.append(_finding(
            path, "digest-unstable",
            f"factory {ref!r} is anchored to __main__: slaves cannot "
            "import it and its digest changes with the entry point; "
            "move the factory into an importable module",
        ))

    try:
        points = spec.points()
    except (SweepError, RuntimeError) as error:
        findings.append(_finding(
            path, "seed-collision",
            f"seed lineage cannot enumerate the grid: {error}",
        ))
        findings.sort(key=Finding.sort_key)
        return findings

    # Seed hygiene across the whole grid.
    derived = {point.seed: point for point in points}
    explicit: Dict[int, List] = {}
    base_seed = spec.base.get("seed") if isinstance(spec.base, dict) else None
    if spec.kind == "config" and base_seed is not None:
        findings.append(_finding(
            path, "seed-override-ignored",
            f"base seed = {base_seed} is replaced by each point's "
            "derived lineage seed; remove it or change the sweep's "
            "master seed instead",
            severity="note",
        ))
    for point in points:
        if "seed" not in point.params:
            continue
        value = point.params["seed"]
        if spec.kind == "config":
            findings.append(_finding(
                path, "seed-override-ignored",
                f"point {point.index} ({point.name}): explicit seed = "
                f"{value!r} is silently discarded — the runner assigns "
                f"the derived lineage seed {point.seed} after applying "
                "params",
                severity="warning",
            ))
        else:
            findings.append(_finding(
                path, "seed-override-ignored",
                f"point {point.index} ({point.name}): 'seed' param "
                "collides with the runner's positional seed argument; "
                "the factory call will crash with TypeError",
            ))
        if isinstance(value, int):
            explicit.setdefault(value, []).append(point)

    for value, holders in sorted(explicit.items()):
        if len(holders) > 1:
            labels = ", ".join(str(p.index) for p in holders)
            findings.append(_finding(
                path, "seed-collision",
                f"points {labels} all pin seed = {value}: their sample "
                "streams would be identical, not independent",
            ))
        other = derived.get(value)
        if other is not None and (
            len(holders) > 1 or other.index != holders[0].index
        ):
            findings.append(_finding(
                path, "seed-collision",
                f"explicit seed = {value} on point "
                f"{holders[0].index} equals the derived seed of point "
                f"{other.index}; streams would correlate",
            ))
    seen_derived: Dict[int, int] = {}
    for point in points:
        if point.seed in seen_derived:
            findings.append(_finding(
                path, "seed-collision",
                f"derived seeds collide: points {seen_derived[point.seed]} "
                f"and {point.index} both map to {point.seed}",
            ))
        else:
            seen_derived[point.seed] = point.index

    # Per-point model checks on the materialized config documents.
    if spec.kind == "config":
        engine = spec.engine
        for point in points:
            try:
                config = apply_params(spec.base, point.params)
            except SweepError as error:
                findings.append(_finding(
                    path, "spec-error",
                    f"point {point.index} ({point.name}): {error}",
                ))
                continue
            config["seed"] = point.seed
            findings.extend(lint_config(
                config,
                path=path,
                engine=engine,
                label=f"point {point.index} ({point.name})",
            ))

    findings.sort(key=Finding.sort_key)
    return findings


def has_errors(findings) -> bool:
    """True when any finding is error-severity (lint exit code 1)."""
    return any(f.severity == "error" for f in findings)
