"""Runtime determinism sanitizer: hash the event stream, catch RNG drift.

The statistics stack assumes that a seeded run is *one* well-defined
sequence of events no matter how it is executed: prefetched or
per-draw, serial or process-parallel.  The sanitizer makes that
assumption checkable at run time:

- :class:`DeterminismProbe` — attached to a
  :class:`~repro.engine.simulation.Simulation` via
  ``Experiment(..., sanitize=True)`` (or ``Simulation.enable_sanitizer``
  directly).  It folds every dispatched event's timestamp into a
  streaming BLAKE2 hash (the **event digest**) and every prefetch block
  refill into a second hash (the **RNG digest**).  Two runs that
  dispatch the same events at the same virtual times produce the same
  event digest; the RNG digest additionally pins where block boundaries
  fell, so it is only comparable between runs with the same prefetch
  configuration.

- while a probe with ``verify_prefetch`` is attached, every
  :class:`~repro.distributions.prefetch.PrefetchSampler` refill is
  cross-checked: the block draw is replayed per-draw from a clone of
  the generator state and must consume the generator bit-identically
  and produce the same values, else
  :class:`~repro.distributions.prefetch.PrefetchContractError` is
  raised naming the offending distribution.

- :func:`verify_prefetch_determinism` and
  :func:`verify_backend_determinism` are the two canonical A/B checks:
  prefetch-on vs prefetch-off event streams, and serial vs process
  backend per-slave event streams.  Both take an experiment ``factory``
  with the standard ``factory(seed, **kwargs) -> Experiment`` shape
  used by :mod:`repro.parallel`; the factory must forward ``prefetch``
  and ``sanitize`` keyword arguments to :class:`Experiment` (the
  process-backend check additionally requires the factory to be
  picklable, i.e. module-level).

Event digests hash raw IEEE-754 timestamps, which is only sound because
the prefetch contract is *bit*-identical consumption — numpy's scalar
and vectorized draws produce the same bits for every shipped
distribution (pinned by ``tests/test_prefetch.py``).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class SanitizerError(RuntimeError):
    """Raised for sanitizer misuse (no probe attached, bad configuration)."""


@dataclass(frozen=True)
class SanitizerDigest:
    """Snapshot of a probe's accumulated hashes (plain, picklable data)."""

    event_digest: str
    events_hashed: int
    rng_digest: str
    rng_blocks: int

    def to_dict(self) -> dict:
        """JSON-safe form (used by ``repro run --sanitize`` output)."""
        return {
            "event_digest": self.event_digest,
            "events_hashed": self.events_hashed,
            "rng_digest": self.rng_digest,
            "rng_blocks": self.rng_blocks,
        }


class DeterminismProbe:
    """Streaming hasher for the event-dispatch stream and RNG blocks.

    Parameters
    ----------
    verify_prefetch:
        When True (default), prefetch samplers bound while this probe is
        attached replay every block per-draw and raise on any
        divergence.  Set False for hash-only probing (e.g. to observe
        the digest drift a contract violation causes instead of
        stopping on it).
    """

    __slots__ = ("verify_prefetch", "events_hashed", "rng_blocks",
                 "_events", "_rng")

    def __init__(self, verify_prefetch: bool = True):
        self.verify_prefetch = verify_prefetch
        self.events_hashed = 0
        self.rng_blocks = 0
        self._events = hashlib.blake2b(digest_size=16)
        self._rng = hashlib.blake2b(digest_size=16)

    def record_time(self, time: float) -> None:
        """Fold one dispatched event's virtual timestamp into the hash."""
        self._events.update(struct.pack("<d", time))
        self.events_hashed += 1

    def record_block(self, size: int) -> None:
        """Fold one prefetch-block refill (its size) into the RNG hash."""
        self._rng.update(struct.pack("<q", size))
        self.rng_blocks += 1

    def snapshot(self) -> SanitizerDigest:
        """Current digests as immutable plain data."""
        return SanitizerDigest(
            event_digest=self._events.hexdigest(),
            events_hashed=self.events_hashed,
            rng_digest=self._rng.hexdigest(),
            rng_blocks=self.rng_blocks,
        )


@dataclass
class SanitizerCheck:
    """Outcome of one A/B determinism check."""

    name: str
    matched: bool
    digests: Dict[str, SanitizerDigest] = field(default_factory=dict)
    details: str = ""

    def __bool__(self) -> bool:
        return self.matched

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "name": self.name,
            "matched": self.matched,
            "details": self.details,
            "digests": {
                label: digest.to_dict()
                for label, digest in self.digests.items()
            },
        }


def experiment_digest(
    factory: Callable,
    seed: int = 0,
    factory_kwargs: Optional[dict] = None,
    max_events: Optional[int] = None,
) -> SanitizerDigest:
    """Run one sanitized experiment to completion and return its digest."""
    kwargs = dict(factory_kwargs or {})
    kwargs.setdefault("sanitize", True)
    experiment = factory(seed=seed, **kwargs)
    probe = experiment.simulation.probe
    if probe is None:
        raise SanitizerError(
            "factory did not produce a sanitized experiment; it must "
            "forward sanitize=True to Experiment"
        )
    experiment.run(max_events=max_events)
    return probe.snapshot()


def verify_prefetch_determinism(
    factory: Callable,
    seed: int = 0,
    factory_kwargs: Optional[dict] = None,
    max_events: Optional[int] = None,
) -> SanitizerCheck:
    """Assert prefetch-on and prefetch-off runs dispatch identical events.

    Runs ``factory(seed, prefetch=True, sanitize=True, **kwargs)`` and
    the ``prefetch=False`` twin under the same seed and compares event
    digests.  RNG digests are reported but *not* compared — block
    boundaries legitimately differ between the two configurations.
    """
    digests = {}
    for label, prefetch in (("prefetch-on", True), ("prefetch-off", False)):
        kwargs = dict(factory_kwargs or {})
        kwargs["prefetch"] = prefetch
        digests[label] = experiment_digest(
            factory, seed=seed, factory_kwargs=kwargs, max_events=max_events
        )
    on, off = digests["prefetch-on"], digests["prefetch-off"]
    matched = (
        on.event_digest == off.event_digest
        and on.events_hashed == off.events_hashed
    )
    details = (
        "event streams identical"
        if matched
        else (
            f"event streams diverge: prefetch-on hashed "
            f"{on.events_hashed} events ({on.event_digest}), "
            f"prefetch-off hashed {off.events_hashed} events "
            f"({off.event_digest})"
        )
    )
    return SanitizerCheck(
        name="prefetch-determinism",
        matched=matched,
        digests=digests,
        details=details,
    )


def verify_backend_determinism(
    factory: Callable,
    factory_kwargs: Optional[dict] = None,
    n_slaves: int = 2,
    master_seed: int = 0,
    chunk_size: int = 500,
    max_rounds: int = 200,
    **parallel_kwargs,
) -> SanitizerCheck:
    """Assert serial and process backends drive identical slave streams.

    Runs the full master/slave protocol once per backend with sanitized
    slaves and compares each slave's cumulative event digest.  The
    factory must be picklable (module-level) and forward ``sanitize``
    to :class:`Experiment`.
    """
    from repro.parallel.master import ParallelSimulation

    kwargs = dict(factory_kwargs or {})
    kwargs["sanitize"] = True
    per_backend: Dict[str, List[SanitizerDigest]] = {}
    for backend in ("serial", "process"):
        result = ParallelSimulation(
            factory,
            factory_kwargs=kwargs,
            n_slaves=n_slaves,
            master_seed=master_seed,
            chunk_size=chunk_size,
            backend=backend,
            max_rounds=max_rounds,
            **parallel_kwargs,
        ).run()
        if result.slave_digests is None:
            raise SanitizerError(
                f"{backend} backend returned no slave digests; the "
                "factory must forward sanitize=True to Experiment"
            )
        per_backend[backend] = result.slave_digests
    digests = {}
    mismatched = []
    for slave_id, (serial, process) in enumerate(
        zip(per_backend["serial"], per_backend["process"])
    ):
        digests[f"serial-slave-{slave_id}"] = serial
        digests[f"process-slave-{slave_id}"] = process
        if (
            serial.event_digest != process.event_digest
            or serial.events_hashed != process.events_hashed
        ):
            mismatched.append(slave_id)
    matched = not mismatched
    details = (
        f"all {n_slaves} slave event streams identical across backends"
        if matched
        else f"slave(s) {mismatched} diverge between serial and process "
        "backends"
    )
    return SanitizerCheck(
        name="backend-determinism",
        matched=matched,
        digests=digests,
        details=details,
    )
