"""Cross-module call graph over a :class:`~repro.analysis.symbols.ProjectIndex`.

The graph is deliberately *best-effort static*: an edge exists when the
callee can be resolved syntactically — a local function name, an
imported name (following ``from x import y`` chains through package
``__init__`` re-exports), a ``module.attr`` chain on an imported
module, or a ``self.method`` call resolved through the enclosing
class's project-known MRO.  Calls through dynamic dispatch the AST
cannot see (callbacks stored in data structures, ``getattr``) simply
produce no edge; the downstream passes (taint, race detection) are
therefore under-approximate — they miss rather than invent.  That is
the right trade for a CI gate: every finding is real.

Two graph extras the passes rely on:

- **closure containment** — a ``def`` nested inside a function is
  treated as called by its enclosing function (it is reachable the
  moment the enclosing function runs, whether invoked directly or
  escaping as a callback);
- **callable references** — a bare function *name* passed as a call
  argument or assigned (``Process(target=_slave_main)``,
  ``pool.map(run_point, …)``) adds an edge from the referencing
  function, since the reference exists precisely to be called.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.symbols import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class CallSite:
    """One resolved call: caller -> callee at a source location."""

    caller: str  # global function name
    callee: str  # global function name
    node: ast.AST


@dataclass
class CallGraph:
    """Adjacency over global function names, plus per-edge call sites."""

    index: ProjectIndex
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)
    #: functions whose *name* escapes as a value (callback references).
    escaping: Set[str] = field(default_factory=set)

    def add_edge(self, caller: str, callee: str, node: ast.AST) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.sites.append(CallSite(caller=caller, callee=callee, node=node))

    def callees(self, name: str) -> Set[str]:
        return self.edges.get(name, set())

    def reachable(self, entries: Iterable[str]) -> Set[str]:
        """Every function reachable from ``entries`` (entries included)."""
        seen: Set[str] = set()
        stack = [
            entry for entry in entries if entry in self.index.functions
        ]
        seen.update(stack)
        while stack:
            current = stack.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen


class _FunctionScanner(ast.NodeVisitor):
    """Collect call edges out of one function body."""

    def __init__(
        self,
        graph: CallGraph,
        module: ModuleInfo,
        info: FunctionInfo,
    ) -> None:
        self.graph = graph
        self.module = module
        self.info = info
        self.index = graph.index

    # -- resolution -----------------------------------------------------------

    def _resolve_callee(self, func: ast.AST) -> Optional[str]:
        name = dotted(func)
        if name is None:
            return None
        head = name.split(".")[0]
        if head == "self" and self.info.class_name is not None:
            attr = name.split(".", 1)[1] if "." in name else None
            if attr is None or "." in attr:
                return None
            methods = self.index.mro_methods(
                self.module, self.info.class_name
            )
            target = methods.get(attr)
            return target.name if target is not None else None
        resolved = self.index.resolve(self.module, name)
        if resolved is None:
            return None
        target = self.index.function_for(resolved)
        return target.name if target is not None else None

    def _note_reference(self, node: ast.AST) -> None:
        """A function name used as a value: edge + escaping mark."""
        name = dotted(node)
        if name is None:
            return
        resolved = self.index.resolve(self.module, name)
        if resolved is None:
            return
        target = self.index.function_for(resolved)
        if target is not None:
            self.graph.add_edge(self.info.name, target.name, node)
            self.graph.escaping.add(target.name)

    # -- visitors -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        callee = self._resolve_callee(node.func)
        if callee is not None:
            self.graph.add_edge(self.info.name, callee, node)
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                self._note_reference(arg)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, (ast.Name, ast.Attribute)):
            self._note_reference(node.value)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def _nested(self, node) -> None:
        # Closure containment: the nested def runs in (or escapes from)
        # the enclosing function's dynamic extent.
        nested_name = f"{self.info.name}.<locals>.{node.name}"
        nested = FunctionInfo(
            name=nested_name,
            module=self.module.name,
            qualname=f"{self.info.qualname}.<locals>.{node.name}",
            node=node,
            class_name=None,
            params=[arg.arg for arg in node.args.args],
        )
        self.index.functions.setdefault(nested_name, nested)
        self.graph.add_edge(self.info.name, nested_name, node)
        scanner = _FunctionScanner(self.graph, self.module, nested)
        for stmt in node.body:
            scanner.visit(stmt)


def build_callgraph(index: ProjectIndex) -> CallGraph:
    """Resolve every syntactically visible call in the project."""
    graph = CallGraph(index=index)
    for module in list(index.modules.values()):
        for info in list(module.functions.values()):
            scanner = _FunctionScanner(graph, module, info)
            for stmt in info.node.body:
                scanner.visit(stmt)
    return graph


def default_worker_entries(index: ProjectIndex) -> List[str]:
    """The slave/worker entry points of the shipped repro package.

    These are the functions that run inside forked slave or pool-worker
    processes (or per-round inside the serial twin), i.e. the roots the
    race detector's "reachable by parallel code" query starts from.
    Fixture corpora pass their own entry list instead.
    """
    candidates = (
        "repro.parallel.master._process_slave_main",
        "repro.parallel.master.build_slave_experiment",
        "repro.parallel.pool._pool_worker_main",
        "repro.sweep.runner.run_point",
    )
    return [name for name in candidates if name in index.functions]
