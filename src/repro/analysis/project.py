"""The whole-program analysis driver.

``analyze_project`` is the single entry point behind
``python -m repro.analysis --whole-program``: it runs the per-file
rules over every file (served from the incremental cache when
unchanged), builds the project symbol table and call graph once, and
layers the cross-module passes on top:

- :mod:`~repro.analysis.dataflow` — RNG / host-clock taint across
  function and module boundaries;
- :mod:`~repro.analysis.races` — module-level mutable state mutated
  from slave/worker-reachable code.

Whole-program findings honor the same ``# simlint: disable=RULE``
per-line suppressions as per-file rules, and the same deterministic
``(path, line, col, rule)`` report order.

Test modules are excluded from the cross-module passes by default
(tests legitimately build fixed-seed generators and poke shared
fixtures); a fixture corpus *of* hazards analyzes itself by passing
``project_root`` so its files index as library code.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cache import AnalysisCache, file_digest
from repro.analysis.callgraph import build_callgraph, default_worker_entries
from repro.analysis.dataflow import analyze_taint
from repro.analysis.linter import (
    Finding,
    LintError,
    iter_python_files,
    lint_source,
    relative_module_path,
    suppressed_rules,
)
from repro.analysis.races import analyze_races
from repro.analysis.rules import RULES
from repro.analysis.symbols import ProjectIndex, parse_module

#: Whole-program rule catalog: id -> one-line summary (the analogue of
#: ``RULES`` for passes that need the full project, not one module).
WHOLE_PROGRAM_RULES: Dict[str, str] = {
    "rng-taint": (
        "no unseeded/global RNG value reaching a sampling, event, or "
        "merge path, across function and module boundaries"
    ),
    "clock-taint": (
        "no host-clock value reaching a sampling, event, merge, or "
        "seed-derivation path, across function and module boundaries"
    ),
    "shared-state-race": (
        "no module-level mutable state (or closure capture) mutated "
        "from code reachable by slave/worker entry points"
    ),
}


def all_rule_ids() -> List[str]:
    """Every known rule id: per-file registry + whole-program passes."""
    return sorted(set(RULES) | set(WHOLE_PROGRAM_RULES))


def _split_rule_ids(
    ids: Optional[Iterable[str]],
) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Split a user rule-id list into (per-file, whole-program) parts.

    Unknown ids raise :class:`LintError` against the *combined*
    catalog, so ``--select rng-taint`` is legal even though the id is
    not in the per-file registry.
    """
    if ids is None:
        return None, None
    ids = list(ids)
    unknown = [
        rule_id
        for rule_id in ids
        if rule_id not in RULES and rule_id not in WHOLE_PROGRAM_RULES
    ]
    if unknown:
        raise LintError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(all_rule_ids())}"
        )
    per_file = [rule_id for rule_id in ids if rule_id in RULES]
    whole = [rule_id for rule_id in ids if rule_id in WHOLE_PROGRAM_RULES]
    return per_file, whole


def _apply_suppressions(
    findings: List[Finding], index: ProjectIndex
) -> List[Finding]:
    kept = []
    for finding in findings:
        module = index.by_path.get(finding.path)
        if module is not None:
            suppressed = suppressed_rules(
                module.lines, finding.line, finding.end_line or finding.line
            )
            if finding.rule in suppressed or "all" in suppressed:
                continue
        kept.append(finding)
    return kept


def analyze_project(
    paths: Iterable,
    select: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
    project_root: Optional[Path] = None,
    worker_entries: Optional[Iterable[str]] = None,
    cache_dir: Optional[Path] = None,
    include_tests_in_program: bool = False,
) -> Tuple[List[Finding], int]:
    """Run per-file rules plus the whole-program passes.

    Returns ``(findings, files_scanned)`` with findings globally sorted
    by ``(path, line, col, rule)``.  ``worker_entries`` overrides the
    race detector's slave/worker roots (global function names); the
    default is the shipped parallel/pool/sweep entry set.
    ``cache_dir`` enables the incremental cache.
    """
    select_file, select_whole = _split_rule_ids(select)
    disable_file, disable_whole = _split_rule_ids(disable)
    disable_whole = set(disable_whole or ())

    cache = (
        AnalysisCache(cache_dir, rule_ids=all_rule_ids())
        if cache_dir is not None
        else None
    )

    findings: List[Finding] = []
    scanned = 0
    index = ProjectIndex()
    digests: Dict[str, str] = {}
    seen: set = set()

    run_per_file = not (select is not None and not select_file)

    for path in iter_python_files(paths):
        resolved = Path(path).resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            raw = Path(path).read_text()
        except OSError as error:
            raise LintError(f"cannot read {path}: {error}") from error
        if project_root is not None:
            rel = resolved.relative_to(
                Path(project_root).resolve()
            ).as_posix()
        else:
            rel = relative_module_path(Path(path))
        digest = file_digest(raw.encode())
        digests[rel] = digest
        scanned += 1

        # Per-file rules, cache-served when the file is unchanged.
        if run_per_file:
            per_file: Optional[List[Finding]] = None
            key = None
            if cache is not None and select is None and disable is None:
                key = cache.file_key(digest)
                cached = cache.get(key)
                if cached is not None:
                    # Cached findings carry the path they were recorded
                    # under; re-anchor to the current display path.
                    per_file = [
                        Finding(
                            rule=f.rule,
                            path=str(path),
                            line=f.line,
                            col=f.col,
                            message=f.message,
                            end_line=f.end_line,
                            severity=f.severity,
                        )
                        for f in cached
                    ]
            if per_file is None:
                per_file = lint_source(
                    raw,
                    rel=rel,
                    path=str(path),
                    select=select_file,
                    disable=disable_file,
                )
                if cache is not None and key is not None:
                    cache.put(key, per_file)
            findings.extend(per_file)

        # Index for the cross-module passes (tests excluded by default).
        if include_tests_in_program or not rel.startswith("tests/"):
            index.add(parse_module(raw, str(path), rel))

    # Whole-program passes.
    if select is not None:
        active_whole = set(select_whole or ())
    else:
        active_whole = set(WHOLE_PROGRAM_RULES)
    active_whole -= disable_whole

    whole_findings: List[Finding] = []
    if active_whole and index.modules:
        program_key = None
        cached_whole = None
        if cache is not None and select is None and disable is None:
            program_key = cache.project_key(digests)
            cached_whole = cache.get(program_key)
        if cached_whole is not None:
            whole_findings = cached_whole
        else:
            graph = build_callgraph(index)
            if {"rng-taint", "clock-taint"} & active_whole:
                taint = analyze_taint(index, graph)
                whole_findings.extend(
                    f for f in taint if f.rule in active_whole
                )
            if "shared-state-race" in active_whole:
                entries = (
                    list(worker_entries)
                    if worker_entries is not None
                    else default_worker_entries(index)
                )
                whole_findings.extend(analyze_races(index, graph, entries))
            whole_findings = _apply_suppressions(whole_findings, index)
            if cache is not None and program_key is not None:
                cache.put(program_key, whole_findings)

    findings.extend(whole_findings)
    findings.sort(key=Finding.sort_key)
    return findings, scanned
