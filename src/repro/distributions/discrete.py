"""Discrete distributions over finite value sets.

Multiserver jobs draw their *server need* — how many servers a job
holds simultaneously (GPU-training gangs, MPI ranks) — from a discrete
distribution over a handful of sizes, typically powers of two.
:class:`Choice` is that sampler: an explicit (values, weights) table
with exact analytic moments, usable anywhere a
:class:`~repro.distributions.base.Distribution` is (so the existing
prefetch, block-sampling, and fitting machinery applies unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import Distribution, DistributionError


class Choice(Distribution):
    """Finite discrete distribution: ``P[X = values[i]] = weights[i]``.

    Values must be non-negative and strictly increasing is *not*
    required, but duplicates are rejected (merge their weights instead).
    Weights are normalized internally, so any positive relative weights
    work (``weights=None`` means uniform).
    """

    #: Both paths draw one uniform per value (``rng.random`` scalar vs
    #: array) and map it through the same inverse CDF, so generator
    #: consumption and values are bit-equal.
    prefetch_safe = True

    def __init__(self, values, weights=None):
        values = [float(v) for v in values]
        if not values:
            raise DistributionError("Choice needs at least one value")
        if any(v < 0 for v in values):
            raise DistributionError(f"Choice values must be >= 0: {values}")
        if len(set(values)) != len(values):
            raise DistributionError(
                f"Choice values must be unique (merge weights): {values}"
            )
        if weights is None:
            weights = [1.0] * len(values)
        weights = [float(w) for w in weights]
        if len(weights) != len(values):
            raise DistributionError(
                f"{len(values)} values but {len(weights)} weights"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise DistributionError(
                f"Choice weights must be >= 0 with a positive sum: {weights}"
            )
        total = sum(weights)
        self.values = tuple(values)
        self.weights = tuple(w / total for w in weights)
        self._values_arr = np.asarray(self.values, dtype=float)
        # Inverse CDF breakpoints; the last is clamped to exactly 1.0 so
        # a uniform draw of 0.999... can never fall off the table.
        cdf = np.cumsum(self.weights)
        cdf[-1] = 1.0
        self._cdf = cdf

    @classmethod
    def uniform_over(cls, values) -> "Choice":
        """Equal-probability choice over ``values``."""
        return cls(values)

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        return float(self._values_arr[np.searchsorted(self._cdf, u, side="right")])

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise DistributionError(f"cannot draw a negative count: {n}")
        us = rng.random(n)
        return self._values_arr[np.searchsorted(self._cdf, us, side="right")]

    def mean(self) -> float:
        return float(np.dot(self._values_arr, self.weights))

    def variance(self) -> float:
        mean = self.mean()
        second = float(np.dot(self._values_arr * self._values_arr, self.weights))
        return max(0.0, second - mean * mean)

    def max_value(self) -> float:
        """Largest value with positive probability (modellint reads this
        to check a job's server need against the cluster size)."""
        return max(
            v for v, w in zip(self.values, self.weights) if w > 0
        )
