"""Empirical distributions: the representation BigHouse ships workloads in.

The paper (Section 2.2): *"Each workload comprises a pair of distributions,
represented via fine-grained histograms: the client request inter-arrival
distribution and the response service time distribution. ... a typical
distribution occupies less than 1 MB, whereas event traces often require
multi-gigabyte files."*

:class:`EmpiricalDistribution` stores a fine-grained empirical CDF (sorted
support values with cumulative probabilities) and samples by inverse
transform with linear interpolation between knots.  It can be constructed
from raw observations, from explicit (value, probability) tables, or
loaded from the simple text format the original Java BigHouse used for its
``.arr``/``.svc`` files (one value per line, or ``value probability``
pairs).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, Sequence, Union

import numpy as np

from repro.distributions.base import Distribution, DistributionError


class EmpiricalDistribution(Distribution):
    """Inverse-CDF sampler over an empirical distribution table.

    Parameters
    ----------
    values:
        Monotonically non-decreasing support points (all >= 0).
    cdf:
        Cumulative probabilities at each support point; the last entry
        must be 1.0.  If omitted, ``values`` is treated as a raw sample
        and the empirical CDF is built from it.
    """

    def __init__(
        self,
        values: Sequence[float],
        cdf: Sequence[float] = None,
    ):
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise DistributionError("empirical distribution needs >= 1 value")
        if np.any(values < 0):
            raise DistributionError("empirical values must be non-negative")
        if cdf is None:
            values = np.sort(values)
            n = values.size
            cdf = np.arange(1, n + 1, dtype=float) / n
        else:
            cdf = np.asarray(cdf, dtype=float)
            if cdf.shape != values.shape:
                raise DistributionError(
                    f"values ({values.shape}) and cdf ({cdf.shape}) "
                    "must have the same length"
                )
            if np.any(np.diff(values) < 0):
                raise DistributionError("values must be sorted ascending")
            if np.any(np.diff(cdf) < 0) or np.any(cdf < 0) or np.any(cdf > 1):
                raise DistributionError("cdf must be non-decreasing within [0, 1]")
            if not math.isclose(float(cdf[-1]), 1.0, rel_tol=0, abs_tol=1e-9):
                raise DistributionError(f"cdf must end at 1.0, got {cdf[-1]}")
        self._values = values
        self._cdf = cdf
        # Precompute moments by treating the table as a discrete mixture of
        # the knot masses (interpolated sampling shifts these slightly; the
        # knot-mass moments are what the original BigHouse reports).
        masses = np.diff(np.concatenate(([0.0], cdf)))
        self._mean = float(np.sum(masses * values))
        second = float(np.sum(masses * values * values))
        self._variance = max(0.0, second - self._mean * self._mean)

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "EmpiricalDistribution":
        """Build from a raw observation sequence (live-instrumentation log)."""
        return cls(list(samples))

    @classmethod
    def from_distribution(
        cls,
        dist: Distribution,
        rng: np.random.Generator,
        n: int = 100_000,
        knots: int = 10_001,
    ) -> "EmpiricalDistribution":
        """Materialize any distribution as a fine-grained empirical CDF.

        This mirrors how we synthesize the Table-1 workloads: draw a large
        sample from a moment-matched analytic shape and keep only its
        empirical CDF, exactly the artifact a live instrumentation pass
        would have produced.  The table is compressed to ``knots``
        quantile knots (the paper: "a typical distribution occupies less
        than 1 MB"); pass ``knots=None`` to keep every sample.
        """
        if n < 2:
            raise DistributionError(f"need n >= 2 samples, got {n}")
        full = cls(dist.sample_many(rng, n))
        if knots is None or knots >= n:
            return full
        return full.compress(knots)

    def compress(self, knots: int) -> "EmpiricalDistribution":
        """Downsample the CDF table to ``knots`` evenly-spaced quantile
        knots (endpoints always kept), shrinking the on-disk/in-memory
        footprint while preserving the distribution's shape."""
        if knots < 2:
            raise DistributionError(f"need >= 2 knots, got {knots}")
        grid = np.linspace(0.0, 1.0, knots)
        values = self._inverse(grid)
        return EmpiricalDistribution(values, grid)

    # -- sampling ---------------------------------------------------------

    #: One uniform per draw in both paths and np.interp is applied
    #: elementwise identically — bit-equal consumption and values.
    prefetch_safe = True

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._inverse(rng.random()))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self._inverse(rng.random(size=n))

    def _inverse(self, u):
        """Inverse CDF with linear interpolation between knots."""
        return np.interp(u, self._cdf, self._values)

    def quantile(self, q: float) -> float:
        """Exact quantile of the stored table (not a simulated estimate)."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return float(self._inverse(q))

    # -- moments ----------------------------------------------------------

    def mean(self) -> float:
        return self._mean

    def variance(self) -> float:
        return self._variance

    def support(self) -> tuple[float, float]:
        """(min, max) of the stored support."""
        return float(self._values[0]), float(self._values[-1])

    def table(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the (values, cdf) arrays."""
        return self._values.copy(), self._cdf.copy()

    def __len__(self) -> int:
        return int(self._values.size)

    # -- persistence (BigHouse .arr / .svc style text files) --------------

    def save(self, path: Union[str, Path]) -> None:
        """Write a two-column ``value cdf`` text file."""
        path = Path(path)
        with path.open("w") as handle:
            for value, cum in zip(self._values, self._cdf):
                handle.write(f"{value:.12g} {cum:.12g}\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EmpiricalDistribution":
        """Read either a two-column ``value cdf`` file or raw one-per-line
        samples (both formats appear in the original BigHouse release)."""
        path = Path(path)
        values, cdf = [], []
        two_column = None
        with path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if two_column is None:
                    two_column = len(parts) == 2
                if two_column and len(parts) == 2:
                    values.append(float(parts[0]))
                    cdf.append(float(parts[1]))
                elif not two_column and len(parts) == 1:
                    values.append(float(parts[0]))
                else:
                    raise DistributionError(
                        f"{path}:{line_number}: inconsistent column count"
                    )
        if not values:
            raise DistributionError(f"{path}: no data lines")
        if two_column:
            return cls(values, cdf)
        return cls(values)
