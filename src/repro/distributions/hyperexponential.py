"""Two-phase hyperexponential distribution with balanced means.

The standard construction for a non-negative random variable with a given
mean and Cv > 1: with probability ``p1`` draw from an exponential of rate
``r1``, otherwise from rate ``r2``.  "Balanced means" fixes the extra
degree of freedom by making each phase contribute equally to the mean
(p1/r1 == p2/r2), the conventional choice in the queuing literature.

BigHouse's measured workloads all have service Cv between 1.0 and 15
(Table 1); the hyperexponential is how we synthesize equivalents with the
same first two moments (see DESIGN.md substitution table).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import (
    Distribution,
    DistributionError,
    require_positive,
)


class HyperExponential(Distribution):
    """H2 distribution: exponential mixture with two phases."""

    #: Exactly two uniforms per draw in both paths, in the same order,
    #: and both use numpy's log1p — bit-equal consumption and values.
    prefetch_safe = True

    def __init__(self, p1: float, rate1: float, rate2: float):
        if not 0.0 < p1 < 1.0:
            raise DistributionError(f"p1 must be in (0, 1), got {p1}")
        self.p1 = float(p1)
        self.rate1 = require_positive("rate1", rate1)
        self.rate2 = require_positive("rate2", rate2)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "HyperExponential":
        """Balanced-means fit to a target mean and Cv (requires Cv > 1).

        With balanced means, p1/r1 = p2/r2 = mean/2 and the squared Cv
        determines p1 via  p1 = (1 + sqrt((c2-1)/(c2+1))) / 2.
        """
        require_positive("mean", mean)
        if cv <= 1.0:
            raise DistributionError(
                f"hyperexponential requires Cv > 1, got {cv}; "
                "use Gamma/Erlang for Cv <= 1"
            )
        c2 = cv * cv
        p1 = 0.5 * (1.0 + math.sqrt((c2 - 1.0) / (c2 + 1.0)))
        p2 = 1.0 - p1
        rate1 = 2.0 * p1 / mean
        rate2 = 2.0 * p2 / mean
        return cls(p1=p1, rate1=rate1, rate2=rate2)

    def sample(self, rng: np.random.Generator) -> float:
        # Exactly two uniforms per draw (phase select, then inverse-CDF
        # exponential) so the vectorized path below can consume the
        # generator in the identical order — the prefetch_safe contract.
        u = rng.random()
        v = rng.random()
        rate = self.rate1 if u < self.p1 else self.rate2
        # np.log1p, not math.log1p: the two differ by an ulp on some
        # inputs, and sample_many uses numpy's — the values must match
        # bitwise for the prefetch A/B event streams to hash equal.
        return float(-np.log1p(-v) / rate)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(size=2 * n)
        rates = np.where(u[0::2] < self.p1, self.rate1, self.rate2)
        return -np.log1p(-u[1::2]) / rates

    def mean(self) -> float:
        p2 = 1.0 - self.p1
        return self.p1 / self.rate1 + p2 / self.rate2

    def variance(self) -> float:
        p2 = 1.0 - self.p1
        second_moment = 2.0 * (
            self.p1 / (self.rate1 * self.rate1) + p2 / (self.rate2 * self.rate2)
        )
        mean = self.mean()
        return second_moment - mean * mean
