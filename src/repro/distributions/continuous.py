"""Analytic continuous distributions used as building blocks.

These cover the synthetic inter-arrival scenarios in Fig. 5 of the paper
(`Low Cv` -> :class:`Uniform` / :class:`Erlang`, `Exponential` ->
:class:`Exponential`) and the shapes used to synthesize empirical workload
models (:class:`LogNormal`, :class:`Weibull`, :class:`Pareto` for heavy
tails; :class:`Gamma` / :class:`Erlang` for Cv < 1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import (
    Distribution,
    DistributionError,
    require_nonnegative,
    require_positive,
)


class Exponential(Distribution):
    """Exponential distribution with rate ``rate`` (mean ``1/rate``).

    The classic M/M/1 assumption; the paper shows (Fig. 5) that assuming
    it for real internet services badly underestimates tail latency.
    """

    #: Both paths are one rng.exponential call; numpy fills arrays with
    #: the same per-draw routine, so consumption and values are bit-equal.
    prefetch_safe = True

    def __init__(self, rate: float):
        self.rate = require_positive("rate", rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Construct from a mean instead of a rate."""
        return cls(rate=1.0 / require_positive("mean", mean))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=n)

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)


class Deterministic(Distribution):
    """Constant value; the Cv = 0 limit ("Low Cv" loadtester traffic)."""

    #: Neither path consumes the generator at all.
    prefetch_safe = True

    def __init__(self, value: float):
        self.value = require_nonnegative("value", value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value, dtype=float)

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0


class Uniform(Distribution):
    """Uniform distribution on [low, high]."""

    #: Both paths are one rng.uniform call — bit-identical consumption
    #: and values.
    prefetch_safe = True

    def __init__(self, low: float, high: float):
        if high < low:
            raise DistributionError(f"high ({high}) < low ({low})")
        self.low = require_nonnegative("low", low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0


class Gamma(Distribution):
    """Gamma distribution with shape ``k`` and scale ``theta``.

    Cv = 1/sqrt(k), so any Cv <= 1 can be matched with k >= 1 (and Cv > 1
    with k < 1, though the hyperexponential is preferred there because its
    tail better matches measured service distributions).
    """

    #: rng.gamma fills arrays by repeating the scalar rejection sampler,
    #: so consumption and values are bit-equal.
    prefetch_safe = True

    def __init__(self, shape: float, scale: float):
        self.shape = require_positive("shape", shape)
        self.scale = require_positive("scale", scale)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "Gamma":
        """Moment-match: shape = 1/cv^2, scale = mean * cv^2."""
        require_positive("mean", mean)
        require_positive("cv", cv)
        cv_squared = cv * cv
        if cv_squared == 0.0 or not math.isfinite(1.0 / cv_squared):
            raise DistributionError(
                f"cv={cv} too small for a Gamma fit (shape overflows); "
                "use Deterministic"
            )
        shape = 1.0 / cv_squared
        return cls(shape=shape, scale=mean / shape)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.shape, self.scale))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, self.scale, size=n)

    def mean(self) -> float:
        return self.shape * self.scale

    def variance(self) -> float:
        return self.shape * self.scale * self.scale


class Erlang(Gamma):
    """Erlang distribution: Gamma with integer shape ``k``.

    The sum of k exponentials; the standard "low Cv" arrival process.
    """

    def __init__(self, k: int, rate: float):
        if int(k) != k or k < 1:
            raise DistributionError(f"Erlang k must be a positive integer, got {k}")
        require_positive("rate", rate)
        super().__init__(shape=float(k), scale=1.0 / rate)
        self.k = int(k)
        self.rate = float(rate)


class LogNormal(Distribution):
    """Log-normal distribution parameterized by the underlying normal.

    Used to synthesize moderately heavy-tailed service distributions; a
    common good fit for measured request service times.
    """

    #: rng.lognormal repeats the scalar ziggurat per element — bit-equal
    #: consumption and values.
    prefetch_safe = True

    def __init__(self, mu: float, sigma: float):
        self.mu = float(mu)
        self.sigma = require_positive("sigma", sigma)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Moment-match mean and coefficient of variation exactly."""
        require_positive("mean", mean)
        require_positive("cv", cv)
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return cls(mu=mu, sigma=math.sqrt(sigma2))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def variance(self) -> float:
        s2 = self.sigma * self.sigma
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)


class Weibull(Distribution):
    """Weibull distribution with shape ``k`` and scale ``lam``."""

    #: rng.weibull repeats the scalar routine per element and the scale
    #: multiply is plain arithmetic — bit-equal consumption and values.
    prefetch_safe = True

    def __init__(self, shape: float, scale: float):
        self.shape = require_positive("shape", shape)
        self.scale = require_positive("scale", scale)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "Weibull":
        """Moment-match by solving for the shape numerically.

        The Weibull Cv depends only on the shape k (decreasing in k), so
        a bracketed root search pins k, then the scale matches the mean.
        """
        require_positive("mean", mean)
        require_positive("cv", cv)

        def cv_of_shape(k: float) -> float:
            g1 = math.gamma(1.0 + 1.0 / k)
            g2 = math.gamma(1.0 + 2.0 / k)
            return math.sqrt(max(0.0, g2 / (g1 * g1) - 1.0))

        from scipy.optimize import brentq

        lo, hi = 0.05, 50.0
        if not cv_of_shape(hi) <= cv <= cv_of_shape(lo):
            raise DistributionError(
                f"cv={cv} outside the Weibull-representable range "
                f"[{cv_of_shape(hi):.4g}, {cv_of_shape(lo):.4g}]"
            )
        shape = float(brentq(lambda k: cv_of_shape(k) - cv, lo, hi))
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale=scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale * self.scale * (g2 - g1 * g1)


class BoundedPareto(Distribution):
    """Pareto truncated to [low, high] — the standard heavy-tail model
    for request sizes in the systems literature (infinite-variance tails
    do not occur in finite systems; the bound is physical).

    Density proportional to x^(-alpha-1) on [low, high].
    """

    #: One uniform per draw in both paths (bit-equal consumption); the
    #: inverse-CDF pow rounds 1-2 ulp differently under numpy's SIMD
    #: loops, so values agree to ~1e-15 relative, not bitwise.
    prefetch_safe = True

    def __init__(self, alpha: float, low: float, high: float):
        self.alpha = require_positive("alpha", alpha)
        self.low = require_positive("low", low)
        if high <= low:
            raise DistributionError(f"high ({high}) must exceed low ({low})")
        self.high = float(high)

    def _moment(self, k: int) -> float:
        """E[X^k] for the truncated Pareto (closed form)."""
        a, lo, hi = self.alpha, self.low, self.high
        if abs(a - k) < 1e-12:
            # Degenerate exponent: integral produces a log term.
            norm = 1.0 - (lo / hi) ** a
            return a * lo**a * math.log(hi / lo) / norm
        norm = 1.0 - (lo / hi) ** a
        return (
            a * lo**a / norm
            * (lo ** (k - a) - hi ** (k - a))
            / (a - k)
        )

    def mean(self) -> float:
        return self._moment(1)

    def variance(self) -> float:
        mean = self._moment(1)
        return max(0.0, self._moment(2) - mean * mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._inverse(rng.random()))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self._inverse(rng.random(size=n))

    def _inverse(self, u):
        """Inverse CDF of the bounded Pareto."""
        a, lo, hi = self.alpha, self.low, self.high
        ratio = (lo / hi) ** a
        return lo / (1.0 - u * (1.0 - ratio)) ** (1.0 / a)


class Pareto(Distribution):
    """Pareto (Type I) distribution with tail index ``alpha`` and scale ``xm``.

    Models the extreme tails seen in interactive workloads (Shell: Cv = 15).
    The variance only exists for alpha > 2.
    """

    #: One uniform per draw in both paths (the u == 0 guards differ only
    #: on a measure-zero event); the pow transform rounds 1-2 ulp
    #: differently under numpy's SIMD loops — values agree to ~1e-15
    #: relative, not bitwise.
    prefetch_safe = True

    def __init__(self, alpha: float, xm: float):
        self.alpha = require_positive("alpha", alpha)
        self.xm = require_positive("xm", xm)

    def sample(self, rng: np.random.Generator) -> float:
        # Inverse transform: xm * U^(-1/alpha)
        u = rng.random()
        while u == 0.0:  # pragma: no cover - measure-zero guard
            u = rng.random()
        return float(self.xm * u ** (-1.0 / self.alpha))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(size=n)
        u[u == 0.0] = 0.5
        return self.xm * u ** (-1.0 / self.alpha)

    def mean(self) -> float:
        if self.alpha <= 1:
            raise DistributionError(f"Pareto mean undefined for alpha={self.alpha}")
        return self.alpha * self.xm / (self.alpha - 1.0)

    def variance(self) -> float:
        if self.alpha <= 2:
            raise DistributionError(
                f"Pareto variance undefined for alpha={self.alpha}"
            )
        a = self.alpha
        return self.xm * self.xm * a / ((a - 1.0) ** 2 * (a - 2.0))
