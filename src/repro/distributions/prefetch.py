"""Block-prefetched sampling: amortize the numpy Generator crossing.

Every simulated task costs at least two random draws (an inter-arrival
gap and a service demand).  Drawing them one at a time through
``Distribution.sample`` pays a full Python -> numpy crossing per draw
(~1 µs); drawing 4096 at once through ``sample_many`` costs barely more
than one crossing.  :class:`PrefetchSampler` wraps a ``(distribution,
rng)`` pair and serves single draws out of such a block, refilled on
exhaustion.

**Draw-order contract.** A sampler serves the values that repeated
``distribution.sample(rng)`` calls would have produced, in the same
order, consuming the generator *bit-identically* — a seeded run visits
exactly the same underlying uniforms whether prefetching is on or off.
This relies on ``Distribution.prefetch_safe``: a distribution may
declare itself safe only if ``sample_many(rng, n)`` consumes the
generator identically to ``n`` successive ``sample(rng)`` calls (numpy's
array-filling draws satisfy this for single-method samplers; see
``tests/test_prefetch.py`` which pins the property per distribution).
The *transformed* values agree exactly for arithmetic-only transforms
(exponential, uniform, ...) and to within 1-2 ulp for pow/log-based
ones, where numpy's vectorized SIMD kernels round differently from the
scalar libm path — so A/B comparisons of output *estimates* are exact
at the RNG level and float-tolerance at the value level.
Unsafe distributions (e.g. :class:`~repro.distributions.Mixture`, whose
vectorized path draws a multinomial then shuffles) are transparently
served per-draw instead — correctness never depends on the flag being
set, only the speedup does.
"""

from __future__ import annotations

from operator import length_hint

import numpy as np

from repro.distributions.base import Distribution, DistributionError

#: Default draws fetched per block.  Big enough to amortize the numpy
#: crossing to noise, small enough to keep per-stream memory trivial.
DEFAULT_BLOCK = 4096


class PrefetchContractError(DistributionError):
    """A distribution's ``sample_many`` broke the draw-order contract.

    Raised by a verifying :class:`PrefetchSampler` when a block draw
    consumed the generator differently (or produced different values)
    than the same number of per-draw ``sample`` calls would have — i.e.
    the distribution's ``prefetch_safe = True`` declaration is wrong.
    """


class PrefetchSampler:
    """Serve single draws from vectorized blocks of a distribution.

    Parameters
    ----------
    distribution:
        Any :class:`Distribution`.
    rng:
        The stream consumed; never shared with another sampler unless
        draws are strictly sequential between them.
    block_size:
        Draws per refill.  ``1`` disables prefetching (every call is a
        plain ``sample``), which is the A/B "off" configuration.
    verify:
        When True, every block refill is replayed per-draw from a clone
        of the generator state and must consume the generator
        bit-identically and reproduce the same values (within float
        tolerance for pow/log-based transforms), else
        :class:`PrefetchContractError` is raised.  This is the runtime
        check behind ``Experiment(..., sanitize=True)``; it multiplies
        the sampling cost and is meant for verification runs only.
    probe:
        Optional :class:`~repro.analysis.sanitizer.DeterminismProbe`;
        when set, each refill records its block size so the sanitizer
        can pin RNG block boundaries.
    """

    __slots__ = ("distribution", "rng", "block_size", "it", "_vectorized",
                 "verify", "probe")

    #: Relative tolerance for the verify-mode value comparison: numpy's
    #: vectorized SIMD kernels may round pow/log transforms 1-2 ulp
    #: differently from the scalar path (see module docstring); real
    #: contract violations produce entirely different draws.
    VERIFY_RTOL = 1e-9

    def __init__(
        self,
        distribution: Distribution,
        rng: np.random.Generator,
        block_size: int = DEFAULT_BLOCK,
        verify: bool = False,
        probe=None,
    ):
        if block_size < 1:
            raise DistributionError(f"block_size must be >= 1, got {block_size}")
        self.distribution = distribution
        self.rng = rng
        self.block_size = int(block_size)
        self.verify = verify
        self.probe = probe
        self._vectorized = (
            block_size > 1 and getattr(distribution, "prefetch_safe", False)
        )
        # The buffered block, held as a list-iterator: ``next(it, None)``
        # serves a draw entirely at C level (no index bookkeeping), and
        # the block is converted via ``.tolist()`` so draws come out as
        # Python floats, which downstream clock arithmetic handles faster
        # than numpy scalars.  Hot call sites may inline the fast path:
        # ``v = next(sampler.it, None); v = sampler.refill() if v is None
        # else v`` (the None test, not truthiness — 0.0 is a valid draw).
        self.it = iter(())

    def __call__(self) -> float:
        """One draw, refilling the block when exhausted."""
        value = next(self.it, None)
        if value is not None:
            return value
        return self.refill()

    def refill(self) -> float:
        """Fetch the next block and return its first draw.

        For non-vectorizable distributions this is a single plain
        ``sample`` — the iterator stays exhausted, so every call lands
        here, which *is* the per-draw fallback path.
        """
        if not self._vectorized:
            return float(self.distribution.sample(self.rng))
        if self.verify:
            block = self._verified_block().tolist()
        else:
            block = self.distribution.sample_many(
                self.rng, self.block_size
            ).tolist()
        if self.probe is not None:
            self.probe.record_block(self.block_size)
        self.it = it = iter(block)
        return next(it)

    def _verified_block(self) -> np.ndarray:
        """Draw one block while cross-checking the prefetch contract.

        The generator state is snapshotted, the block is drawn through
        ``sample_many``, then the same draws are replayed one at a time
        through ``sample`` on a clone started from the snapshot.  Both
        the final generator state (bit-identical consumption) and the
        values must agree.
        """
        rng = self.rng
        before = rng.bit_generator.state
        block = np.asarray(
            self.distribution.sample_many(rng, self.block_size), dtype=float
        )
        replay_bits = type(rng.bit_generator)()
        replay_bits.state = before
        replay = np.random.Generator(replay_bits)
        sample = self.distribution.sample
        singles = np.array(
            [sample(replay) for _ in range(self.block_size)], dtype=float
        )
        if replay_bits.state != rng.bit_generator.state:
            raise PrefetchContractError(
                f"{type(self.distribution).__name__}.sample_many consumed "
                f"the generator differently than {self.block_size} "
                "successive sample() calls; its prefetch_safe=True "
                "declaration is wrong (set prefetch_safe = False or fix "
                "the draw order)"
            )
        if not np.allclose(block, singles, rtol=self.VERIFY_RTOL, atol=0.0):
            worst = int(np.argmax(np.abs(block - singles)))
            raise PrefetchContractError(
                f"{type(self.distribution).__name__}.sample_many produced "
                f"different values than per-draw sampling (first diverging "
                f"draw #{worst}: {block[worst]!r} vs {singles[worst]!r}); "
                "its prefetch_safe=True declaration is wrong"
            )
        return block

    #: Alias so call sites can read naturally.
    def sample(self) -> float:
        """Same as calling the sampler."""
        return self()

    def take(self, n: int) -> np.ndarray:
        """``n`` draws as an array, continuing the same stream.

        Any draws left in the current block are served first (preserving
        the draw-order contract), then the remainder comes from one bulk
        ``sample_many``.
        """
        if n < 0:
            raise DistributionError(f"cannot draw a negative count: {n}")
        buffered = list(self.it)
        if len(buffered) >= n:
            self.it = iter(buffered[n:])
            return np.asarray(buffered[:n], dtype=float)
        missing = n - len(buffered)
        if not self._vectorized:
            # Per-draw on purpose: this sampler is in verify mode, and
            # the scalar loop IS the draw-order reference being checked.
            fresh = [float(self.distribution.sample(self.rng))  # simlint: disable=scalar-sample-loop
                     for _ in range(missing)]
            return np.asarray(buffered + fresh, dtype=float)
        fresh = self.distribution.sample_many(self.rng, missing)
        if buffered:
            return np.concatenate([np.asarray(buffered, dtype=float), fresh])
        return np.asarray(fresh, dtype=float)

    @property
    def pending(self) -> int:
        """Draws currently buffered (diagnostic)."""
        return length_hint(self.it)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "vectorized" if self._vectorized else "per-draw"
        return (
            f"PrefetchSampler({self.distribution!r}, block={self.block_size}, "
            f"{mode}, pending={self.pending})"
        )
