"""Distribution wrappers: scaling, shifting, truncation, mixtures.

:class:`Scaled` is how BigHouse varies load ("Load can be varied by scaling
the inter-arrival distribution", Section 3.1) and how a system model
modulates service times under DVFS slowdown.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions.base import (
    Distribution,
    DistributionError,
    require_nonnegative,
    require_positive,
)


class Scaled(Distribution):
    """Multiply every draw of ``base`` by ``factor``.

    Scaling an inter-arrival distribution by ``1/k`` multiplies offered
    load by ``k``; scaling a service distribution by ``s >= 1`` models a
    uniformly slower machine (the S_CPU knob of Fig. 4).
    """

    def __init__(self, base: Distribution, factor: float):
        self.base = base
        self.factor = require_positive("factor", factor)

    @property
    def prefetch_safe(self) -> bool:
        return self.base.prefetch_safe

    def sample(self, rng: np.random.Generator) -> float:
        return self.factor * self.base.sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.factor * self.base.sample_many(rng, n)

    def mean(self) -> float:
        return self.factor * self.base.mean()

    def variance(self) -> float:
        return self.factor * self.factor * self.base.variance()


class Shifted(Distribution):
    """Add a constant ``offset`` to every draw (e.g. fixed network RTT)."""

    def __init__(self, base: Distribution, offset: float):
        self.base = base
        self.offset = require_nonnegative("offset", offset)

    @property
    def prefetch_safe(self) -> bool:
        return self.base.prefetch_safe

    def sample(self, rng: np.random.Generator) -> float:
        return self.offset + self.base.sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.offset + self.base.sample_many(rng, n)

    def mean(self) -> float:
        return self.offset + self.base.mean()

    def variance(self) -> float:
        return self.base.variance()


class Truncated(Distribution):
    """Clamp draws of ``base`` into [low, high] (winsorization).

    Used to bound pathological tails when synthesizing empirical models;
    analytic moments are not available, so :meth:`mean`/:meth:`variance`
    are Monte-Carlo estimates cached at construction.
    """

    _MOMENT_SAMPLE = 200_000

    def __init__(
        self,
        base: Distribution,
        low: float = 0.0,
        high: float = float("inf"),
        moment_seed: int = 0x5EED,
    ):
        if high <= low:
            raise DistributionError(f"high ({high}) must exceed low ({low})")
        self.base = base
        self.low = require_nonnegative("low", low)
        self.high = float(high)
        # Fixed-seed one-off moment estimation at construction time —
        # deliberately independent of any simulation's streams.
        rng = np.random.default_rng(moment_seed)  # simlint: disable=global-rng
        draws = self._clip(base.sample_many(rng, self._MOMENT_SAMPLE))
        self._mean = float(np.mean(draws))
        self._variance = float(np.var(draws))

    @property
    def prefetch_safe(self) -> bool:
        return self.base.prefetch_safe

    def _clip(self, x):
        return np.clip(x, self.low, self.high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._clip(self.base.sample(rng)))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self._clip(self.base.sample_many(rng, n))

    def mean(self) -> float:
        return self._mean

    def variance(self) -> float:
        return self._variance


class Mixture(Distribution):
    """Probabilistic mixture of component distributions.

    Models multi-class task populations (e.g. cheap cache hits vs
    expensive misses) without building a multi-class queuing network.
    """

    #: The vectorized path draws a multinomial and shuffles — a different
    #: generator-consumption order than per-draw sampling, so prefetching
    #: must fall back to single draws (see PrefetchSampler).
    prefetch_safe = False

    def __init__(self, components: Sequence[Distribution], weights: Sequence[float]):
        if len(components) == 0:
            raise DistributionError("mixture needs >= 1 component")
        if len(components) != len(weights):
            raise DistributionError(
                f"{len(components)} components vs {len(weights)} weights"
            )
        weights = np.asarray(weights, dtype=float)
        if np.any(weights < 0):
            raise DistributionError("mixture weights must be non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise DistributionError("mixture weights must not all be zero")
        self.components = list(components)
        self.weights = weights / total

    def sample(self, rng: np.random.Generator) -> float:
        index = rng.choice(len(self.components), p=self.weights)
        return self.components[index].sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        counts = rng.multinomial(n, self.weights)
        draws = np.concatenate(
            [
                component.sample_many(rng, count)
                for component, count in zip(self.components, counts)
                if count > 0
            ]
        )
        rng.shuffle(draws)
        return draws

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )

    def variance(self) -> float:
        mean = self.mean()
        second = sum(
            w * (c.variance() + c.mean() ** 2)
            for w, c in zip(self.weights, self.components)
        )
        return float(second - mean * mean)
