"""Moment-matching fitters.

:func:`fit_mean_cv` is the workhorse behind our Table-1 substitution: given
a published (mean, Cv) pair it picks an analytic shape whose first two
moments match exactly:

- Cv == 0  -> :class:`Deterministic`
- Cv <  1  -> :class:`Gamma` (shape 1/Cv^2 > 1; smooth, light tail)
- Cv == 1  -> :class:`Exponential`
- Cv >  1  -> balanced-means :class:`HyperExponential` (heavy tail, the
  conventional H2 stand-in for measured high-variance service times)

The original workloads were captured on live servers and are not
redistributable; matching moments preserves every behaviour the BigHouse
statistics machinery is sensitive to (convergence time scales with output
variance, Eqs. 2-3 / Fig. 8).
"""

from __future__ import annotations

import math

from repro.distributions.base import Distribution, DistributionError, require_positive
from repro.distributions.continuous import Deterministic, Exponential, Gamma
from repro.distributions.hyperexponential import HyperExponential

#: Cv values within this distance of 1.0 are treated as exponential.
_EXPONENTIAL_TOLERANCE = 1e-9

#: Cv values below this are numerically deterministic (cv**2 underflows
#: and the Gamma shape 1/cv^2 overflows).
_DETERMINISTIC_TOLERANCE = 1e-8


def fit_mean_cv(mean: float, cv: float) -> Distribution:
    """Return a distribution with exactly the given mean and Cv.

    Raises :class:`DistributionError` for non-positive mean or negative Cv.
    """
    require_positive("mean", mean)
    if cv < 0:
        raise DistributionError(f"Cv must be >= 0, got {cv}")
    if cv < _DETERMINISTIC_TOLERANCE:
        return Deterministic(mean)
    if math.isclose(cv, 1.0, rel_tol=0, abs_tol=_EXPONENTIAL_TOLERANCE):
        return Exponential.from_mean(mean)
    if cv < 1.0:
        return Gamma.from_mean_cv(mean, cv)
    return HyperExponential.from_mean_cv(mean, cv)
