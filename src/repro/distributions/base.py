"""Abstract base class for all distributions.

Distributions are *stateless samplers*: a distribution object carries its
parameters, while all randomness flows through the ``numpy.random.Generator``
passed to :meth:`Distribution.sample`.  This is what lets BigHouse's
parallel mode hand each slave a unique seed and otherwise share the exact
same workload model object (Section 2.4 of the paper).
"""

from __future__ import annotations

import abc
import math

import numpy as np


class DistributionError(ValueError):
    """Raised for invalid distribution parameters or impossible fits."""


class Distribution(abc.ABC):
    """A non-negative random variable describing task behaviour.

    Subclasses implement :meth:`sample` and the analytic moments
    :meth:`mean` and :meth:`variance`.  Everything else (standard
    deviation, coefficient of variation, bulk sampling, empirical moment
    checks) is derived here.
    """

    #: Draw-order contract consumed by
    #: :class:`~repro.distributions.prefetch.PrefetchSampler`: True
    #: asserts that ``sample_many(rng, n)`` consumes ``rng`` identically
    #: to ``n`` successive ``sample(rng)`` calls (bit-identical values in
    #: the same order).  The base implementation below loops ``sample``
    #: and is therefore safe; a subclass overriding ``sample_many`` with
    #: a different generator-consumption order MUST set this to False or
    #: prefetching would silently change seeded runs.
    prefetch_safe = True

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value using ``rng`` as the sole source of randomness."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic mean of the distribution."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Analytic variance of the distribution."""

    def std(self) -> float:
        """Analytic standard deviation."""
        return math.sqrt(self.variance())

    def cv(self) -> float:
        """Coefficient of variation, sigma / mean.

        The paper's Table 1 characterizes every workload by its Cv; high
        service-time Cv (e.g. Shell at 15) is what makes simple queuing
        formulas inaccurate and drives simulation time (Fig. 8).
        """
        mean = self.mean()
        if mean == 0:
            raise DistributionError("Cv undefined for zero-mean distribution")
        return self.std() / mean

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` values.  Subclasses may override with vectorized draws."""
        if n < 0:
            raise DistributionError(f"cannot draw a negative count: {n}")
        # The per-draw fallback is the draw-order reference the prefetch
        # contract is defined against.  # simlint: disable=scalar-sample-loop
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    def sample_block(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw a block of ``n`` values for batch consumers.

        This is the *statistical-equivalence* API used by the fastpath
        engine (:mod:`repro.engine.fastpath`): the returned draws must
        follow this distribution, but — unlike :meth:`sample_many` under
        ``prefetch_safe`` — no draw-order contract against per-draw
        ``sample`` calls is implied.  The base implementation delegates
        to :meth:`sample_many` (vectorized wherever a subclass provides
        it, per-draw otherwise), so every existing distribution gets a
        working block path for free; subclasses whose fastest bulk
        sampler is not draw-order safe may override this instead of
        ``sample_many`` without touching the prefetch contract.
        """
        return np.asarray(self.sample_many(rng, n), dtype=float)

    def empirical_moments(
        self, rng: np.random.Generator, n: int = 100_000
    ) -> tuple[float, float]:
        """Monte-Carlo estimate of (mean, std); used by tests and fitters."""
        draws = self.sample_many(rng, n)
        return float(np.mean(draws)), float(np.std(draws))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(vars(self).items())
            if not key.startswith("_")
        )
        return f"{type(self).__name__}({params})"


def require_positive(name: str, value: float) -> float:
    """Validate that a parameter is strictly positive, returning it."""
    if not value > 0:
        raise DistributionError(f"{name} must be > 0, got {value}")
    return float(value)


def require_nonnegative(name: str, value: float) -> float:
    """Validate that a parameter is >= 0, returning it."""
    if value < 0:
        raise DistributionError(f"{name} must be >= 0, got {value}")
    return float(value)
