"""Random-variable substrate for stochastic queuing simulation.

BigHouse characterizes workloads as distributions of inter-arrival and
service times rather than traces or binaries.  This package provides:

- analytic distributions (:class:`Exponential`, :class:`Gamma`,
  :class:`Erlang`, :class:`LogNormal`, :class:`Weibull`, :class:`Pareto`,
  :class:`Uniform`, :class:`Deterministic`),
- the two-phase balanced-means :class:`HyperExponential` used to model
  high-variance (Cv > 1) empirical workloads,
- :class:`EmpiricalDistribution`, the histogram/inverse-CDF representation
  BigHouse ships its measured workloads in (compact, < 1 MB),
- wrappers (:class:`Scaled`, :class:`Shifted`, :class:`Truncated`,
  :class:`Mixture`) used e.g. to scale inter-arrival times to vary load,
- :func:`fit_mean_cv`, the moment-matching fitter used to synthesize the
  Table-1 workload models from their published moments.

All distributions are immutable, stateless samplers: randomness enters
only through the ``numpy.random.Generator`` handed to :meth:`sample`.
"""

from repro.distributions.base import Distribution, DistributionError
from repro.distributions.continuous import (
    BoundedPareto,
    Deterministic,
    Erlang,
    Exponential,
    Gamma,
    LogNormal,
    Pareto,
    Uniform,
    Weibull,
)
from repro.distributions.discrete import Choice
from repro.distributions.hyperexponential import HyperExponential
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.transforms import Mixture, Scaled, Shifted, Truncated
from repro.distributions.prefetch import (
    DEFAULT_BLOCK,
    PrefetchContractError,
    PrefetchSampler,
)
from repro.distributions.fitting import fit_mean_cv

__all__ = [
    "Distribution",
    "DistributionError",
    "BoundedPareto",
    "Choice",
    "Deterministic",
    "Erlang",
    "Exponential",
    "Gamma",
    "LogNormal",
    "Pareto",
    "Uniform",
    "Weibull",
    "HyperExponential",
    "EmpiricalDistribution",
    "Mixture",
    "PrefetchContractError",
    "PrefetchSampler",
    "DEFAULT_BLOCK",
    "Scaled",
    "Shifted",
    "Truncated",
    "fit_mean_cv",
]
