"""JSON experiment configuration -> wired Experiment.

Example document::

    {
      "seed": 42,
      "warmup_samples": 1000,
      "calibration_samples": 5000,
      "workload": {"name": "web", "load": 0.6},
      "servers": {"count": 4, "cores": 2, "discipline": "fcfs"},
      "balancer": "jsq",
      "metrics": [
        {"kind": "response_time", "mean_accuracy": 0.05,
         "quantiles": {"0.95": 0.05}},
        {"kind": "waiting_time", "mean_accuracy": 0.1}
      ]
    }

Workloads may alternatively be declared from explicit distributions::

    "workload": {
      "interarrival": {"type": "exponential", "mean": 0.1},
      "service": {"type": "hyperexponential", "mean": 0.05, "cv": 3.0}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.datacenter.balancers import (
    CloningBalancer,
    JoinShortestQueue,
    RandomBalancer,
    RoundRobinBalancer,
    SpeculativeRetryBalancer,
)
from repro.datacenter.cluster import ClusterError, MultiserverCluster
from repro.datacenter.disciplines import FCFSQueue, LIFOQueue, SJFQueue
from repro.datacenter.processor_sharing import ProcessorSharingServer
from repro.datacenter.server import Server
from repro.distributions import (
    BoundedPareto,
    Choice,
    Deterministic,
    EmpiricalDistribution,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    Pareto,
    Uniform,
    Weibull,
    fit_mean_cv,
)
from repro.engine.experiment import Experiment
from repro.workloads import by_name
from repro.workloads.workload import Workload


class ConfigError(ValueError):
    """Raised for malformed configuration documents."""


_BALANCERS = {
    "random": RandomBalancer,
    "round_robin": RoundRobinBalancer,
    "jsq": JoinShortestQueue,
}

_DISCIPLINES = {
    "fcfs": FCFSQueue,
    "lifo": LIFOQueue,
    "sjf": SJFQueue,
}


def load_config(path: Union[str, Path]) -> dict:
    """Read a JSON config file."""
    path = Path(path)
    try:
        with path.open() as handle:
            return json.load(handle)
    except json.JSONDecodeError as error:
        raise ConfigError(f"{path}: invalid JSON: {error}") from error


def build_distribution(spec: dict):
    """Construct a distribution from a ``{"type": ..., ...}`` spec."""
    if not isinstance(spec, dict) or "type" not in spec:
        raise ConfigError(f"distribution spec needs a 'type': {spec!r}")
    kind = spec["type"].lower()
    try:
        if kind == "exponential":
            if "mean" in spec:
                return Exponential.from_mean(spec["mean"])
            return Exponential(rate=spec["rate"])
        if kind == "deterministic":
            return Deterministic(spec["value"])
        if kind == "uniform":
            return Uniform(spec["low"], spec["high"])
        if kind == "gamma":
            if "cv" in spec:
                return Gamma.from_mean_cv(spec["mean"], spec["cv"])
            return Gamma(spec["shape"], spec["scale"])
        if kind == "erlang":
            return Erlang(spec["k"], spec["rate"])
        if kind == "lognormal":
            if "cv" in spec:
                return LogNormal.from_mean_cv(spec["mean"], spec["cv"])
            return LogNormal(spec["mu"], spec["sigma"])
        if kind == "weibull":
            if "cv" in spec:
                return Weibull.from_mean_cv(spec["mean"], spec["cv"])
            return Weibull(spec["shape"], spec["scale"])
        if kind == "pareto":
            return Pareto(spec["alpha"], spec["xm"])
        if kind == "bounded_pareto":
            return BoundedPareto(spec["alpha"], spec["low"], spec["high"])
        if kind == "hyperexponential":
            if "cv" in spec:
                return HyperExponential.from_mean_cv(spec["mean"], spec["cv"])
            return HyperExponential(spec["p1"], spec["rate1"], spec["rate2"])
        if kind == "fit":
            return fit_mean_cv(spec["mean"], spec["cv"])
        if kind == "choice":
            return Choice(spec["values"], spec.get("weights"))
        if kind == "empirical":
            return EmpiricalDistribution.load(spec["path"])
    except KeyError as error:
        raise ConfigError(
            f"distribution spec {spec!r} missing parameter {error}"
        ) from None
    raise ConfigError(f"unknown distribution type {kind!r}")


def build_workload(spec: dict) -> Workload:
    """Construct a workload from either a shipped name or explicit specs."""
    if not isinstance(spec, dict):
        raise ConfigError(f"workload spec must be an object, got {spec!r}")
    if "name" in spec:
        workload = by_name(spec["name"], empirical=spec.get("empirical", False))
    elif "interarrival" in spec and "service" in spec:
        workload = Workload(
            name=spec.get("label", "configured"),
            interarrival=build_distribution(spec["interarrival"]),
            service=build_distribution(spec["service"]),
        )
    else:
        raise ConfigError(
            "workload spec needs 'name' or 'interarrival'+'service'"
        )
    if "servers_needed" in spec:
        # Applied before load scaling so at_load accounts for E[k]
        # server-seconds per job.
        workload = workload.with_servers_needed(
            build_distribution(spec["servers_needed"])
        )
    cores = spec.get("cores_for_load", 1)
    if "load" in spec:
        workload = workload.at_load(spec["load"], cores=cores)
    if "qps" in spec:
        workload = workload.at_qps(spec["qps"])
    if "service_scale" in spec:
        workload = workload.scale_service(spec["service_scale"])
    return workload


def _build_servers(spec: dict) -> list:
    count = spec.get("count", 1)
    if count < 1:
        raise ConfigError(f"servers.count must be >= 1, got {count}")
    model = spec.get("model", "server").lower()
    if model == "ps":
        return [
            ProcessorSharingServer(
                speed=spec.get("speed", 1.0), name=f"ps-server-{index}"
            )
            for index in range(count)
        ]
    if model != "server":
        raise ConfigError(
            f"unknown server model {model!r}; use 'server' or 'ps'"
        )
    discipline_name = spec.get("discipline", "fcfs").lower()
    if discipline_name not in _DISCIPLINES:
        raise ConfigError(
            f"unknown discipline {discipline_name!r}; "
            f"choose from {sorted(_DISCIPLINES)}"
        )
    return [
        Server(
            cores=spec.get("cores", 1),
            speed=spec.get("speed", 1.0),
            discipline=_DISCIPLINES[discipline_name](),
            name=f"server-{index}",
        )
        for index in range(count)
    ]


def _build_balancer(spec, servers):
    """String specs name a classic dispatch policy; dict specs configure
    a redundancy policy (``{"policy": "cloning", "clones": 2}`` or
    ``{"policy": "speculative_retry", "threshold": 0.1}``)."""
    if isinstance(spec, str):
        name = spec.lower()
        if name not in _BALANCERS:
            raise ConfigError(
                f"unknown balancer {name!r}; choose from {sorted(_BALANCERS)}"
            )
        return _BALANCERS[name](servers)
    if not isinstance(spec, dict):
        raise ConfigError(f"balancer must be a string or object, got {spec!r}")
    policy = spec.get("policy", "").lower()
    try:
        if policy == "cloning":
            return CloningBalancer(
                servers,
                clones=spec.get("clones", 2),
                synchronized=spec.get("synchronized", True),
            )
        if policy in ("speculative_retry", "spec_retry"):
            if "threshold" not in spec:
                raise ConfigError(
                    "speculative_retry balancer needs a 'threshold' (seconds)"
                )
            return SpeculativeRetryBalancer(
                servers,
                threshold=spec["threshold"],
                max_retries=spec.get("max_retries", 1),
            )
    except ValueError as error:
        raise ConfigError(f"balancer does not build: {error}") from error
    raise ConfigError(
        f"unknown balancer policy {policy!r}; "
        "use 'cloning' or 'speculative_retry'"
    )


def build_experiment(
    config: Union[dict, str, Path],
    prefetch: bool | None = None,
    sanitize: bool | None = None,
    engine: str | None = None,
) -> Experiment:
    """Build a fully wired experiment from a config dict or file path.

    ``prefetch`` / ``sanitize`` / ``engine`` override the config
    document's keys of the same name (used by ``repro run --sanitize``
    / ``--engine`` and the sanitizer's A/B twins, which rebuild the
    same config under both prefetch modes).
    """
    if isinstance(config, (str, Path)):
        config = load_config(config)
    if "workload" not in config:
        raise ConfigError("config needs a 'workload' section")
    if "metrics" not in config or not config["metrics"]:
        raise ConfigError("config needs a non-empty 'metrics' list")

    experiment = Experiment(
        seed=config.get("seed", 0),
        warmup_samples=config.get("warmup_samples", 1000),
        calibration_samples=config.get("calibration_samples", 5000),
        confidence=config.get("confidence", 0.95),
        max_events=config.get("max_events", 50_000_000),
        prefetch=config.get("prefetch", True) if prefetch is None else prefetch,
        sanitize=config.get("sanitize", False) if sanitize is None else sanitize,
        engine=config.get("engine", "event") if engine is None else engine,
    )
    # Load scaling should account for the total core pool by default.
    cluster_spec = config.get("cluster")
    server_spec = dict(config.get("servers", {}))
    workload_spec = dict(config["workload"])
    if cluster_spec is not None:
        # Gang-scheduled multiserver-job cluster replaces the classic
        # server pool + balancer entry point.
        if not isinstance(cluster_spec, dict):
            raise ConfigError(
                f"'cluster' must be an object, got {cluster_spec!r}"
            )
        if "servers" in config or "balancer" in config:
            raise ConfigError(
                "'cluster' replaces the 'servers'/'balancer' sections; "
                "remove them"
            )
        n_servers = cluster_spec.get("servers", 1)
        workload_spec.setdefault("cores_for_load", n_servers)
        workload = build_workload(workload_spec)
        try:
            entry = MultiserverCluster(
                n_servers=n_servers,
                speed=cluster_spec.get("speed", 1.0),
                backfill=cluster_spec.get("backfill", False),
            )
        except ClusterError as error:
            raise ConfigError(f"cluster does not build: {error}") from error
    else:
        total_cores = server_spec.get("count", 1) * server_spec.get("cores", 1)
        workload_spec.setdefault("cores_for_load", total_cores)
        workload = build_workload(workload_spec)
        servers = _build_servers(server_spec)
        balancer_spec = config.get("balancer", "random")
        if len(servers) == 1 and not isinstance(balancer_spec, dict):
            entry = servers[0]
        else:
            entry = _build_balancer(balancer_spec, servers)

    experiment.add_source(workload, target=entry)

    for metric in config["metrics"]:
        kind = metric.get("kind")
        quantiles = {
            float(q): float(accuracy)
            for q, accuracy in metric.get("quantiles", {}).items()
        } or None
        kwargs = dict(
            mean_accuracy=metric.get("mean_accuracy", 0.05),
            quantiles=quantiles,
        )
        if "name" in metric:
            kwargs["name"] = metric["name"]
        if kind == "response_time":
            experiment.track_response_time(entry, **kwargs)
        elif kind == "waiting_time":
            experiment.track_waiting_time(entry, **kwargs)
        else:
            raise ConfigError(
                f"unknown metric kind {kind!r}; "
                "use 'response_time' or 'waiting_time'"
            )
    return experiment
