"""Declarative experiment configuration.

The original BigHouse is driven by "configuration files and concise Java
code" (Section 2); this package is the configuration-file half: a JSON
document describes the workload, the server pool, the balancer, and the
output metrics, and :func:`build_experiment` wires it all up.
"""

from repro.config.loader import (
    ConfigError,
    build_distribution,
    build_experiment,
    build_workload,
    load_config,
)

__all__ = [
    "ConfigError",
    "load_config",
    "build_distribution",
    "build_workload",
    "build_experiment",
]
