"""Vectorized Lindley-recurrence fast path for FCFS queues.

For the models where closed recurrences are *exact* — a single open-loop
source feeding a plain G/G/c FCFS server — the per-event Python dispatch
of the discrete-event engine is pure overhead: waiting times are a pure
function of the interarrival and service draws.  This module computes
them directly:

- **G/G/1**: the Lindley recurrence ``W[i+1] = max(0, W[i] + S[i] -
  T[i+1])`` has the reflected-random-walk solution ``W[1+j] = X[j] -
  min(-W[1], min_{i<=j} X[i])`` with ``X = cumsum(S[:-1] - T[1:])``,
  which vectorizes to three numpy passes per block.
- **G/G/c (c >= 2)**: the Kiefer–Wolfowitz next-free-server recurrence —
  each job starts at ``max(arrival, min(core free times))`` — is an
  inherently sequential scan over c state variables.  A specialized
  kernel is code-generated per core count (flat unrolled min scan over c
  locals), which runs ~10x faster than a generic heap-based loop; core
  counts above :data:`MAX_UNROLLED_CORES` fall back to a ``heapq`` scan.

Draws come in blocks from the **same RNG streams** the event engine
would use (``Distribution.sample_block`` on the source's arrival and
service generators), and the resulting waiting/response vectors feed the
**same statistics pipeline** (``Statistic.observe_block`` — bit-equal to
the scalar path), so warmup, calibration, convergence decisions, CI
semantics, and reports are untouched.  Results are *statistically
equivalent* to the event engine — same distributions, same estimator —
but not bit-identical: the block sampler does not preserve the event
engine's draw interleaving, and for c >= 2 observations arrive in
arrival order rather than completion order.  See ``docs/fastpath.md``.

Eligibility is decided structurally by :func:`qualifies`; callers should
go through ``Experiment(engine="auto")`` which falls back to the event
engine (bit-identical to today) whenever a model does not qualify.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.datacenter.disciplines import FCFSQueue
from repro.datacenter.server import Server
from repro.datacenter.source import Source

#: Jobs simulated per block: large enough to amortize numpy dispatch,
#: small enough that convergence is checked at a reasonable cadence.
BLOCK_JOBS = 32768

#: Largest core count that gets a code-generated unrolled kernel; above
#: this the generic heapq scan is used (the unrolled min scan is O(c)
#: per job, so very wide servers stop benefiting anyway).
MAX_UNROLLED_CORES = 16

#: Event-engine cost of one fastpath job (arrival + completion), used to
#: honour ``max_events`` budgets at parity with the event engine.
EVENTS_PER_JOB = 2


class FastpathError(RuntimeError):
    """Raised when the fast path is forced on a non-qualifying model."""


@dataclass(frozen=True)
class Qualification:
    """Outcome of the structural eligibility check.

    Truthy when the model qualifies; otherwise :attr:`reason` says which
    structural feature requires the event engine.
    """

    ok: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


_QUALIFIED = Qualification(True)


def qualifies(experiment) -> Qualification:
    """Decide whether ``experiment`` can run on the vectorized fast path.

    The recurrences are exact only for one open-loop synthetic source
    feeding a plain FCFS server whose only observers are the waiting /
    response-time metrics — anything that couples to the event clock
    (tracers, sanitizer probes, governors, forwarding, pause/speed
    policies, trace replay) disqualifies the model.
    """
    if not len(experiment.stats):
        return Qualification(False, "no tracked metrics")
    if experiment._tracer is not None:
        return Qualification(False, "structured tracer requires the event engine")
    if experiment.collect_telemetry:
        return Qualification(False, "telemetry collection requires the event engine")
    sim = experiment.simulation
    if sim.probe is not None:
        return Qualification(False, "determinism sanitizer requires the event engine")
    if experiment.max_sim_time is not None:
        return Qualification(False, "max_sim_time horizon requires the event clock")
    if sim.events_processed:
        return Qualification(False, "experiment already started on the event engine")
    if len(experiment.sources) != 1:
        return Qualification(
            False, f"needs exactly one source, found {len(experiment.sources)}"
        )
    source = experiment.sources[0]
    if type(source) is not Source:
        return Qualification(
            False, f"{type(source).__name__} is not a synthetic open-loop Source"
        )
    if not source.draw_sizes:
        return Qualification(False, "source defers service draws to the server")
    if source.max_jobs is not None:
        return Qualification(False, "bounded job count (max_jobs) is event-engine only")
    if getattr(source.workload, "servers_needed", None) is not None:
        return Qualification(
            False,
            "multiserver-job workload (servers_needed) requires the event engine",
        )
    station = source.target
    # Named rejections for the stations the Lindley/Kiefer–Wolfowitz
    # recurrences structurally cannot model, so auto-mode falls back with
    # a reason operators can act on (lazy imports: these modules pull in
    # repro.engine.simulation and must not load during package init).
    from repro.datacenter.balancers import _ReplicatingBalancer
    from repro.datacenter.cluster import MultiserverCluster

    if isinstance(station, MultiserverCluster):
        return Qualification(
            False, "gang-scheduled MultiserverCluster requires the event engine"
        )
    if isinstance(station, _ReplicatingBalancer):
        return Qualification(
            False, "cloning/hedging balancer requires the event engine"
        )
    if type(station) is not Server:
        return Qualification(
            False, f"target {type(station).__name__} is not a plain Server"
        )
    if type(station.queue) is not FCFSQueue:
        return Qualification(
            False, f"non-FCFS discipline {type(station.queue).__name__}"
        )
    if station.forward_to is not None:
        return Qualification(False, "multi-tier forwarding attached")
    if station.service_distribution is not None:
        return Qualification(False, "server-side service distribution attached")
    if station.paused:
        return Qualification(False, "server starts paused")
    if station._arrival_listeners or station._occupancy_listeners:
        return Qualification(False, "arrival/occupancy listeners attached")
    bindings = experiment._metric_bindings
    names = [binding.name for binding in bindings]
    if sorted(names) != sorted(statistic.name for statistic in experiment.stats):
        return Qualification(
            False, "metrics beyond plain waiting/response-time trackers"
        )
    if any(binding.station is not station for binding in bindings):
        return Qualification(False, "metric tracks a different station")
    if len(station._complete_listeners) != len(bindings):
        return Qualification(False, "extra completion listeners attached")
    if len(sim.events) != 1:
        return Qualification(
            False,
            "event queue holds more than the first arrival "
            "(governors or custom events scheduled)",
        )
    return _QUALIFIED


# -- G/G/c sequential kernels -------------------------------------------------

_KERNEL_CACHE: dict = {}


def _make_kernel(cores: int) -> Callable:
    """Code-generate the next-free-server scan specialized for ``cores``.

    The generated function keeps each core's free time in its own local
    variable, finds the minimum with an unrolled flat scan, and writes
    the chosen core back through an unrolled if/elif ladder — roughly an
    order of magnitude faster than a generic list/heap loop because no
    container indexing or method dispatch survives into the hot loop.

    Signature: ``kernel(arrivals, services, waits, state) -> state`` with
    ``arrivals``/``services``/``waits`` as equal-length Python lists
    (``waits`` is filled in place) and ``state`` the tuple of core free
    times carried between blocks.
    """
    frees = [f"f{j}" for j in range(cores)]
    lines = [
        "def kernel(arrivals, services, waits, state):",
        f"    {', '.join(frees)}, = state",
        "    i = 0",
        "    for a, s in zip(arrivals, services):",
        "        f = f0; m = 0",
    ]
    for j in range(1, cores):
        lines.append(f"        if f{j} < f: f = f{j}; m = {j}")
    lines += [
        "        if f > a:",
        "            waits[i] = f - a",
        "            d = f + s",
        "        else:",
        "            d = a + s",
    ]
    branch = "if"
    for j in range(cores - 1):
        lines.append(f"        {branch} m == {j}: f{j} = d")
        branch = "elif"
    if cores == 1:
        lines.append("        f0 = d")
    else:
        lines.append(f"        else: f{cores - 1} = d")
    lines += [
        "        i += 1",
        f"    return ({', '.join(frees)},)",
    ]
    namespace: dict = {}
    exec(  # noqa: S102 - generating the specialized scan above
        compile("\n".join(lines), f"<fastpath-ggc-kernel-{cores}>", "exec"),
        namespace,
    )
    return namespace["kernel"]


def _kernel_for(cores: int) -> Callable:
    kernel = _KERNEL_CACHE.get(cores)
    if kernel is None:
        kernel = _make_kernel(cores)
        _KERNEL_CACHE[cores] = kernel
    return kernel


def _heap_scan(arrivals, services, waits, state):
    """Generic G/G/c scan for very wide servers (cores > MAX_UNROLLED_CORES).

    Same recurrence as the generated kernels, but the core free times
    live in a heap, so cost per job is O(log c) instead of O(c).
    """
    free = list(state)
    heapq.heapify(free)
    replace = heapq.heapreplace
    i = 0
    for a, s in zip(arrivals, services):
        f = free[0]
        if f > a:
            waits[i] = f - a
            replace(free, f + s)
        else:
            replace(free, a + s)
        i += 1
    return tuple(free)


# -- block recurrences --------------------------------------------------------

def _lindley_block(
    gaps: np.ndarray,
    services: np.ndarray,
    carry: Tuple[float, float],
) -> Tuple[np.ndarray, Tuple[float, float]]:
    """Waiting times for one G/G/1 block, with carry across blocks.

    ``carry`` is ``(w_last, s_last)`` — the previous block's final
    waiting and service time — so the recurrence continues exactly:
    the first wait is ``max(0, w_last + s_last - gaps[0])`` and the rest
    follow the reflected-random-walk identity.
    """
    w_last, s_last = carry
    n = gaps.shape[0]
    waits = np.empty(n, dtype=float)
    first = w_last + s_last - gaps[0]
    waits[0] = first if first > 0.0 else 0.0
    if n > 1:
        walk = np.cumsum(services[:-1] - gaps[1:])
        floor = np.minimum.accumulate(walk)
        np.minimum(floor, -waits[0], out=floor)
        np.subtract(walk, floor, out=waits[1:])
    return waits, (float(waits[-1]), float(services[-1]))


# -- the engine ---------------------------------------------------------------

def run_fastpath(experiment, max_events: Optional[int] = None):
    """Run ``experiment`` to convergence on the vectorized fast path.

    Returns an ``ExperimentResult`` shaped exactly like the event
    engine's: same estimate payloads, ``events_processed`` accounted at
    two events per job (arrival + completion) so ``max_events`` budgets
    bound the same amount of simulated work, ``sim_time`` the time of
    the last generated arrival.
    """
    # Imported here: experiment.py imports this module lazily from
    # run(), so a top-level import back into it would be circular.
    from repro.engine.experiment import ExperimentResult

    qualification = qualifies(experiment)
    if not qualification:
        raise FastpathError(
            f"model does not qualify for the fast path: {qualification.reason}"
        )
    started = time.perf_counter()

    source = experiment.sources[0]
    station: Server = source.target
    cores = station.cores
    speed = station.speed
    interarrival = source.workload.interarrival
    service = source.workload.service
    arrival_rng = source._arrival_rng
    service_rng = source._service_rng

    # One (observe_block, kind) feed per tracked metric.
    feeds: List[Tuple[Callable, str]] = [
        (experiment.stats[binding.name].observe_block, binding.kind)
        for binding in experiment._metric_bindings
    ]
    wants_response = any(kind == "response" for _, kind in feeds)

    budget = max_events if max_events is not None else experiment.max_events
    jobs_budget = budget // EVENTS_PER_JOB
    jobs = 0
    clock = 0.0

    if cores == 1:
        carry = (0.0, 0.0)
    else:
        state = (0.0,) * cores
        scan = _kernel_for(cores) if cores <= MAX_UNROLLED_CORES else _heap_scan

    stats = experiment.stats
    while not stats.all_converged:
        remaining = jobs_budget - jobs
        if remaining <= 0:
            break
        n = BLOCK_JOBS if BLOCK_JOBS < remaining else remaining
        gaps = interarrival.sample_block(arrival_rng, n)
        services = service.sample_block(service_rng, n)
        if speed != 1.0:
            services = services / speed
        if cores == 1:
            waits, carry = _lindley_block(gaps, services, carry)
            clock += float(gaps.sum())
        else:
            arrivals = np.cumsum(gaps)
            arrivals += clock
            clock = float(arrivals[-1])
            wait_list = [0.0] * n
            state = scan(arrivals.tolist(), services.tolist(), wait_list, state)
            waits = np.array(wait_list, dtype=float)
        responses = waits + services if wants_response else None
        for feed, kind in feeds:
            feed(responses if kind == "response" else waits)
        jobs += n

    source.generated += jobs
    experiment._has_run = True
    wall = time.perf_counter() - started
    return ExperimentResult(
        estimates=stats.report(),
        converged=stats.all_converged,
        events_processed=jobs * EVENTS_PER_JOB,
        sim_time=clock,
        wall_time=wall,
        jobs_generated=jobs,
        extras={"engine": "fastpath"},
    )
