"""Discrete-event simulation engine.

A deliberately small, classic engine: a time-ordered event queue with
cancellation (needed to re-schedule job completions when a server's speed
changes under DVFS or DreamWeaver preemption), deterministic per-component
random streams spawned from a single experiment seed, and an
:class:`~repro.engine.experiment.Experiment` driver that advances events
until every tracked output metric has converged (Section 2.3 of the
paper) or a safety limit is hit.
"""

from repro.engine.events import Event, EventQueue, SimulationError
from repro.engine.simulation import Simulation
from repro.engine.experiment import Experiment, ExperimentResult
from repro.engine.probes import CompletionProbe, PeriodicProbe, slowdown
from repro.engine.report import (
    estimate_to_dict,
    load_result,
    result_to_dict,
    save_result,
)

__all__ = [
    "Event",
    "EventQueue",
    "SimulationError",
    "Simulation",
    "Experiment",
    "ExperimentResult",
    "PeriodicProbe",
    "CompletionProbe",
    "slowdown",
    "estimate_to_dict",
    "result_to_dict",
    "save_result",
    "load_result",
]
