"""Event and event-queue primitives.

The queue is a binary heap with lazy deletion: cancelling an event marks
it dead and it is skipped on pop.  Lazy deletion keeps cancellation O(1),
which matters because speed-rescaling servers (power capping at every
one-second epoch across thousands of servers, Section 4.1) cancel and
re-schedule completion events constantly.

Hot-path design: an event is a plain five-slot list, **not** a class
instance::

    [time, seq, callback, label, state]

with ``state`` one of :data:`PENDING` / :data:`CANCELLED` / :data:`FIRED`
(index constants :data:`EV_TIME` .. :data:`EV_STATE` below).  Building a
list display costs ~45 ns versus ~250 ns for an object with ``__slots__``
— at two schedules per simulated task that difference alone is worth
>10% of total throughput.  The record doubles as the heap entry: lists
compare elementwise, so heap sifts order by ``(time, seq)`` at C level
and never reach the callback (``seq`` is unique).  The record is also the
cancellation handle returned to callers, who treat it as opaque.

Because lazy deletion leaves cancelled entries buried in the heap, a
cancel-heavy workload would otherwise inflate the heap without bound.
When dead entries exceed half the heap (and the heap is big enough to
matter), the queue compacts: it drops dead entries and re-heapifies —
in place, because a running event loop holds a direct reference to the
heap list.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional

#: Indices into an event record.
EV_TIME, EV_SEQ, EV_CALLBACK, EV_LABEL, EV_STATE = range(5)

#: Event states.
PENDING, CANCELLED, FIRED = 0, 1, 2

#: Type alias for annotations: an event record (5-slot list, layout above).
Event = List


class SimulationError(RuntimeError):
    """Raised for impossible simulation states (time travel, dead events)."""


def describe_event(event: Event) -> str:
    """Human-readable rendering of an event record (debugging aid)."""
    state = ("pending", "cancelled", "fired")[event[EV_STATE]]
    return f"Event({event[EV_LABEL]!r} @ {event[EV_TIME]:.6g}, {state})"


class EventQueue:
    """Min-heap of event records with O(1) cancellation."""

    #: Heaps smaller than this are never compacted (rebuild overhead
    #: would exceed the skip cost of the few dead entries).
    COMPACT_MIN = 512

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._dead = 0  # cancelled entries still buried in the heap

    def __len__(self) -> int:
        """Number of live (non-cancelled) events.

        Derived rather than maintained, so schedule/pop touch no counter
        on the hot path.
        """
        return len(self._heap) - self._dead

    def schedule(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Insert an event; returns a handle usable with :meth:`cancel`."""
        event = [time, next(self._counter), callback, label, PENDING]
        heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Mark an event dead; it will be skipped when reached."""
        state = event[EV_STATE]
        if state == CANCELLED:
            raise SimulationError(
                f"event already cancelled: {describe_event(event)}"
            )
        if state == FIRED:
            raise SimulationError(
                f"cannot cancel an already-fired event: {describe_event(event)}"
            )
        event[EV_STATE] = CANCELLED
        self._dead += 1
        heap = self._heap
        if self._dead * 2 > len(heap) and len(heap) >= self.COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and rebuild the heap in O(live).

        In place (slice assignment): the running event loop holds a direct
        reference to the heap list, which must stay valid across a
        compaction triggered from inside a callback.
        """
        self._heap[:] = [
            event for event in self._heap if event[EV_STATE] != CANCELLED
        ]
        heapify(self._heap)
        self._dead = 0

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)
            if event[EV_STATE] == PENDING:
                event[EV_STATE] = FIRED
                return event
            self._dead -= 1
        return None

    def requeue(self, event: Event) -> None:
        """Put a popped-but-undispatched event back (horizon overshoot).

        :meth:`Simulation.run` pops eagerly and pushes back the first
        event beyond its ``until`` horizon, which is cheaper than peeking
        the heap top before every pop.
        """
        event[EV_STATE] = PENDING
        heappush(self._heap, event)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][EV_STATE] == CANCELLED:
            heappop(heap)
            self._dead -= 1
        return heap[0][EV_TIME] if heap else None
