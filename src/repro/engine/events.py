"""Event and event-queue primitives.

The queue is a binary heap with lazy deletion: cancelling an event marks
it dead and it is skipped on pop.  Lazy deletion keeps cancellation O(1),
which matters because speed-rescaling servers (power capping at every
one-second epoch across thousands of servers, Section 4.1) cancel and
re-schedule completion events constantly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised for impossible simulation states (time travel, dead events)."""


class Event:
    """A scheduled callback.

    Events compare by (time, sequence-number) so simultaneous events fire
    in schedule order, keeping runs reproducible.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], label: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.label!r} @ {self.time:.6g}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` with O(1) cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def schedule(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Insert an event; returns a handle usable with :meth:`cancel`."""
        event = Event(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Mark an event dead; it will be skipped when reached."""
        if event.cancelled:
            raise SimulationError(f"event already cancelled: {event!r}")
        event.cancelled = True
        self._live -= 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
