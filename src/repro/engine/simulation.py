"""The simulation clock + event loop, separated from experiment policy.

:class:`Simulation` knows how to advance virtual time and dispatch events;
it knows nothing about convergence, workloads, or servers.  The
:class:`~repro.engine.experiment.Experiment` layer composes it with the
statistics package.

:meth:`Simulation.run` is the hottest loop in the codebase — every
simulated event passes through it.  It therefore binds attribute lookups
to locals, hoists the ``until``/``stop_when``/``max_events`` decisions
out of the per-event path (the horizon is enforced by popping eagerly
and requeueing the first overshooting event instead of peeking the heap
before every pop), and batches the ``events_processed`` counter update.
"""

from __future__ import annotations

import math
import sys
from collections import deque
from heapq import heappop, heappush
from typing import Callable, Optional

import numpy as np

from repro.engine.events import (
    CANCELLED,
    EV_CALLBACK,
    EV_LABEL,
    EV_STATE,
    EV_TIME,
    FIRED,
    PENDING,
    Event,
    EventQueue,
    SimulationError,
)


def seeded_rng(seed) -> np.random.Generator:
    """The sanctioned constructor for a component-local random stream.

    This module is the seed-plumbing whitelist enforced by simlint's
    ``global-rng`` rule: all other library code must receive a
    ``numpy.random.Generator`` (usually via :meth:`Simulation.spawn_rng`)
    or derive one from an explicit seed through this function — never
    construct ``np.random.default_rng`` ad hoc, and never rely on global
    module-level randomness.  ``seed`` is required on purpose: an
    unseeded stream cannot be reproduced.
    """
    if seed is None:
        raise SimulationError(
            "seeded_rng requires an explicit seed; unseeded streams are "
            "not reproducible"
        )
    return np.random.default_rng(seed)


class Simulation:
    """Virtual clock, event queue, and deterministic RNG streams."""

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        #: The root seed, retained so checkpoints and seed-lineage
        #: audits can identify this clock's stream family without
        #: reaching into the SeedSequence internals.
        self.seed = seed
        self.events = EventQueue()
        self.events_processed: int = 0
        #: Events dispatched one-at-a-time through step() rather than the
        #: inlined run() loop (telemetry: fast-path vs slow-path split).
        self.slowpath_events: int = 0
        self._seed_sequence = np.random.SeedSequence(seed)
        self._periodics: dict[int, Event] = {}
        self._periodic_counter = 0
        self._trace: Optional[deque] = None
        self._probe = None
        self._tracer = None
        self._tracer_interval = 4096

    # -- debug tracing -------------------------------------------------------

    def enable_tracing(self, capacity: int = 1000) -> None:
        """Record the last ``capacity`` processed events for debugging.

        Each entry is ``(time, label)``; inspect with :meth:`trace`.
        Tracing costs one append per event — leave it off in production
        runs.
        """
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._trace = deque(maxlen=capacity)

    def trace(self) -> list:
        """The recorded (time, label) pairs, oldest first."""
        if self._trace is None:
            raise SimulationError("tracing not enabled; call enable_tracing()")
        return list(self._trace)

    @property
    def tracing(self) -> bool:
        """True when event tracing is enabled.

        Hot-path components consult this once at bind time: descriptive
        per-event labels (f-strings) are only worth building when someone
        is recording them.
        """
        return self._trace is not None

    # -- structured tracing (repro.observability) ----------------------------

    def attach_tracer(self, tracer, emit_interval: int = 4096) -> None:
        """Attach a :class:`repro.observability.Tracer` to the event loop.

        While attached, :meth:`run` emits an ``engine/events`` counter
        every ``emit_interval`` dispatched events carrying the cumulative
        event count, the queue depth, and simulated time.  Rates
        (events/sec) are derived post-hoc from consecutive records —
        the engine itself never reads a wall clock.  Detach with
        ``attach_tracer(None)``; when detached the loop carries no
        tracer state at all.
        """
        if tracer is not None and emit_interval < 1:
            raise SimulationError(
                f"emit_interval must be >= 1, got {emit_interval}"
            )
        self._tracer = tracer
        self._tracer_interval = emit_interval

    @property
    def tracer(self):
        """The attached structured tracer, or None when untraced."""
        return self._tracer

    # -- determinism sanitizer ----------------------------------------------

    def enable_sanitizer(self, probe=None):
        """Attach a determinism probe (see :mod:`repro.analysis.sanitizer`).

        From then on every dispatched event's timestamp is folded into
        the probe's event digest, components that consult
        :attr:`probe` record their RNG block boundaries, and prefetch
        samplers bound afterwards run in verify mode (per-draw replay of
        every block) unless the probe opts out.  Must be attached before
        sources bind — samplers capture the probe at bind time.
        Returns the probe.
        """
        if probe is None:
            # Deferred import: the analysis package depends on the engine,
            # not the other way around.
            from repro.analysis.sanitizer import DeterminismProbe

            probe = DeterminismProbe()
        self._probe = probe
        return probe

    @property
    def probe(self):
        """The attached determinism probe, or None when not sanitizing."""
        return self._probe

    def state_token(self) -> tuple:
        """``(events_processed, now)`` — a cheap progress fingerprint.

        Deterministic replay of the same seed and workload lands on the
        identical token; checkpoint resume uses it to verify a rebuilt
        slave actually reproduced its predecessor's state before any
        new observations are merged.
        """
        return (self.events_processed, self.now)

    # -- randomness --------------------------------------------------------

    def spawn_rng(self) -> np.random.Generator:
        """A fresh, independent random stream for one component.

        Every component (arrival process, service draws, policy noise)
        gets its own stream so adding a component never perturbs the
        draws of existing components — the standard variance-reduction
        discipline for queuing simulation.
        """
        (child,) = self._seed_sequence.spawn(1)
        return np.random.default_rng(child)

    # -- scheduling ---------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        return self.events.schedule(time, callback, label)

    def schedule_in(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` after a non-negative ``delay``.

        The queue insert is inlined (rather than delegated to
        ``events.schedule``): this is called once or twice per simulated
        event, and the extra frame is measurable at millions of events.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        events = self.events
        event = [self.now + delay, next(events._counter), callback, label, PENDING]
        heappush(events._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (used for completion re-scheduling)."""
        self.events.cancel(event)

    def schedule_periodic(
        self, period: float, callback: Callable[[], None], label: str = ""
    ) -> int:
        """Fire ``callback`` every ``period`` time units until cancelled.

        Used by the power-capping budgeting epoch ("budgets are calculated
        every second", Section 4.1).  Returns a task id accepted by
        :meth:`cancel_periodic`.  Only the most recent tick's handle is
        retained per task, so arbitrarily long runs hold O(1) state per
        periodic task.
        """
        if period <= 0:
            raise SimulationError(f"period must be > 0: {period}")
        self._periodic_counter += 1
        task_id = self._periodic_counter
        periodics = self._periodics

        def tick() -> None:
            callback()
            # Re-arm only if the task survived its own callback (the
            # callback may call cancel_periodic on itself).
            if task_id in periodics:
                periodics[task_id] = self.schedule_in(period, tick, label)

        periodics[task_id] = self.schedule_in(period, tick, label)
        return task_id

    def cancel_periodic(self, task_id: int) -> None:
        """Stop a periodic task created by :meth:`schedule_periodic`."""
        handle = self._periodics.pop(task_id, None)
        if handle is None:
            raise SimulationError(f"unknown periodic task: {task_id}")
        if handle[EV_STATE] == PENDING:
            self.events.cancel(handle)

    # -- event loop ---------------------------------------------------------

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        event = self.events.pop()
        if event is None:
            return False
        time = event[EV_TIME]
        if time < self.now:
            raise SimulationError(
                f"time went backwards: event at {time}, now {self.now}"
            )
        self.now = time
        self.events_processed += 1
        self.slowpath_events += 1
        if self._trace is not None:
            self._trace.append((time, event[EV_LABEL]))
        if self._probe is not None:
            self._probe.record_time(time)
        event[EV_CALLBACK]()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        stop_check_interval: int = 256,
    ) -> None:
        """Run the loop until a bound is reached.

        ``stop_when`` is polled every ``stop_check_interval`` events; the
        Experiment layer passes the statistics-convergence check here so
        that the convergence test itself does not dominate runtime.

        With ``until`` set, the clock always lands exactly on ``until``
        when the horizon is reached (whether the queue ran dry or the
        next event lies beyond it).
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run to a horizon in the past: {until} < now {self.now}"
            )
        events = self.events
        heap = events._heap
        pop = heappop
        trace = self._trace
        # Sanitizer hook: one bound method when probing, else None so the
        # per-event cost is a single local test (same shape as tracing).
        record = self._probe.record_time if self._probe is not None else None
        budget = math.inf if max_events is None else max_events
        # A None horizon folds to +inf so the per-event test is a single
        # float compare; the queue pop is inlined for the same reason.
        horizon = math.inf if until is None else until
        # With no stop_when, the check threshold is never reached.
        check_every = stop_check_interval if stop_when is not None else math.inf
        next_check = check_every
        # Structured tracing piggybacks on the same threshold shape.  An
        # untraced run folds the emit threshold to an unreachable *int*
        # (not +inf: int-vs-int compares are cheaper in CPython than
        # int-vs-float, and this test runs once per event), so the
        # disabled cost is one integer compare that never fires.
        tracer = self._tracer
        emit_every = self._tracer_interval if tracer is not None else sys.maxsize
        next_emit = emit_every
        processed = 0
        now = self.now
        # No per-event monotonicity test: schedule_at/schedule_in refuse
        # past times, heap pops are globally non-decreasing, and events
        # inserted from a callback carry time >= the current event's —
        # so popped times cannot regress.  (step() keeps the check for
        # externally driven queues.)
        try:
            while processed < budget:
                # -- inline EventQueue.pop (skipping cancelled entries) --
                while heap:
                    event = pop(heap)
                    if event[4] == 0:  # PENDING
                        break
                    events._dead -= 1
                else:
                    if until is not None:
                        now = until
                    return
                time = event[0]
                if time > horizon:
                    # Overshot: the event stays pending (never marked
                    # fired), the clock lands exactly on the horizon.
                    heappush(heap, event)
                    now = until
                    return
                event[4] = 2  # FIRED
                self.now = now = time
                if trace is not None:
                    trace.append((time, event[3]))
                if record is not None:
                    record(time)
                event[2]()
                processed += 1
                if processed >= next_emit:
                    next_emit = processed + emit_every
                    if tracer is not None:
                        tracer.counter(
                            "events",
                            self.events_processed + processed,
                            component="engine",
                            sim_time=now,
                            queue_depth=len(heap),
                            cancelled_pending=events._dead,
                        )
                if processed >= next_check:
                    next_check = processed + check_every
                    if stop_when():
                        return
        finally:
            self.now = now
            self.events_processed += processed
            if tracer is not None and processed:
                tracer.counter(
                    "events",
                    self.events_processed,
                    component="engine",
                    sim_time=now,
                    queue_depth=len(heap),
                    run_exit=True,
                )
