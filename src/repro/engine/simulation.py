"""The simulation clock + event loop, separated from experiment policy.

:class:`Simulation` knows how to advance virtual time and dispatch events;
it knows nothing about convergence, workloads, or servers.  The
:class:`~repro.engine.experiment.Experiment` layer composes it with the
statistics package.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.engine.events import Event, EventQueue, SimulationError


class Simulation:
    """Virtual clock, event queue, and deterministic RNG streams."""

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.events = EventQueue()
        self.events_processed: int = 0
        self._seed_sequence = np.random.SeedSequence(seed)
        self._periodic_handles: list[Event] = []
        self._trace: Optional[deque] = None

    # -- debug tracing -------------------------------------------------------

    def enable_tracing(self, capacity: int = 1000) -> None:
        """Record the last ``capacity`` processed events for debugging.

        Each entry is ``(time, label)``; inspect with :meth:`trace`.
        Tracing costs one append per event — leave it off in production
        runs.
        """
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._trace = deque(maxlen=capacity)

    def trace(self) -> list:
        """The recorded (time, label) pairs, oldest first."""
        if self._trace is None:
            raise SimulationError("tracing not enabled; call enable_tracing()")
        return list(self._trace)

    # -- randomness --------------------------------------------------------

    def spawn_rng(self) -> np.random.Generator:
        """A fresh, independent random stream for one component.

        Every component (arrival process, service draws, policy noise)
        gets its own stream so adding a component never perturbs the
        draws of existing components — the standard variance-reduction
        discipline for queuing simulation.
        """
        (child,) = self._seed_sequence.spawn(1)
        return np.random.default_rng(child)

    # -- scheduling ---------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        return self.events.schedule(time, callback, label)

    def schedule_in(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.events.schedule(self.now + delay, callback, label)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (used for completion re-scheduling)."""
        self.events.cancel(event)

    def schedule_periodic(
        self, period: float, callback: Callable[[], None], label: str = ""
    ) -> None:
        """Fire ``callback`` every ``period`` time units, forever.

        Used by the power-capping budgeting epoch ("budgets are calculated
        every second", Section 4.1).
        """
        if period <= 0:
            raise SimulationError(f"period must be > 0: {period}")

        def tick() -> None:
            callback()
            handle = self.schedule_in(period, tick, label)
            self._periodic_handles.append(handle)

        handle = self.schedule_in(period, tick, label)
        self._periodic_handles.append(handle)

    # -- event loop ---------------------------------------------------------

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        event = self.events.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError(
                f"time went backwards: event at {event.time}, now {self.now}"
            )
        self.now = event.time
        self.events_processed += 1
        if self._trace is not None:
            self._trace.append((event.time, event.label))
        event.callback()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        stop_check_interval: int = 256,
    ) -> None:
        """Run the loop until a bound is reached.

        ``stop_when`` is polled every ``stop_check_interval`` events; the
        Experiment layer passes the statistics-convergence check here so
        that the convergence test itself does not dominate runtime.
        """
        processed = 0
        while True:
            if until is not None:
                next_time = self.events.peek_time()
                if next_time is None or next_time > until:
                    self.now = until if next_time is None or until < next_time else self.now
                    return
            if max_events is not None and processed >= max_events:
                return
            if not self.step():
                return
            processed += 1
            if stop_when is not None and processed % stop_check_interval == 0:
                if stop_when():
                    return
