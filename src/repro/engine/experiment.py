"""The Experiment: a simulation run that stops at statistical convergence.

This is the user-facing composition layer of BigHouse: describe a queuing
network (sources, servers, balancers), declare output metrics with
accuracy/confidence targets, and :meth:`Experiment.run` exercises the
discrete-event simulation until every metric converges (Section 2.3) —
or a safety bound (event count / virtual time) trips first, in which case
the result is flagged unconverged rather than silently wrong.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, NamedTuple, Optional, Union

from repro.core.collection import StatisticsCollection
from repro.core.statistic import Estimate, Statistic
from repro.datacenter.source import Source, TraceSource
from repro.engine.simulation import Simulation


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    estimates: Dict[str, Estimate]
    converged: bool
    events_processed: int
    sim_time: float
    wall_time: float
    jobs_generated: int = 0
    extras: Dict[str, float] = field(default_factory=dict)
    #: Determinism digest when the run was sanitized (see
    #: repro.analysis.sanitizer), else None.
    sanitizer: Optional[object] = None
    #: repro.observability.ExperimentTelemetry when telemetry was
    #: collected (tracer attached or collect_telemetry set), else None.
    telemetry: Optional[object] = None

    def __getitem__(self, name: str) -> Estimate:
        return self.estimates[name]

    def __contains__(self, name: str) -> bool:
        return name in self.estimates


class MetricBinding(NamedTuple):
    """A declared station metric: which station, which job timing.

    ``track_response_time``/``track_waiting_time`` install opaque
    closures on the station; this record keeps the declarative facts so
    the fast path (:mod:`repro.engine.fastpath`) can tell whether a
    model's observers are exactly the standard timing metrics.
    """

    kind: str  # "response" | "waiting"
    station: object
    name: str


#: Engine selection values accepted by :class:`Experiment`.
ENGINES = ("event", "auto", "fastpath")


class Experiment:
    """A convergence-terminated stochastic queuing simulation.

    Parameters mirror the knobs of the BigHouse statistics package and
    become defaults for every metric tracked through this experiment:

    - ``warmup_samples`` (Nw), ``calibration_samples`` (Nc = 5000),
    - ``confidence`` (1 - alpha, default 95%),
    - ``bins`` / ``max_lag`` for calibration,
    - ``max_events`` / ``max_sim_time`` as safety bounds,
    - ``prefetch`` as the default sampling mode for sources added via
      :meth:`add_source`,
    - ``sanitize`` to attach a determinism probe (see
      :mod:`repro.analysis.sanitizer`): event timestamps are hashed,
      prefetched blocks are verified per-draw, and the resulting digest
      lands in :attr:`ExperimentResult.sanitizer`.
    """

    def __init__(
        self,
        seed: int = 0,
        warmup_samples: int = 1000,
        calibration_samples: int = 5000,
        confidence: float = 0.95,
        bins: int = 1000,
        max_lag: int = 50,
        max_events: int = 50_000_000,
        max_sim_time: Optional[float] = None,
        convergence_check_interval: int = 256,
        prefetch: bool = True,
        sanitize: bool = False,
        engine: str = "event",
    ):
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        self.simulation = Simulation(seed)
        self.stats = StatisticsCollection()
        self.seed = seed
        self.warmup_samples = warmup_samples
        self.calibration_samples = calibration_samples
        self.confidence = confidence
        self.bins = bins
        self.max_lag = max_lag
        self.max_events = max_events
        self.max_sim_time = max_sim_time
        self.convergence_check_interval = convergence_check_interval
        self.prefetch_default = prefetch
        self.engine = engine
        self.sources: list = []
        self._metric_bindings: list = []
        self._has_run = False
        self._tracer = None
        self._progress = None
        #: Attach an ExperimentTelemetry digest to results even without a
        #: tracer (``repro run --metrics``).
        self.collect_telemetry = False
        if sanitize:
            # Must happen before any add_source: samplers capture the
            # probe at bind time.
            self.simulation.enable_sanitizer()

    # -- topology -----------------------------------------------------------

    def add_source(
        self,
        workload,
        target,
        draw_sizes: bool = True,
        max_jobs: Optional[int] = None,
        name: Optional[str] = None,
        prefetch: Optional[bool] = None,
    ) -> Source:
        """Create and bind an open-loop source feeding ``target``.

        ``prefetch=None`` inherits the experiment-level default.
        """
        source = Source(
            workload,
            target,
            draw_sizes=draw_sizes,
            max_jobs=max_jobs,
            name=name or f"source-{len(self.sources)}",
            prefetch=self.prefetch_default if prefetch is None else prefetch,
        )
        source.bind(self.simulation)
        self.sources.append(source)
        return source

    def add_trace_source(self, trace, target, name: Optional[str] = None) -> TraceSource:
        """Create and bind a trace-replay source feeding ``target``."""
        source = TraceSource(trace, target, name=name or f"trace-{len(self.sources)}")
        source.bind(self.simulation)
        self.sources.append(source)
        return source

    def bind(self, component) -> None:
        """Bind any component (server, balancer, cluster) to the clock."""
        component.bind(self.simulation)

    # -- metrics ----------------------------------------------------------------

    def track(
        self,
        name: str,
        mean_accuracy: Optional[float] = 0.05,
        quantiles: Union[None, Mapping[float, float], Iterable] = None,
        **overrides,
    ) -> Statistic:
        """Declare an output metric with this experiment's defaults.

        Returns the :class:`Statistic`; feed it via :meth:`record`.
        """
        kwargs = dict(
            mean_accuracy=mean_accuracy,
            quantiles=quantiles,
            confidence=self.confidence,
            warmup_samples=self.warmup_samples,
            calibration_samples=self.calibration_samples,
            bins=self.bins,
            max_lag=self.max_lag,
        )
        kwargs.update(overrides)
        return self.stats.add(Statistic(name, **kwargs))

    def record(self, name: str, value: float) -> None:
        """Feed one observation to a tracked metric."""
        self.stats.record(name, value)

    def track_response_time(
        self,
        station,
        name: str = "response_time",
        mean_accuracy: Optional[float] = 0.05,
        quantiles: Union[None, Mapping[float, float], Iterable] = None,
        **overrides,
    ) -> Statistic:
        """Track job response time (finish - arrival) at a server/balancer."""
        statistic = self.track(
            name, mean_accuracy=mean_accuracy, quantiles=quantiles, **overrides
        )
        # Completion hooks fire once per job: bind the metric feed once
        # (recorder) rather than routing each value through a name lookup.
        record = self.stats.recorder(name)
        station.on_complete(
            lambda job, server: record(job.finish_time - job.arrival_time)
        )
        self._metric_bindings.append(MetricBinding("response", station, name))
        return statistic

    def track_waiting_time(
        self,
        station,
        name: str = "waiting_time",
        mean_accuracy: Optional[float] = 0.05,
        quantiles: Union[None, Mapping[float, float], Iterable] = None,
        **overrides,
    ) -> Statistic:
        """Track queueing delay (start - arrival) at a server/balancer."""
        statistic = self.track(
            name, mean_accuracy=mean_accuracy, quantiles=quantiles, **overrides
        )
        record = self.stats.recorder(name)
        station.on_complete(
            lambda job, server: record(job.start_time - job.arrival_time)
        )
        self._metric_bindings.append(MetricBinding("waiting", station, name))
        return statistic

    # -- observability -------------------------------------------------------

    def attach_tracer(self, tracer, emit_interval: int = 4096) -> None:
        """Attach a :class:`repro.observability.Tracer` to the whole run.

        Wires the event loop (periodic ``engine/events`` counters) and
        every tracked metric (phase transitions, convergence gauges) to
        one tracer.  Call before or after :meth:`track` — the collection
        forwards the tracer to future metrics too.
        """
        self._tracer = tracer
        self.simulation.attach_tracer(tracer, emit_interval)
        self.stats.attach_tracer(tracer)

    @property
    def tracer(self):
        """The attached structured tracer, or None."""
        return self._tracer

    def attach_progress(self, reporter) -> None:
        """Attach a :class:`repro.observability.ProgressReporter`.

        The reporter is polled from the convergence-check path (every
        ``convergence_check_interval`` events, throttled internally by
        its own wall-clock interval), so it costs nothing on the
        per-event path.
        """
        self._progress = reporter

    def _telemetry(self):
        """ExperimentTelemetry digest, or None when not collecting."""
        if self._tracer is None and not self.collect_telemetry:
            return None
        # Deferred import: the observability package is optional plumage
        # on top of the engine, not a dependency of it.
        from repro.observability.telemetry import ExperimentTelemetry

        return ExperimentTelemetry.from_experiment(self, tracer=self._tracer)

    def _stop_condition(self, stop_when):
        """Compose the convergence predicate with the progress poll."""
        progress = self._progress
        if progress is None:
            return stop_when

        def polled() -> bool:
            progress.poll(self)
            return stop_when()

        return polled

    # -- running -------------------------------------------------------------------

    def _probe_snapshot(self):
        probe = self.simulation.probe
        return probe.snapshot() if probe is not None else None

    def _run_loop(self, stop_when, max_events=None, max_sim_time=None) -> None:
        budget = max_events if max_events is not None else self.max_events
        horizon = max_sim_time if max_sim_time is not None else self.max_sim_time
        remaining = budget - self.simulation.events_processed
        if remaining <= 0:
            return
        self.simulation.run(
            until=horizon,
            max_events=remaining,
            stop_when=stop_when,
            stop_check_interval=self.convergence_check_interval,
        )

    def progress(self) -> Dict[str, Dict[str, float]]:
        """Live progress snapshot per metric.

        Each entry reports the phase, observation counts, the current
        Eq. 2-3 sample-size requirement, and the achieved relative
        accuracies — what a user polls to see how far a long simulation
        is from terminating.
        """
        snapshot: Dict[str, Dict[str, float]] = {}
        for statistic in self.stats:
            required = statistic.required_sample_size()
            entry = {
                "phase": statistic.phase.value,
                "observed": statistic.observed,
                "accepted": statistic.accepted,
                "required": required,
                "lag": statistic.lag,
            }
            if required not in (0, math.inf):
                entry["fraction_done"] = min(
                    1.0, statistic.accepted / required
                )
            entry.update(statistic.achieved_accuracy())
            snapshot[statistic.name] = entry
        return snapshot

    def run(
        self,
        max_events: Optional[int] = None,
        max_sim_time: Optional[float] = None,
    ) -> ExperimentResult:
        """Run until every tracked metric converges (or a bound trips).

        With ``engine="fastpath"`` the vectorized Lindley engine is
        required (raises ``FastpathError`` if the model does not
        qualify); ``engine="auto"`` uses it when eligible and otherwise
        falls back to the event engine, bit-identical to
        ``engine="event"``.
        """
        if not len(self.stats):
            raise RuntimeError(
                "experiment has no tracked metrics; call track()/"
                "track_response_time() before run()"
            )
        if self.engine != "event":
            # Deferred import: fastpath pulls in datacenter/numpy layers
            # that this module otherwise only type-references.
            from repro.engine import fastpath

            if self.engine == "fastpath":
                if max_sim_time is not None:
                    raise fastpath.FastpathError(
                        "max_sim_time requires the event engine"
                    )
                return fastpath.run_fastpath(self, max_events=max_events)
            if max_sim_time is None and fastpath.qualifies(self):
                return fastpath.run_fastpath(self, max_events=max_events)
        started = time.perf_counter()
        self._run_loop(
            stop_when=self._stop_condition(lambda: self.stats.all_converged),
            max_events=max_events,
            max_sim_time=max_sim_time,
        )
        wall = time.perf_counter() - started
        self._has_run = True
        return ExperimentResult(
            estimates=self.stats.report(),
            converged=self.stats.all_converged,
            events_processed=self.simulation.events_processed,
            sim_time=self.simulation.now,
            wall_time=wall,
            jobs_generated=sum(source.generated for source in self.sources),
            sanitizer=self._probe_snapshot(),
            telemetry=self._telemetry(),
        )

    def run_until_calibrated(
        self, max_events: Optional[int] = None
    ) -> ExperimentResult:
        """Run only through warm-up + calibration for every metric.

        This is the master's first step in a parallel simulation (Fig. 3):
        it needs the calibrated histogram bin schemes, nothing more.
        """
        if not len(self.stats):
            raise RuntimeError("experiment has no tracked metrics")
        started = time.perf_counter()
        self._run_loop(
            stop_when=self._stop_condition(lambda: self.stats.all_measuring),
            max_events=max_events,
        )
        wall = time.perf_counter() - started
        return ExperimentResult(
            estimates=self.stats.report(),
            converged=self.stats.all_converged,
            events_processed=self.simulation.events_processed,
            sim_time=self.simulation.now,
            wall_time=wall,
            jobs_generated=sum(source.generated for source in self.sources),
            sanitizer=self._probe_snapshot(),
        )

    def replay_chunks(
        self, chunks: Iterable, max_events: Optional[int] = None
    ) -> None:
        """Fast-forward by replaying a logged chunk schedule.

        A slave's state is a pure function of ``(seed, bin scheme,
        chunk history)`` — nothing else feeds its RNG streams — so a
        checkpoint never serializes live slaves: resume rebuilds each
        one and replays the exact sequence of accepted-observation
        quotas it had completed.  The replay's observations are *not*
        re-merged (they already live in the checkpointed master
        histograms); the caller discards the replayed reports and only
        verifies the landing state.
        """
        for chunk in chunks:
            self.run_until_accepted(chunk, max_events=max_events)

    def run_until_accepted(
        self, additional: int, max_events: Optional[int] = None
    ) -> ExperimentResult:
        """Run until ``additional`` more observations have been accepted
        across all metrics (a slave measurement chunk, Fig. 3).

        Also stops once every metric has locally converged: a converged
        statistic ignores further observations, so past that point the
        quota is unreachable and extra events change nothing about the
        report — they would only burn wall-clock until ``max_events``.
        """
        if additional < 1:
            raise ValueError(f"additional must be >= 1, got {additional}")
        target = self.stats.total_accepted + additional
        started = time.perf_counter()
        self._run_loop(
            stop_when=self._stop_condition(
                lambda: self.stats.total_accepted >= target
                or self.stats.all_converged
            ),
            max_events=max_events,
        )
        wall = time.perf_counter() - started
        return ExperimentResult(
            estimates=self.stats.report(),
            converged=self.stats.all_converged,
            events_processed=self.simulation.events_processed,
            sim_time=self.simulation.now,
            wall_time=wall,
            jobs_generated=sum(source.generated for source in self.sources),
            sanitizer=self._probe_snapshot(),
        )
