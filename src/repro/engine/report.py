"""Result serialization: experiment outcomes as plain JSON.

Long parameter sweeps (every benchmark in this repo) want results on
disk in a tool-agnostic form.  ``result_to_dict`` flattens an
:class:`~repro.engine.experiment.ExperimentResult` (or a parallel /
replicated result) into JSON-safe plain data; ``save_result`` /
``load_result`` are the file-shaped conveniences.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.statistic import Estimate
from repro.engine.experiment import ExperimentResult


def estimate_to_dict(estimate: Estimate) -> dict:
    """One metric's estimate as plain data."""
    return {
        "name": estimate.name,
        "phase": estimate.phase.value,
        "converged": estimate.converged,
        "lag": estimate.lag,
        "accepted": estimate.accepted,
        "observed": estimate.observed,
        "mean": estimate.mean,
        "std": estimate.std,
        "mean_ci": list(estimate.mean_ci) if estimate.mean_ci else None,
        "quantiles": {str(q): value for q, value in estimate.quantiles.items()},
        "quantile_ci": {
            str(q): list(interval)
            for q, interval in estimate.quantile_ci.items()
        },
    }


def result_to_dict(result: ExperimentResult) -> dict:
    """A full experiment outcome as plain data."""
    payload = {
        "converged": result.converged,
        "events_processed": result.events_processed,
        "sim_time": result.sim_time,
        "wall_time": result.wall_time,
        "jobs_generated": result.jobs_generated,
        "extras": dict(result.extras),
        "metrics": {
            name: estimate_to_dict(estimate)
            for name, estimate in result.estimates.items()
        },
    }
    sanitizer = getattr(result, "sanitizer", None)
    if sanitizer is not None:
        payload["sanitizer"] = sanitizer.to_dict()
    return payload


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write a result as indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_result(path: Union[str, Path]) -> dict:
    """Read a saved result back as the plain-dict form.

    (Deliberately not reconstructed into live objects: a saved result is
    a report, not a resumable simulation.)
    """
    with Path(path).open() as handle:
        return json.load(handle)
