"""Result serialization: experiment outcomes as plain JSON.

Long parameter sweeps (every benchmark in this repo) want results on
disk in a tool-agnostic form.  ``result_to_dict`` flattens an
:class:`~repro.engine.experiment.ExperimentResult` (or a parallel /
replicated result) into JSON-safe plain data; ``save_result`` /
``load_result`` are the file-shaped conveniences.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.statistic import Estimate
from repro.engine.experiment import ExperimentResult


def estimate_to_dict(estimate: Estimate) -> dict:
    """One metric's estimate as plain data."""
    return {
        "name": estimate.name,
        "phase": estimate.phase.value,
        "converged": estimate.converged,
        "lag": estimate.lag,
        "accepted": estimate.accepted,
        "observed": estimate.observed,
        "mean": estimate.mean,
        "std": estimate.std,
        "mean_ci": list(estimate.mean_ci) if estimate.mean_ci else None,
        "quantiles": {str(q): value for q, value in estimate.quantiles.items()},
        "quantile_ci": {
            str(q): list(interval)
            for q, interval in estimate.quantile_ci.items()
        },
    }


def result_to_dict(result: ExperimentResult) -> dict:
    """A full experiment outcome as plain data."""
    payload = {
        "converged": result.converged,
        "events_processed": result.events_processed,
        "sim_time": result.sim_time,
        "wall_time": result.wall_time,
        "jobs_generated": result.jobs_generated,
        "extras": dict(result.extras),
        "metrics": {
            name: estimate_to_dict(estimate)
            for name, estimate in result.estimates.items()
        },
    }
    sanitizer = getattr(result, "sanitizer", None)
    if sanitizer is not None:
        payload["sanitizer"] = sanitizer.to_dict()
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        payload["telemetry"] = _plain(telemetry)
    return payload


def _plain(value):
    """Objects with a to_dict() flatten themselves; dicts pass through."""
    return value.to_dict() if hasattr(value, "to_dict") else value


def parallel_result_to_dict(result) -> dict:
    """A ParallelResult as plain data (``repro run --parallel N``)."""
    payload = {
        "converged": result.converged,
        "n_slaves": result.n_slaves,
        "rounds": result.rounds,
        "degraded": result.degraded,
        "dead_slaves": list(result.dead_slaves),
        "failure_causes": {
            str(slave_id): cause
            for slave_id, cause in sorted(result.failure_causes.items())
        },
        "restarts": result.restarts,
        "resumed": result.resumed,
        "merged_digests": dict(result.merged_digests),
        "master_events": result.master_events,
        "slave_events": list(result.slave_events),
        "total_events": result.total_events,
        "total_accepted": result.total_accepted,
        "wall_time": result.wall_time,
        "master_wall_time": result.master_wall_time,
        "metrics": {
            name: estimate_to_dict(estimate)
            for name, estimate in result.estimates.items()
        },
    }
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        payload["telemetry"] = _plain(telemetry)
    return payload


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write a result as indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_result(path: Union[str, Path]) -> dict:
    """Read a saved result back as the plain-dict form.

    (Deliberately not reconstructed into live objects: a saved result is
    a report, not a resumable simulation.)
    """
    with Path(path).open() as handle:
        return json.load(handle)
