"""Probes: turning continuous state into metric observation streams.

The statistics package consumes discrete observations, but several of
the paper's output metrics are *state*, not events: server power draw,
utilization, queue depth, capping level.  BigHouse observes these by
sampling at epochs (e.g. the power-capping level is observed every
budgeting epoch).  :class:`PeriodicProbe` generalizes that: evaluate a
callable every ``period`` simulated seconds and feed the value to a
metric.  :class:`CompletionProbe` does the same per job completion for
derived per-job quantities (slowdown, per-stage latency, ...).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.datacenter.server import Server
from repro.engine.simulation import Simulation


class PeriodicProbe:
    """Sample ``reader()`` every ``period`` seconds into a metric.

    Parameters
    ----------
    reader:
        Zero-argument callable returning the current value.
    record:
        Sink, e.g. ``lambda v: experiment.record("power", v)``.
    period:
        Sampling interval in simulated seconds.
    skip_none:
        When True, a ``None`` reading is silently dropped (lets readers
        signal "no sample this epoch").
    """

    def __init__(
        self,
        reader: Callable[[], Optional[float]],
        record: Callable[[float], None],
        period: float,
        skip_none: bool = True,
    ):
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.reader = reader
        self.record = record
        self.period = float(period)
        self.skip_none = skip_none
        self.samples_taken = 0
        self.sim: Optional[Simulation] = None

    def bind(self, sim: Simulation) -> None:
        """Start sampling."""
        if self.sim is not None:
            raise RuntimeError("probe already bound")
        self.sim = sim
        sim.schedule_periodic(self.period, self._tick, "periodic-probe")

    def _tick(self) -> None:
        value = self.reader()
        if value is None and self.skip_none:
            return
        self.samples_taken += 1
        self.record(float(value))


class CompletionProbe:
    """Feed a per-job derived quantity to a metric on every completion.

    ``extractor(job, server)`` computes the observation; returning
    ``None`` skips that job (e.g. only sample jobs that waited).
    """

    def __init__(
        self,
        station,
        extractor: Callable[..., Optional[float]],
        record: Callable[[float], None],
    ):
        self.extractor = extractor
        self.record = record
        self.samples_taken = 0
        station.on_complete(self._on_complete)

    def _on_complete(self, job, server) -> None:
        value = self.extractor(job, server)
        if value is None:
            return
        self.samples_taken += 1
        self.record(float(value))


def slowdown(job, server: Server) -> float:
    """Per-job slowdown: response time over (ideal) service demand.

    A classic fairness metric; 1.0 means the job never queued and ran at
    full speed.
    """
    if job.size is None or job.size <= 0:
        return 1.0
    return job.response_time / job.size
