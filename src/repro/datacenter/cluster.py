"""Cluster containers: racks and whole-datacenter groupings.

BigHouse "uses an object-oriented hierarchy to represent various parts of
the data center such as servers, racks, etc." (Section 2.1).  These
containers aggregate utilization/idleness across their members and are
what the power-capping controller iterates over each budgeting epoch.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Iterator, List, Optional, Sequence

from repro.datacenter.job import Job
from repro.datacenter.server import Server
from repro.distributions.prefetch import PrefetchSampler
from repro.engine.simulation import Simulation


class ClusterError(RuntimeError):
    """Raised on invalid cluster operations (oversized gang, bad wiring)."""


class Rack:
    """A named group of servers (aggregation + addressing unit)."""

    def __init__(self, servers: Sequence[Server], name: str = "rack"):
        if not servers:
            raise ValueError("rack needs >= 1 server")
        self.servers: List[Server] = list(servers)
        self.name = name

    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def bind(self, sim: Simulation) -> None:
        """Bind every member server."""
        for server in self.servers:
            server.bind(sim)

    def total_cores(self) -> int:
        """Cores across the rack."""
        return sum(server.cores for server in self.servers)

    def utilization_now(self) -> float:
        """Instantaneous busy-core fraction across the rack."""
        busy = sum(server.busy_cores for server in self.servers)
        return busy / self.total_cores()


class Cluster:
    """A collection of racks; the top of the object hierarchy.

    Convenience constructor :meth:`homogeneous` builds the flat N-server
    clusters used in the scalability study (Section 4), grouping servers
    into racks of ``rack_size``.
    """

    def __init__(self, racks: Sequence[Rack], name: str = "cluster"):
        if not racks:
            raise ValueError("cluster needs >= 1 rack")
        self.racks: List[Rack] = list(racks)
        self.name = name

    @classmethod
    def homogeneous(
        cls,
        n_servers: int,
        cores: int = 4,
        rack_size: int = 40,
        name: str = "cluster",
        server_factory=None,
    ) -> "Cluster":
        """Build N identical servers grouped into racks.

        ``server_factory(index)`` may be supplied to customize servers
        (e.g. to attach power models); it must return a :class:`Server`.
        """
        if n_servers < 1:
            raise ValueError(f"need >= 1 server, got {n_servers}")
        if rack_size < 1:
            raise ValueError(f"rack_size must be >= 1, got {rack_size}")
        servers = []
        for index in range(n_servers):
            if server_factory is not None:
                servers.append(server_factory(index))
            else:
                servers.append(Server(cores=cores, name=f"{name}-s{index}"))
        racks = [
            Rack(servers[start:start + rack_size],
                 name=f"{name}-r{start // rack_size}")
            for start in range(0, n_servers, rack_size)
        ]
        return cls(racks, name=name)

    @property
    def servers(self) -> List[Server]:
        """All servers, rack by rack."""
        return [server for rack in self.racks for server in rack]

    def __len__(self) -> int:
        return sum(len(rack) for rack in self.racks)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def bind(self, sim: Simulation) -> None:
        """Bind every server in every rack."""
        for rack in self.racks:
            rack.bind(sim)

    def total_cores(self) -> int:
        """Cores across the cluster."""
        return sum(rack.total_cores() for rack in self.racks)

    def utilization_now(self) -> float:
        """Instantaneous busy-core fraction across the cluster."""
        busy = sum(server.busy_cores for server in self.servers)
        return busy / self.total_cores()


class MultiserverCluster:
    """Gang scheduler: each job holds ``servers_needed`` servers at once.

    This is the multiserver-job model of Baccelli, Olliaro et al.
    (PAPERS.md): a pool of ``n_servers`` identical servers, FCFS order,
    and *head-of-line blocking* — the job at the head of the queue waits
    until its full gang of servers is simultaneously free, and nothing
    behind it may start while it waits (unless backfill is enabled).
    GPU-training gangs and MPI ranks are the motivating workloads.

    ``backfill=True`` enables conservative (EASY-style) backfill: while
    the head is blocked, a later job may start *only if* doing so cannot
    delay the head's reservation — it either finishes before the head's
    reserved start time, or it fits entirely into servers the head will
    not need then.  The head job is therefore never starved by design;
    :meth:`head_reservation` exposes the reservation so tests can pin
    that invariant.

    Waste accounting: whenever jobs are queued but servers sit idle
    (fragmentation under HoL blocking), those server-seconds are
    *wasted* — the central inefficiency of the multiserver-job model.
    :meth:`waste_fraction` / :meth:`blocked_fraction` report the
    time-integrated metrics the fig-style benchmarks sweep.

    The outward interface matches :class:`~repro.datacenter.server.Server`
    (``bind`` / ``arrive`` / ``on_complete``), so sources, experiments,
    and metric tracking compose unchanged.
    """

    def __init__(
        self,
        n_servers: int,
        speed: float = 1.0,
        backfill: bool = False,
        service_distribution=None,
        name: str = "msj-cluster",
    ):
        if n_servers < 1:
            raise ClusterError(f"n_servers must be >= 1, got {n_servers}")
        if speed <= 0:
            raise ClusterError(f"speed must be > 0, got {speed}")
        self.n_servers = int(n_servers)
        self.speed = float(speed)
        self.backfill = bool(backfill)
        self.service_distribution = service_distribution
        self.name = name

        self.sim: Optional[Simulation] = None
        self._service_rng = None
        self._next_size: Optional[PrefetchSampler] = None
        self._traced = False
        self.free_servers = self.n_servers
        self._queue: deque[Job] = deque()
        self._running: dict[int, Job] = {}
        self.completed_jobs = 0
        self.backfilled_jobs = 0
        self._complete_listeners: list[Callable[[Job, "MultiserverCluster"], None]] = []

        # Time-weighted integrals for the waste/blocking metrics.
        self._last_update = 0.0
        self._busy_integral = 0.0      # server-seconds in service
        self._waste_integral = 0.0     # idle server-seconds while jobs queued
        self._blocked_integral = 0.0   # seconds with a blocked head job

    # -- wiring -----------------------------------------------------------

    def bind(self, sim: Simulation) -> None:
        """Attach to a simulation (idempotent)."""
        if self.sim is sim:
            return
        if self.sim is not None:
            raise ClusterError(f"{self.name}: already bound")
        self.sim = sim
        self._last_update = sim.now
        self._traced = sim.tracing
        if self.service_distribution is not None:
            self._service_rng = sim.spawn_rng()
            self._next_size = PrefetchSampler(
                self.service_distribution, self._service_rng
            )

    def on_complete(self, listener: Callable[[Job, "MultiserverCluster"], None]) -> None:
        """Call ``listener(job, cluster)`` whenever a gang job finishes."""
        self._complete_listeners.append(listener)

    # -- state ------------------------------------------------------------

    @property
    def busy_servers(self) -> int:
        """Servers currently held by running gangs."""
        return self.n_servers - self.free_servers

    @property
    def queue_length(self) -> int:
        """Gang jobs waiting (head blocked or behind a blocked head)."""
        return len(self._queue)

    @property
    def outstanding(self) -> int:
        """Jobs in the system: queued + running."""
        return len(self._queue) + len(self._running)

    def utilization_now(self) -> float:
        """Instantaneous busy-server fraction."""
        return self.busy_servers / self.n_servers

    # -- metrics -----------------------------------------------------------

    def _update_integrals(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0:
            busy = self.n_servers - self.free_servers
            self._busy_integral += dt * busy
            if self._queue:
                self._blocked_integral += dt
                if self.free_servers > 0:
                    self._waste_integral += dt * self.free_servers
        self._last_update = now

    def waste_fraction(self) -> float:
        """Fraction of total server capacity wasted so far: idle
        server-seconds while jobs were queued, over all server-seconds."""
        self._update_integrals()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._waste_integral / (elapsed * self.n_servers)

    def blocked_fraction(self) -> float:
        """Fraction of elapsed time with a blocked head-of-line job."""
        self._update_integrals()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._blocked_integral / elapsed

    def utilization(self) -> float:
        """Time-averaged busy-server fraction so far."""
        self._update_integrals()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.n_servers)

    # -- job flow -----------------------------------------------------------

    def _need(self, job: Job) -> int:
        need = getattr(job, "servers_needed", 1) or 1
        need = int(need)
        if need < 1:
            need = 1
        if need > self.n_servers:
            raise ClusterError(
                f"{self.name}: job #{job.job_id} needs {need} servers but "
                f"the cluster has only {self.n_servers}"
            )
        return need

    def arrive(self, job: Job) -> None:
        """Accept a gang job: start it or queue it in FCFS order."""
        if self.sim is None:
            raise ClusterError(f"{self.name}: not bound to a simulation")
        if job.arrival_time is None:
            job.arrival_time = self.sim.now
        if job.size is None:
            if self._next_size is None:
                raise ClusterError(
                    f"{self.name}: job #{job.job_id} has no size and the "
                    "cluster has no service distribution"
                )
            job.size = self._next_size()
        if job.remaining is None:
            job.remaining = job.size
        self._need(job)  # validate before accepting
        self._update_integrals()
        self._queue.append(job)
        self._dispatch()

    def _start(self, job: Job, need: int) -> None:
        now = self.sim.now
        if job.start_time is None:
            job.start_time = now
        self.free_servers -= need
        self._running[job.job_id] = job
        label = (
            f"{self.name}:complete#{job.job_id}" if self._traced else ""
        )
        job._completion_event = self.sim.schedule_in(
            job.remaining / self.speed, partial(self._complete, job), label
        )

    def _complete(self, job: Job) -> None:
        job._completion_event = None
        self._update_integrals()
        need = self._need(job)
        del self._running[job.job_id]
        self.free_servers += need
        job.remaining = 0.0
        job.finish_time = self.sim.now
        self.completed_jobs += 1
        for listener in self._complete_listeners:
            listener(job, self)
        self._dispatch()

    def _dispatch(self) -> None:
        queue = self._queue
        # FCFS with head-of-line blocking: start in order while gangs fit.
        while queue:
            head = queue[0]
            need = self._need(head)
            if need > self.free_servers:
                break
            queue.popleft()
            self._start(head, need)
        if self.backfill and queue and self.free_servers > 0:
            self._backfill()

    # -- backfill ------------------------------------------------------------

    def head_reservation(self) -> Optional[tuple]:
        """The blocked head job's reservation: ``(reserved_start,
        extra_servers)``.

        ``reserved_start`` is the earliest instant the head's gang fits
        given the *currently running* jobs' completion times;
        ``extra_servers`` is how many servers remain free at that
        instant beyond the head's need.  ``None`` when no head is
        blocked.  Backfill admits a candidate only if it cannot push
        this reservation back, which is the no-starvation invariant.
        """
        if not self._queue:
            return None
        head = self._queue[0]
        need = self._need(head)
        if need <= self.free_servers:
            return None
        free_at = self.free_servers
        reserved_start = self.sim.now
        releases = sorted(
            (job._completion_event[0], self._need(job))
            for job in self._running.values()
        )
        for finish_time, freed in releases:
            free_at += freed
            reserved_start = finish_time
            if free_at >= need:
                break
        return reserved_start, free_at - need

    def _backfill(self) -> None:
        """EASY backfill: admit later jobs that cannot delay the head."""
        restart = True
        while restart:
            restart = False
            reservation = self.head_reservation()
            if reservation is None:
                return
            reserved_start, extra = reservation
            now = self.sim.now
            for position, candidate in enumerate(self._queue):
                if position == 0:
                    continue
                need = self._need(candidate)
                if need > self.free_servers:
                    continue
                finish = now + candidate.remaining / self.speed
                if finish <= reserved_start or need <= extra:
                    del self._queue[position]
                    self._start(candidate, need)
                    self.backfilled_jobs += 1
                    # State changed: recompute the reservation and rescan.
                    restart = True
                    break

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiserverCluster({self.name!r}, n={self.n_servers}, "
            f"free={self.free_servers}, queued={len(self._queue)}, "
            f"backfill={self.backfill})"
        )
