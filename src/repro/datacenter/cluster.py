"""Cluster containers: racks and whole-datacenter groupings.

BigHouse "uses an object-oriented hierarchy to represent various parts of
the data center such as servers, racks, etc." (Section 2.1).  These
containers aggregate utilization/idleness across their members and are
what the power-capping controller iterates over each budgeting epoch.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.datacenter.server import Server
from repro.engine.simulation import Simulation


class Rack:
    """A named group of servers (aggregation + addressing unit)."""

    def __init__(self, servers: Sequence[Server], name: str = "rack"):
        if not servers:
            raise ValueError("rack needs >= 1 server")
        self.servers: List[Server] = list(servers)
        self.name = name

    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def bind(self, sim: Simulation) -> None:
        """Bind every member server."""
        for server in self.servers:
            server.bind(sim)

    def total_cores(self) -> int:
        """Cores across the rack."""
        return sum(server.cores for server in self.servers)

    def utilization_now(self) -> float:
        """Instantaneous busy-core fraction across the rack."""
        busy = sum(server.busy_cores for server in self.servers)
        return busy / self.total_cores()


class Cluster:
    """A collection of racks; the top of the object hierarchy.

    Convenience constructor :meth:`homogeneous` builds the flat N-server
    clusters used in the scalability study (Section 4), grouping servers
    into racks of ``rack_size``.
    """

    def __init__(self, racks: Sequence[Rack], name: str = "cluster"):
        if not racks:
            raise ValueError("cluster needs >= 1 rack")
        self.racks: List[Rack] = list(racks)
        self.name = name

    @classmethod
    def homogeneous(
        cls,
        n_servers: int,
        cores: int = 4,
        rack_size: int = 40,
        name: str = "cluster",
        server_factory=None,
    ) -> "Cluster":
        """Build N identical servers grouped into racks.

        ``server_factory(index)`` may be supplied to customize servers
        (e.g. to attach power models); it must return a :class:`Server`.
        """
        if n_servers < 1:
            raise ValueError(f"need >= 1 server, got {n_servers}")
        if rack_size < 1:
            raise ValueError(f"rack_size must be >= 1, got {rack_size}")
        servers = []
        for index in range(n_servers):
            if server_factory is not None:
                servers.append(server_factory(index))
            else:
                servers.append(Server(cores=cores, name=f"{name}-s{index}"))
        racks = [
            Rack(servers[start:start + rack_size],
                 name=f"{name}-r{start // rack_size}")
            for start in range(0, n_servers, rack_size)
        ]
        return cls(racks, name=name)

    @property
    def servers(self) -> List[Server]:
        """All servers, rack by rack."""
        return [server for rack in self.racks for server in rack]

    def __len__(self) -> int:
        return sum(len(rack) for rack in self.racks)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def bind(self, sim: Simulation) -> None:
        """Bind every server in every rack."""
        for rack in self.racks:
            rack.bind(sim)

    def total_cores(self) -> int:
        """Cores across the cluster."""
        return sum(rack.total_cores() for rack in self.racks)

    def utilization_now(self) -> float:
        """Instantaneous busy-core fraction across the cluster."""
        busy = sum(server.busy_cores for server in self.servers)
        return busy / self.total_cores()
