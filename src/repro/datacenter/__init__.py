"""Queuing-network objects: jobs, servers, queues, balancers, clusters.

BigHouse represents a data center as "an interrelated network of queues
and power/performance models" (Section 1).  The unit of work is a
:class:`~repro.datacenter.job.Job` (a request/query/transaction); a
:class:`~repro.datacenter.server.Server` owns ``k`` cores and a queueing
discipline, supports run-time speed changes (DVFS) and whole-server
pause/resume (deep sleep), and notifies listeners on job completion so
output metrics and multi-tier forwarding can be wired up from outside.
"""

from repro.datacenter.job import Job
from repro.datacenter.disciplines import (
    FCFSQueue,
    LIFOQueue,
    SJFQueue,
    QueueingDiscipline,
)
from repro.datacenter.server import Server, ServerError
from repro.datacenter.source import Source, TraceSource
from repro.datacenter.balancers import (
    CloningBalancer,
    JoinShortestQueue,
    LoadBalancer,
    PowerOfTwoChoices,
    RandomBalancer,
    RoundRobinBalancer,
    SpeculativeRetryBalancer,
)
from repro.datacenter.cluster import Cluster, ClusterError, MultiserverCluster, Rack
from repro.datacenter.processor_sharing import ProcessorSharingServer
from repro.datacenter.srpt import SRPTServer
from repro.datacenter.closedloop import ClosedLoopClients, interactive_response_time
from repro.datacenter.failures import FailureInjector
from repro.datacenter.network import (
    NetworkError,
    RoutingNetwork,
    traffic_equations,
)
from repro.datacenter.multiclass import (
    JobClass,
    MultiClassSource,
    PriorityQueue,
    cobham_waiting_times,
    job_class_of,
    track_per_class_response,
)

__all__ = [
    "Job",
    "QueueingDiscipline",
    "FCFSQueue",
    "LIFOQueue",
    "SJFQueue",
    "Server",
    "ServerError",
    "Source",
    "TraceSource",
    "LoadBalancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "JoinShortestQueue",
    "PowerOfTwoChoices",
    "CloningBalancer",
    "SpeculativeRetryBalancer",
    "Cluster",
    "ClusterError",
    "MultiserverCluster",
    "Rack",
    "ProcessorSharingServer",
    "SRPTServer",
    "ClosedLoopClients",
    "interactive_response_time",
    "JobClass",
    "MultiClassSource",
    "PriorityQueue",
    "cobham_waiting_times",
    "job_class_of",
    "track_per_class_response",
    "NetworkError",
    "RoutingNetwork",
    "traffic_equations",
    "FailureInjector",
]
