"""Preemptive shortest-remaining-processing-time (SRPT) station.

SRPT is the canonical mean-response-optimal single-server policy and a
staple baseline of the tail-latency scheduling literature (which the
DreamWeaver line of work engages with).  The standard
:class:`~repro.datacenter.server.Server` only preempts whole-server
(pause/resume); SRPT needs per-job preemption, so it is a separate
single-core station: whenever a job arrives whose size is smaller than
the running job's *remaining* work, the running job is preempted back
into the pool and the newcomer takes the core.

Invariants: work-conserving; within any sample path, SRPT's mean
response time is a lower bound over all policies (tested against FCFS).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.datacenter.job import Job
from repro.datacenter.server import ServerError
from repro.distributions.prefetch import PrefetchSampler
from repro.engine.simulation import Simulation


class SRPTServer:
    """Single-core preemptive shortest-remaining-processing-time."""

    def __init__(self, speed: float = 1.0, service_distribution=None,
                 name: str = "srpt-server"):
        if speed <= 0:
            raise ServerError(f"speed must be > 0, got {speed}")
        self.speed = float(speed)
        self.service_distribution = service_distribution
        self.name = name
        self.sim: Optional[Simulation] = None
        self._service_rng = None
        self._next_size: Optional[PrefetchSampler] = None
        self._traced = False
        self._running: Optional[Job] = None
        self._pool: list[tuple[float, int, Job]] = []  # (remaining, tie, job)
        self._tie = itertools.count()
        self.completed_jobs = 0
        self.preemptions = 0
        self._complete_listeners: list[Callable[[Job, "SRPTServer"], None]] = []

    # -- wiring ---------------------------------------------------------------

    def bind(self, sim: Simulation) -> None:
        """Attach to a simulation (idempotent)."""
        if self.sim is sim:
            return
        if self.sim is not None:
            raise ServerError(f"{self.name}: already bound")
        self.sim = sim
        self._traced = sim.tracing
        if self.service_distribution is not None:
            self._service_rng = sim.spawn_rng()
            self._next_size = PrefetchSampler(
                self.service_distribution, self._service_rng
            )

    def on_complete(self, listener: Callable[[Job, "SRPTServer"], None]) -> None:
        """Call ``listener(job, server)`` on every completion."""
        self._complete_listeners.append(listener)

    # -- state ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Jobs in the station (running + preempted/waiting)."""
        return len(self._pool) + (1 if self._running is not None else 0)

    # -- mechanics ---------------------------------------------------------------

    def _sync_running(self) -> None:
        """Debit progress from the running job and cancel its event."""
        job = self._running
        if job is None:
            return
        elapsed = self.sim.now - job._last_progress
        if elapsed > 0:
            job.remaining = max(0.0, job.remaining - elapsed * self.speed)
        job._last_progress = self.sim.now
        if job._completion_event is not None:
            self.sim.cancel(job._completion_event)
            job._completion_event = None

    def _dispatch(self) -> None:
        """Put the smallest-remaining job on the core."""
        if self._running is None and self._pool:
            _, _, job = heapq.heappop(self._pool)
            self._running = job
            if job.start_time is None:
                job.start_time = self.sim.now
            job._last_progress = self.sim.now
            label = (
                f"{self.name}:complete#{job.job_id}" if self._traced else ""
            )
            job._completion_event = self.sim.schedule_in(
                job.remaining / self.speed,
                lambda j=job: self._complete(j),
                label,
            )

    def arrive(self, job: Job) -> None:
        """Admit a job, preempting the running one if the newcomer is
        shorter than its remaining work."""
        if self.sim is None:
            raise ServerError(f"{self.name}: not bound")
        if job.arrival_time is None:
            job.arrival_time = self.sim.now
        if job.size is None:
            if self.service_distribution is None:
                raise ServerError(
                    f"{self.name}: sizeless job and no service distribution"
                )
            job.size = self._next_size()
        if job.remaining is None:
            job.remaining = job.size
        if self._running is not None:
            self._sync_running()
            if job.remaining < self._running.remaining:
                preempted = self._running
                self._running = None
                self.preemptions += 1
                heapq.heappush(
                    self._pool,
                    (preempted.remaining, next(self._tie), preempted),
                )
            else:
                # Running job keeps the core; re-arm its completion.
                running = self._running
                label = (
                    f"{self.name}:complete#{running.job_id}"
                    if self._traced else ""
                )
                running._completion_event = self.sim.schedule_in(
                    running.remaining / self.speed,
                    lambda j=running: self._complete(j),
                    label,
                )
        heapq.heappush(self._pool, (job.remaining, next(self._tie), job))
        self._dispatch()

    def _complete(self, job: Job) -> None:
        job._completion_event = None
        job.remaining = 0.0
        job.finish_time = self.sim.now
        self._running = None
        self.completed_jobs += 1
        for listener in self._complete_listeners:
            listener(job, self)
        self._dispatch()
