"""Processor-sharing (PS) server model.

Time-sharing operating systems approximate PS: all jobs in the station
progress simultaneously, each at ``speed / n`` when ``n`` jobs are
present.  PS cannot be expressed as a queueing *discipline* on the
standard server (there is no queue — everyone is in service), so it is a
separate station type with the same outward interface (``bind``,
``arrive``, ``on_complete``), implemented by re-scheduling the earliest
completion every time the multiprogramming level changes.

PS is insensitive to the service distribution's shape: mean response at
load rho is E[S] / (1 - rho) regardless of Cv — a sharp contrast with
FCFS under heavy-tailed service, and a useful cross-check that the
simulator's service accounting is exact (a property test pins this).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.datacenter.job import Job
from repro.datacenter.server import ServerError
from repro.distributions.prefetch import PrefetchSampler
from repro.engine.simulation import Simulation


class ProcessorSharingServer:
    """Single-station egalitarian processor sharing."""

    def __init__(self, speed: float = 1.0, service_distribution=None,
                 name: str = "ps-server"):
        if speed <= 0:
            raise ServerError(f"speed must be > 0, got {speed}")
        self.speed = float(speed)
        self.service_distribution = service_distribution
        self.name = name
        self.sim: Optional[Simulation] = None
        self._service_rng = None
        self._next_size: Optional[PrefetchSampler] = None
        self._traced = False
        self._jobs: dict[int, Job] = {}
        self._completion_event = None
        self._last_progress = 0.0
        self.completed_jobs = 0
        self._complete_listeners: list[Callable[[Job, "ProcessorSharingServer"], None]] = []

    # -- wiring ---------------------------------------------------------------

    def bind(self, sim: Simulation) -> None:
        """Attach to a simulation (idempotent)."""
        if self.sim is sim:
            return
        if self.sim is not None:
            raise ServerError(f"{self.name}: already bound")
        self.sim = sim
        self._last_progress = sim.now
        self._traced = sim.tracing
        if self.service_distribution is not None:
            self._service_rng = sim.spawn_rng()
            self._next_size = PrefetchSampler(
                self.service_distribution, self._service_rng
            )

    def on_complete(self, listener: Callable[[Job, "ProcessorSharingServer"], None]) -> None:
        """Call ``listener(job, server)`` on every completion."""
        self._complete_listeners.append(listener)

    # -- state ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Jobs currently sharing the processor."""
        return len(self._jobs)

    @property
    def per_job_rate(self) -> float:
        """Service rate each job receives right now."""
        n = len(self._jobs)
        return self.speed / n if n else self.speed

    # -- mechanics ---------------------------------------------------------------

    def _advance_progress(self) -> None:
        """Debit elapsed shared service from every in-flight job."""
        now = self.sim.now
        elapsed = now - self._last_progress
        if elapsed > 0 and self._jobs:
            per_job = elapsed * self.speed / len(self._jobs)
            for job in self._jobs.values():
                job.remaining = max(0.0, job.remaining - per_job)
        self._last_progress = now

    def _reschedule(self) -> None:
        if self._completion_event is not None:
            self.sim.cancel(self._completion_event)
            self._completion_event = None
        if not self._jobs:
            return
        soonest = min(self._jobs.values(), key=lambda job: job.remaining)
        delay = soonest.remaining * len(self._jobs) / self.speed
        label = (
            f"{self.name}:complete#{soonest.job_id}" if self._traced else ""
        )
        self._completion_event = self.sim.schedule_in(
            delay,
            lambda j=soonest: self._complete(j),
            label,
        )

    def arrive(self, job: Job) -> None:
        """Admit a job into the sharing pool."""
        if self.sim is None:
            raise ServerError(f"{self.name}: not bound")
        if job.arrival_time is None:
            job.arrival_time = self.sim.now
        if job.size is None:
            if self.service_distribution is None:
                raise ServerError(
                    f"{self.name}: sizeless job and no service distribution"
                )
            job.size = self._next_size()
        if job.remaining is None:
            job.remaining = job.size
        self._advance_progress()
        job.start_time = self.sim.now  # PS serves immediately (slower)
        self._jobs[job.job_id] = job
        self._reschedule()

    def cancel(self, job: Job) -> bool:
        """Withdraw a sharing job before it completes (replica
        cancellation).  The remaining jobs immediately speed up; returns
        False when the job is unknown (already completed)."""
        if self.sim is None:
            raise ServerError(f"{self.name}: not bound")
        if job.job_id not in self._jobs:
            return False
        self._advance_progress()
        del self._jobs[job.job_id]
        self._reschedule()
        return True

    def _complete(self, job: Job) -> None:
        self._completion_event = None
        self._advance_progress()
        del self._jobs[job.job_id]
        job.remaining = 0.0
        job.finish_time = self.sim.now
        self.completed_jobs += 1
        for listener in self._complete_listeners:
            listener(job, self)
        self._reschedule()
