"""Load balancers: fan arriving tasks out across a server pool.

The paper positions BigHouse for "studies investigating load balancing,
power management, resource allocation, hardware provisioning" (Section 2);
these are the standard dispatch policies such a study sweeps.

Beyond single-dispatch policies, this module provides *redundancy*
policies: :class:`CloningBalancer` (clone-to-d with cancel-on-first-
complete) and :class:`SpeculativeRetryBalancer` (a hedged second request
after a latency threshold).  Both treat the arriving job as a *logical*
request, mint replica jobs onto backends, and report exactly one
completion per logical job — metrics attached via ``on_complete`` never
see replicas, so response-time statistics cannot double-count.
"""

from __future__ import annotations

import abc
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.datacenter.job import JOB_COUNTER, Job
from repro.datacenter.server import Server
from repro.engine.simulation import Simulation, seeded_rng
from repro.faults.recovery import derive_seed


class LoadBalancer(abc.ABC):
    """Dispatches each arriving job to one of a fixed set of backends."""

    def __init__(self, servers: Sequence[Server], name: str = "balancer"):
        if not servers:
            raise ValueError("load balancer needs >= 1 server")
        self.servers = list(servers)
        self.name = name
        self.sim: Optional[Simulation] = None
        self.dispatched = 0

    def bind(self, sim: Simulation) -> None:
        """Attach to a simulation; binds every backend transitively."""
        if self.sim is sim:
            return
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        for server in self.servers:
            server.bind(sim)

    def arrive(self, job: Job) -> None:
        """Route one job."""
        if job.arrival_time is None:
            job.arrival_time = self.sim.now
        self.dispatched += 1
        self.choose(job).arrive(job)

    @abc.abstractmethod
    def choose(self, job: Job) -> Server:
        """Pick the backend for this job."""

    def on_complete(self, listener) -> None:
        """Attach a completion listener to every backend."""
        for server in self.servers:
            server.on_complete(listener)


class RandomBalancer(LoadBalancer):
    """Uniform random dispatch — memoryless, the M/G/k-ish baseline."""

    def bind(self, sim: Simulation) -> None:
        super().bind(sim)
        self._rng = sim.spawn_rng()

    def choose(self, job: Job) -> Server:
        return self.servers[self._rng.integers(len(self.servers))]


class RoundRobinBalancer(LoadBalancer):
    """Cyclic dispatch — equalizes counts, not load."""

    def __init__(self, servers: Sequence[Server], name: str = "round-robin"):
        super().__init__(servers, name)
        self._next = 0

    def choose(self, job: Job) -> Server:
        server = self.servers[self._next]
        self._next = (self._next + 1) % len(self.servers)
        return server


class JoinShortestQueue(LoadBalancer):
    """Dispatch to the backend with the fewest outstanding jobs.

    Ties break by server order, keeping runs deterministic.
    """

    def choose(self, job: Job) -> Server:
        return min(self.servers, key=lambda server: server.outstanding)


class PowerOfTwoChoices(LoadBalancer):
    """Sample two random backends, join the shorter one.

    The Mitzenmacher "power of d choices" policy: near-JSQ tail behaviour
    at O(1) state-inspection cost — the practical compromise deployed in
    real front-ends, and a natural policy-comparison experiment for the
    framework.
    """

    def bind(self, sim: Simulation) -> None:
        super().bind(sim)
        self._rng = sim.spawn_rng()

    def choose(self, job: Job) -> Server:
        n = len(self.servers)
        if n == 1:
            return self.servers[0]
        first, second = self._rng.choice(n, size=2, replace=False)
        a, b = self.servers[first], self.servers[second]
        return a if a.outstanding <= b.outstanding else b


class _ReplicatingBalancer(LoadBalancer):
    """Shared machinery for redundancy policies.

    Subclasses mint replica :class:`Job` objects (``clone_of`` pointing
    at the logical job) and register them; the first replica to finish
    wins — its siblings are withdrawn from their backends via
    ``cancel()`` and the logical job is finalized exactly once.
    ``on_complete`` listeners attach to the *logical* stream, not to the
    backends, so a response-time statistic records one sample per
    logical job no matter how many replicas ran.
    """

    def __init__(self, servers: Sequence[Server], name: str = "replicating"):
        super().__init__(servers, name)
        for server in self.servers:
            if not callable(getattr(server, "cancel", None)):
                raise ValueError(
                    f"{name}: backend {getattr(server, 'name', server)!r} "
                    "has no cancel(); redundancy policies need cancellable "
                    "backends"
                )
        #: logical job id -> list of (replica, backend) still in flight.
        self._pending: dict[int, List[Tuple[Job, Server]]] = {}
        self._logical_listeners: list = []
        self.completed_jobs = 0
        #: Replicas cancelled because a sibling won the race.
        self.cancelled_replicas = 0

    def bind(self, sim: Simulation) -> None:
        super().bind(sim)
        for server in self.servers:
            server.on_complete(self._replica_complete)

    def on_complete(self, listener) -> None:
        """Call ``listener(logical_job, self)`` once per logical job."""
        self._logical_listeners.append(listener)

    def choose(self, job: Job) -> Server:  # pragma: no cover - unused
        raise RuntimeError(
            f"{self.name}: redundancy policies dispatch in arrive(), "
            "not via choose()"
        )

    # -- replica plumbing ---------------------------------------------------

    def _mint(self, logical: Job, size: Optional[float]) -> Job:
        replica = Job(next(JOB_COUNTER), size=size)
        replica.arrival_time = logical.arrival_time
        replica.servers_needed = logical.servers_needed
        replica.job_class = logical.job_class
        replica.clone_of = logical
        return replica

    def _replica_complete(self, replica: Job, server) -> None:
        logical = replica.clone_of
        if logical is None:
            return  # a plain job sharing this backend; not ours
        entry = self._pending.pop(logical.job_id, None)
        if entry is None:
            return  # sibling already won (defensive; siblings are cancelled)
        for other, backend in entry:
            if other is not replica and backend.cancel(other):
                self.cancelled_replicas += 1
        self._finalize_extra(logical)
        # The logical job starts when its first replica reached service
        # (waiting-time metrics read start - arrival).
        starts = [job.start_time for job, _ in entry if job.start_time is not None]
        logical.start_time = min(starts) if starts else replica.start_time
        logical.size = replica.size if logical.size is None else logical.size
        logical.remaining = 0.0
        logical.finish_time = self.sim.now
        self.completed_jobs += 1
        for listener in self._logical_listeners:
            listener(logical, self)

    def _finalize_extra(self, logical: Job) -> None:
        """Subclass hook run while finalizing (e.g. cancel hedge timers)."""


class CloningBalancer(_ReplicatingBalancer):
    """Clone-to-d with cancel-on-first-complete.

    Every logical job is replicated onto ``clones`` distinct backends
    at arrival; the first replica to complete defines the logical
    response, and the rest are cancelled wherever they sit (queued,
    running, or sharing a PS server).

    ``synchronized`` clones share the logical job's size draw — the
    regime with clean theory: clone-to-all over ``n`` PS backends is
    *distributionally identical* to a single PS server (every backend
    sees the same sample path), which :mod:`repro.theory.cloning` turns
    into closed forms and the test layer pins bit-for-bit.  With
    ``synchronized=False`` each replica draws its own size from the
    backend's service distribution (independent replicas, the regime
    where cloning actually helps tails).
    """

    def __init__(
        self,
        servers: Sequence[Server],
        clones: int = 2,
        synchronized: bool = True,
        name: str = "cloning",
    ):
        super().__init__(servers, name)
        if not 1 <= clones <= len(self.servers):
            raise ValueError(
                f"{name}: clones must be in 1..{len(self.servers)}, "
                f"got {clones}"
            )
        self.clones = int(clones)
        self.synchronized = bool(synchronized)
        self._rng = None

    def bind(self, sim: Simulation) -> None:
        super().bind(sim)
        # Clone-to-all needs no randomness; spawning the stream only
        # when d < n keeps the RNG lineage of the deterministic case
        # independent of the backend count.
        if self.clones < len(self.servers):
            self._rng = sim.spawn_rng()

    def _select(self) -> List[Server]:
        if self.clones == len(self.servers):
            return self.servers
        picks = self._rng.choice(
            len(self.servers), size=self.clones, replace=False
        )
        return [self.servers[i] for i in picks]

    def arrive(self, job: Job) -> None:
        if job.arrival_time is None:
            job.arrival_time = self.sim.now
        if self.synchronized and job.size is None:
            raise ValueError(
                f"{self.name}: synchronized cloning needs the logical "
                f"job's size drawn upstream (job #{job.job_id} has none)"
            )
        self.dispatched += 1
        size = job.size if self.synchronized else None
        entry = [(self._mint(job, size), backend) for backend in self._select()]
        self._pending[job.job_id] = entry
        for replica, backend in entry:
            backend.arrive(replica)


class SpeculativeRetryBalancer(_ReplicatingBalancer):
    """Hedged requests: retry on another backend after a latency threshold.

    Each logical job is first dispatched to one backend; if it has not
    completed within ``threshold`` seconds, a speculative duplicate is
    issued to a different backend (up to ``max_retries`` hedges, each
    ``threshold`` after the previous).  First completion wins and
    cancels the rest — the classic tail-cutting hedge.

    Backend choices derive from a per-(job, attempt) seed via
    :func:`repro.faults.recovery.derive_seed`, keyed by the job's
    *arrival sequence number* at this balancer (job ids are process-
    global and would differ between otherwise identical runs), so the
    dispatch lineage of every attempt is a pure function of the
    balancer's bind-time seed and the arrival index — deterministic
    regardless of how completions and hedge timers interleave.
    """

    def __init__(
        self,
        servers: Sequence[Server],
        threshold: float,
        max_retries: int = 1,
        name: str = "spec-retry",
    ):
        super().__init__(servers, name)
        if threshold <= 0:
            raise ValueError(f"{name}: threshold must be > 0, got {threshold}")
        if max_retries < 0:
            raise ValueError(
                f"{name}: max_retries must be >= 0, got {max_retries}"
            )
        self.threshold = float(threshold)
        self.max_retries = int(max_retries)
        self.retries_issued = 0
        self._lineage_seed = 0
        self._timers: dict[int, list] = {}
        #: logical job id -> arrival sequence number (the seed key).
        self._seqno: dict[int, int] = {}

    def bind(self, sim: Simulation) -> None:
        super().bind(sim)
        rng = sim.spawn_rng()
        self._lineage_seed = int(rng.integers(0, 2**31 - 1))

    def _pick(self, seq: int, attempt: int, used: List[Server]) -> Server:
        rng = seeded_rng(derive_seed(self._lineage_seed, seq, attempt))
        candidates = [s for s in self.servers if s not in used] or self.servers
        return candidates[int(rng.integers(len(candidates)))]

    def arrive(self, job: Job) -> None:
        if job.arrival_time is None:
            job.arrival_time = self.sim.now
        if job.size is None:
            raise ValueError(
                f"{self.name}: speculative retry replays the same work, so "
                f"the logical job's size must be drawn upstream "
                f"(job #{job.job_id} has none)"
            )
        self.dispatched += 1
        self._seqno[job.job_id] = self.dispatched
        backend = self._pick(self.dispatched, 0, [])
        entry = [(self._mint(job, job.size), backend)]
        self._pending[job.job_id] = entry
        self._arm_timer(job)
        backend.arrive(entry[0][0])

    def _arm_timer(self, logical: Job) -> None:
        attempts = len(self._pending[logical.job_id])
        if attempts > self.max_retries:
            return
        label = (
            f"{self.name}:hedge#{logical.job_id}" if self.sim.tracing else ""
        )
        self._timers[logical.job_id] = self.sim.schedule_in(
            self.threshold, partial(self._hedge, logical), label
        )

    def _hedge(self, logical: Job) -> None:
        self._timers.pop(logical.job_id, None)
        entry = self._pending.get(logical.job_id)
        if entry is None:
            return  # finished just as the timer fired
        used = [backend for _, backend in entry]
        backend = self._pick(self._seqno[logical.job_id], len(entry), used)
        replica = self._mint(logical, logical.size)
        entry.append((replica, backend))
        self.retries_issued += 1
        self._arm_timer(logical)
        backend.arrive(replica)

    def _finalize_extra(self, logical: Job) -> None:
        self._seqno.pop(logical.job_id, None)
        timer = self._timers.pop(logical.job_id, None)
        if timer is not None:
            self.sim.cancel(timer)
