"""Load balancers: fan arriving tasks out across a server pool.

The paper positions BigHouse for "studies investigating load balancing,
power management, resource allocation, hardware provisioning" (Section 2);
these are the standard dispatch policies such a study sweeps.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro.datacenter.job import Job
from repro.datacenter.server import Server
from repro.engine.simulation import Simulation


class LoadBalancer(abc.ABC):
    """Dispatches each arriving job to one of a fixed set of backends."""

    def __init__(self, servers: Sequence[Server], name: str = "balancer"):
        if not servers:
            raise ValueError("load balancer needs >= 1 server")
        self.servers = list(servers)
        self.name = name
        self.sim: Optional[Simulation] = None
        self.dispatched = 0

    def bind(self, sim: Simulation) -> None:
        """Attach to a simulation; binds every backend transitively."""
        if self.sim is sim:
            return
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        for server in self.servers:
            server.bind(sim)

    def arrive(self, job: Job) -> None:
        """Route one job."""
        if job.arrival_time is None:
            job.arrival_time = self.sim.now
        self.dispatched += 1
        self.choose(job).arrive(job)

    @abc.abstractmethod
    def choose(self, job: Job) -> Server:
        """Pick the backend for this job."""

    def on_complete(self, listener) -> None:
        """Attach a completion listener to every backend."""
        for server in self.servers:
            server.on_complete(listener)


class RandomBalancer(LoadBalancer):
    """Uniform random dispatch — memoryless, the M/G/k-ish baseline."""

    def bind(self, sim: Simulation) -> None:
        super().bind(sim)
        self._rng = sim.spawn_rng()

    def choose(self, job: Job) -> Server:
        return self.servers[self._rng.integers(len(self.servers))]


class RoundRobinBalancer(LoadBalancer):
    """Cyclic dispatch — equalizes counts, not load."""

    def __init__(self, servers: Sequence[Server], name: str = "round-robin"):
        super().__init__(servers, name)
        self._next = 0

    def choose(self, job: Job) -> Server:
        server = self.servers[self._next]
        self._next = (self._next + 1) % len(self.servers)
        return server


class JoinShortestQueue(LoadBalancer):
    """Dispatch to the backend with the fewest outstanding jobs.

    Ties break by server order, keeping runs deterministic.
    """

    def choose(self, job: Job) -> Server:
        return min(self.servers, key=lambda server: server.outstanding)


class PowerOfTwoChoices(LoadBalancer):
    """Sample two random backends, join the shorter one.

    The Mitzenmacher "power of d choices" policy: near-JSQ tail behaviour
    at O(1) state-inspection cost — the practical compromise deployed in
    real front-ends, and a natural policy-comparison experiment for the
    framework.
    """

    def bind(self, sim: Simulation) -> None:
        super().bind(sim)
        self._rng = sim.spawn_rng()

    def choose(self, job: Job) -> Server:
        n = len(self.servers)
        if n == 1:
            return self.servers[0]
        first, second = self._rng.choice(n, size=2, replace=False)
        a, b = self.servers[first], self.servers[second]
        return a if a.outstanding <= b.outstanding else b
