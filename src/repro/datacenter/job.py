"""The task abstraction.

"A task in the queuing model corresponds to the most natural unit of work
for the workload under study, such as a single request, transaction,
query" (Section 2).  A job carries its service demand (``size``, in
seconds of work at unit speed) and accumulates timestamps as it moves
through the network; response and waiting times fall out as differences.
"""

from __future__ import annotations

import itertools
from typing import Optional

#: Process-wide job-id counter shared by every job producer (sources,
#: trace replay, cloning balancers) so ids stay globally unique.
JOB_COUNTER = itertools.count(1)


class Job:
    """One task flowing through the queuing network.

    Attributes
    ----------
    size:
        Total service demand in seconds at speed 1.0.  ``None`` means the
        serving server draws it from its own service distribution on
        arrival (multi-tier pipelines re-draw per stage).
    remaining:
        Work left, maintained by the server as speeds change.
    arrival_time / start_time / finish_time:
        Network arrival, first instant of service, and completion.
    """

    # NOTE: Source._emit initializes instances via __new__ + direct slot
    # stores for speed; keep its field list in sync with these slots.
    __slots__ = (
        "job_id",
        "size",
        "remaining",
        "arrival_time",
        "start_time",
        "finish_time",
        "delay_used",
        "_completion_event",
        "_last_progress",
        "stages_completed",
        "job_class",
        "servers_needed",
        "clone_of",
    )

    def __init__(self, job_id: int, size: Optional[float] = None):
        if size is not None and size < 0:
            raise ValueError(f"job size must be >= 0, got {size}")
        self.job_id = job_id
        self.size = size
        self.remaining = size
        self.arrival_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Cumulative time this job has spent delayed (not in service);
        #: maintained by delay-aware policies such as DreamWeaver.
        self.delay_used: float = 0.0
        self._completion_event = None
        self._last_progress: Optional[float] = None
        self.stages_completed: int = 0
        #: Traffic class (see repro.datacenter.multiclass); None = plain.
        self.job_class = None
        #: Servers this job holds simultaneously while in service (gang
        #: scheduling, see repro.datacenter.cluster.MultiserverCluster).
        self.servers_needed: int = 1
        #: For redundant replicas: the logical job this one clones
        #: (repro.datacenter.balancers cloning policies); None = plain.
        self.clone_of = None

    @property
    def response_time(self) -> float:
        """End-to-end latency: finish - arrival."""
        if self.finish_time is None or self.arrival_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.finish_time - self.arrival_time

    @property
    def waiting_time(self) -> float:
        """Queueing delay before first service: start - arrival."""
        if self.start_time is None or self.arrival_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(#{self.job_id}, size={self.size}, "
            f"arrived={self.arrival_time}, finished={self.finish_time})"
        )
