"""Failure injection: server crashes and repairs.

Availability is a first-order concern in cluster studies (hardware
provisioning, the paper's stated application space).  A
:class:`FailureInjector` drives a server through an alternating
up/down renewal process: time-to-failure and time-to-repair are drawn
from arbitrary distributions; while down the server is paused (in-flight
work freezes — a crash-and-recover model where jobs resume, matching
checkpointed services) or optionally dropped.

Availability statistics (uptime fraction, MTTF/MTTR estimates) are
tracked exactly, and the injected downtime is visible to every
latency metric — tail percentiles feel repairs long before means do,
which is exactly the kind of question a BigHouse user would pose.
"""

from __future__ import annotations

from typing import Optional

from repro.datacenter.server import Server
from repro.distributions import Distribution
from repro.engine.simulation import Simulation


class FailureInjector:
    """Alternating failure/repair process wrapped around one server.

    Parameters
    ----------
    server:
        The victim (not yet bound).
    time_to_failure:
        Distribution of up intervals.
    time_to_repair:
        Distribution of down intervals.
    drop_queued:
        When True, a failure discards queued (not yet started) jobs —
        the fail-stop, no-retry model.  In-flight jobs always freeze and
        resume (checkpoint semantics).
    """

    def __init__(
        self,
        server: Server,
        time_to_failure: Distribution,
        time_to_repair: Distribution,
        drop_queued: bool = False,
    ):
        self.server = server
        self.time_to_failure = time_to_failure
        self.time_to_repair = time_to_repair
        self.drop_queued = drop_queued
        self.sim: Optional[Simulation] = None
        self._rng = None
        self.failed = False
        self.failures = 0
        self.repairs = 0
        self.dropped_jobs = 0
        self._downtime = 0.0
        self._down_since: Optional[float] = None

    def bind(self, sim: Simulation) -> None:
        """Attach; the first failure is scheduled immediately."""
        if self.sim is not None:
            raise RuntimeError("failure injector already bound")
        self.sim = sim
        self.server.bind(sim)
        self._rng = sim.spawn_rng()
        self._schedule_failure()

    def _schedule_failure(self) -> None:
        delay = float(self.time_to_failure.sample(self._rng))
        self.sim.schedule_in(delay, self._fail, "failure")

    def _schedule_repair(self) -> None:
        delay = float(self.time_to_repair.sample(self._rng))
        self.sim.schedule_in(delay, self._repair, "repair")

    def _fail(self) -> None:
        if self.failed:  # pragma: no cover - defensive
            return
        self.failed = True
        self.failures += 1
        self._down_since = self.sim.now
        if self.drop_queued:
            while True:
                job = self.server.queue.pop()
                if job is None:
                    break
                self.dropped_jobs += 1
        self.server.pause()
        self._schedule_repair()

    def _repair(self) -> None:
        if not self.failed:  # pragma: no cover - defensive
            return
        self.failed = False
        self.repairs += 1
        self._downtime += self.sim.now - self._down_since
        self._down_since = None
        self.server.resume()
        self._schedule_failure()

    # -- availability accounting ------------------------------------------

    def downtime(self) -> float:
        """Total down seconds so far (including a current outage)."""
        total = self._downtime
        if self.failed and self._down_since is not None:
            total += self.sim.now - self._down_since
        return total

    def availability(self) -> float:
        """Uptime fraction since the start of the simulation."""
        if self.sim is None or self.sim.now <= 0:
            return 1.0
        return 1.0 - self.downtime() / self.sim.now

    def mttr(self) -> float:
        """Mean time to repair over completed outages."""
        if self.repairs == 0:
            raise ValueError("no completed repairs yet")
        return self._downtime / self.repairs
