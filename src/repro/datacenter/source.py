"""Task sources: synthetic-draw arrival generators and trace replay.

"The BigHouse simulation engine synthesizes a task trace from the workload
models" (Section 2.3): a :class:`Source` draws inter-arrival gaps and
service demands from a workload's distributions and injects jobs into a
target (server or load balancer).  :class:`TraceSource` replays an
explicit (arrival_time, size) trace instead, which the paper notes
eliminates some sampling difficulties at the cost of statistical rigor
when the simulated system diverges from the traced one.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence, Tuple

from repro.datacenter.job import Job
from repro.engine.simulation import Simulation

#: Shared across sources so job ids are globally unique within a process.
_JOB_COUNTER = itertools.count(1)


class Source:
    """Open-loop arrival process driven by a workload model.

    Parameters
    ----------
    workload:
        Object with ``interarrival`` and ``service`` distributions
        (:class:`repro.workloads.Workload`).
    target:
        Component with ``arrive(job)`` and ``bind(sim)``.
    draw_sizes:
        When True (default) the source stamps each job's service demand;
        when False jobs are injected with ``size=None`` and the serving
        server draws from its own service distribution (multi-tier use).
    max_jobs:
        Optional cap on generated jobs (for bounded runs/tests).
    """

    def __init__(self, workload, target, draw_sizes: bool = True,
                 max_jobs: Optional[int] = None, name: str = "source"):
        self.workload = workload
        self.target = target
        self.draw_sizes = draw_sizes
        self.max_jobs = max_jobs
        self.name = name
        self.generated = 0
        self.sim: Optional[Simulation] = None
        self._arrival_rng = None
        self._service_rng = None

    def bind(self, sim: Simulation) -> None:
        """Attach to a simulation and schedule the first arrival."""
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        self._arrival_rng = sim.spawn_rng()
        self._service_rng = sim.spawn_rng()
        self.target.bind(sim)
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.max_jobs is not None and self.generated >= self.max_jobs:
            return
        gap = float(self.workload.interarrival.sample(self._arrival_rng))
        self.sim.schedule_in(gap, self._emit, f"{self.name}:arrival")

    def _emit(self) -> None:
        size = None
        if self.draw_sizes:
            size = float(self.workload.service.sample(self._service_rng))
        job = Job(next(_JOB_COUNTER), size=size)
        job.arrival_time = self.sim.now
        self.generated += 1
        self.target.arrive(job)
        self._schedule_next()


class TraceSource:
    """Replays an explicit trace of (arrival_time, size) pairs."""

    def __init__(self, trace: Iterable[Tuple[float, float]], target,
                 name: str = "trace-source"):
        self.trace: Sequence[Tuple[float, float]] = list(trace)
        for arrival, size in self.trace:
            if arrival < 0 or size < 0:
                raise ValueError(
                    f"trace entries must be non-negative, got ({arrival}, {size})"
                )
        if any(
            self.trace[i][0] > self.trace[i + 1][0]
            for i in range(len(self.trace) - 1)
        ):
            raise ValueError("trace arrival times must be non-decreasing")
        self.target = target
        self.name = name
        self.generated = 0
        self.sim: Optional[Simulation] = None

    def bind(self, sim: Simulation) -> None:
        """Attach and schedule every trace arrival."""
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        self.target.bind(sim)
        for arrival, size in self.trace:
            sim.schedule_at(
                arrival,
                lambda s=size: self._emit(s),
                f"{self.name}:arrival",
            )

    def _emit(self, size: float) -> None:
        job = Job(next(_JOB_COUNTER), size=size)
        job.arrival_time = self.sim.now
        self.generated += 1
        self.target.arrive(job)
