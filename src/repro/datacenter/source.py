"""Task sources: synthetic-draw arrival generators and trace replay.

"The BigHouse simulation engine synthesizes a task trace from the workload
models" (Section 2.3): a :class:`Source` draws inter-arrival gaps and
service demands from a workload's distributions and injects jobs into a
target (server or load balancer).  :class:`TraceSource` replays an
explicit (arrival_time, size) trace instead, which the paper notes
eliminates some sampling difficulties at the cost of statistical rigor
when the simulated system diverges from the traced one.
"""

from __future__ import annotations

from heapq import heappush
from typing import Iterable, Optional, Sequence, Tuple

from repro.datacenter.job import JOB_COUNTER, Job
from repro.distributions.prefetch import DEFAULT_BLOCK, PrefetchSampler
from repro.engine.events import PENDING
from repro.engine.simulation import Simulation

#: Shared across all job producers so ids are globally unique.
_JOB_COUNTER = JOB_COUNTER

#: Bound once: Source._emit builds jobs via __new__ + direct slot stores,
#: which is ~2x faster than calling Job.__init__ (no frame, no validation
#: — the distributions guarantee non-negative sizes).
_NEW_JOB = Job.__new__


class Source:
    """Open-loop arrival process driven by a workload model.

    Parameters
    ----------
    workload:
        Object with ``interarrival`` and ``service`` distributions
        (:class:`repro.workloads.Workload`).
    target:
        Component with ``arrive(job)`` and ``bind(sim)``.
    draw_sizes:
        When True (default) the source stamps each job's service demand;
        when False jobs are injected with ``size=None`` and the serving
        server draws from its own service distribution (multi-tier use).
    max_jobs:
        Optional cap on generated jobs (for bounded runs/tests).
    prefetch:
        When True (default) gaps and sizes are served through a
        :class:`PrefetchSampler` block; draw order per stream is
        identical either way (bit-reproducible A/B).
    """

    def __init__(self, workload, target, draw_sizes: bool = True,
                 max_jobs: Optional[int] = None, name: str = "source",
                 prefetch: bool = True, prefetch_block: int = DEFAULT_BLOCK):
        self.workload = workload
        self.target = target
        self.draw_sizes = draw_sizes
        self.max_jobs = max_jobs
        self.name = name
        self.prefetch_block = prefetch_block if prefetch else 1
        self.generated = 0
        self.sim: Optional[Simulation] = None
        self._arrival_rng = None
        self._service_rng = None
        self._need_rng = None
        self._next_gap: Optional[PrefetchSampler] = None
        self._next_size: Optional[PrefetchSampler] = None
        self._next_need: Optional[PrefetchSampler] = None
        self._label = ""
        self._heap = None
        self._seq = None

    def bind(self, sim: Simulation) -> None:
        """Attach to a simulation and schedule the first arrival."""
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        self._arrival_rng = sim.spawn_rng()
        self._service_rng = sim.spawn_rng()
        # When a determinism probe is attached (Experiment(sanitize=True))
        # the samplers record their block boundaries and, unless the probe
        # opts out, replay every block per-draw to verify the prefetch
        # contract.
        probe = sim.probe
        verify = probe is not None and probe.verify_prefetch
        self._next_gap = PrefetchSampler(
            self.workload.interarrival, self._arrival_rng, self.prefetch_block,
            verify=verify, probe=probe,
        )
        self._next_size = PrefetchSampler(
            self.workload.service, self._service_rng, self.prefetch_block,
            verify=verify, probe=probe,
        )
        # Multiserver-job workloads carry a server-need distribution;
        # the extra stream is spawned only when present so the RNG
        # lineage of every pre-existing model is unchanged.
        need_dist = getattr(self.workload, "servers_needed", None)
        if need_dist is not None:
            self._need_rng = sim.spawn_rng()
            self._next_need = PrefetchSampler(
                need_dist, self._need_rng, self.prefetch_block,
                verify=verify, probe=probe,
            )
        # Descriptive labels cost an f-string per event; only pay when
        # someone is recording them.
        self._label = f"{self.name}:arrival" if sim.tracing else ""
        # Captured once: a direct heap push in _emit skips the
        # schedule_in frame.  Safe because heap compaction is in-place.
        self._heap = sim.events._heap
        self._seq = sim.events._counter
        self.target.bind(sim)
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.max_jobs is not None and self.generated >= self.max_jobs:
            return
        self.sim.schedule_in(self._next_gap(), self._emit, self._label)

    def _emit(self) -> None:
        # This method runs once per generated task, so everything is
        # inlined: _schedule_next's cap check, the sampler fast path
        # (``v is None`` test, not truthiness — 0.0 is a valid draw),
        # and the event-record push itself.
        sim = self.sim
        if self.draw_sizes:
            sampler = self._next_size
            size = next(sampler.it, None)
            if size is None:
                size = sampler.refill()
        else:
            size = None
        # Inline job construction (keep in sync with Job.__slots__).
        job = _NEW_JOB(Job)
        job.job_id = next(_JOB_COUNTER)
        job.size = size
        job.remaining = size
        now = sim.now
        job.arrival_time = now
        job.start_time = None
        job.finish_time = None
        job.delay_used = 0.0
        job._completion_event = None
        job._last_progress = None
        job.stages_completed = 0
        job.job_class = None
        job.clone_of = None
        need_sampler = self._next_need
        if need_sampler is None:
            job.servers_needed = 1
        else:
            need = next(need_sampler.it, None)
            if need is None:
                need = need_sampler.refill()
            job.servers_needed = int(need)
        self.generated += 1
        self.target.arrive(job)
        if self.max_jobs is None or self.generated < self.max_jobs:
            sampler = self._next_gap
            gap = next(sampler.it, None)
            if gap is None:
                gap = sampler.refill()
            heappush(
                self._heap,
                [now + gap, next(self._seq), self._emit, self._label, PENDING],
            )


class TraceSource:
    """Replays an explicit trace of (arrival_time, size) pairs."""

    def __init__(self, trace: Iterable[Tuple[float, float]], target,
                 name: str = "trace-source"):
        self.trace: Sequence[Tuple[float, float]] = list(trace)
        for arrival, size in self.trace:
            if arrival < 0 or size < 0:
                raise ValueError(
                    f"trace entries must be non-negative, got ({arrival}, {size})"
                )
        if any(
            self.trace[i][0] > self.trace[i + 1][0]
            for i in range(len(self.trace) - 1)
        ):
            raise ValueError("trace arrival times must be non-decreasing")
        self.target = target
        self.name = name
        self.generated = 0
        self.sim: Optional[Simulation] = None

    def bind(self, sim: Simulation) -> None:
        """Attach and schedule every trace arrival."""
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        self.target.bind(sim)
        for arrival, size in self.trace:
            sim.schedule_at(
                arrival,
                lambda s=size: self._emit(s),
                f"{self.name}:arrival",
            )

    def _emit(self, size: float) -> None:
        job = Job(next(_JOB_COUNTER), size=size)
        job.arrival_time = self.sim.now
        self.generated += 1
        self.target.arrive(job)
