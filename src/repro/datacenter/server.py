"""The server model: k cores, a queue, speed scaling, pause/resume.

This is the workhorse of the queuing network.  Beyond a textbook G/G/k
station it supports the two mechanisms the paper's case studies hinge on:

- **run-time speed changes** (:meth:`Server.set_speed`) — the power
  capping example re-scales every server's DVFS setting each one-second
  epoch (Section 4.1), which requires re-scheduling the completion events
  of every in-flight job against its remaining work;
- **whole-server pause/resume** (:meth:`Server.pause` /
  :meth:`Server.resume`) — DreamWeaver preempts execution and naps the
  entire server when there are fewer outstanding tasks than cores
  (Section 3.2).

Completion, arrival, and dispatch hooks let metrics, forwarding (multi-
tier pipelines), and scheduling policies attach from outside without
subclassing.
"""

from __future__ import annotations

from functools import partial
from heapq import heappush
from typing import Callable, Optional

from repro.datacenter.disciplines import FCFSQueue, QueueingDiscipline
from repro.datacenter.job import Job
from repro.distributions.prefetch import PrefetchSampler
from repro.engine.events import PENDING
from repro.engine.simulation import Simulation


class ServerError(RuntimeError):
    """Raised on invalid server operations (bad speed, double bind, ...)."""


class Server:
    """A k-core server with a queueing discipline and mutable speed.

    Parameters
    ----------
    cores:
        Number of cores; each serves one job at a time.
    speed:
        Initial service-rate multiplier (1.0 = nominal).  A job of size
        ``s`` takes ``s / speed`` seconds of wall clock while running.
    discipline:
        Queueing discipline instance; defaults to a fresh FCFS queue.
    service_distribution:
        If set, jobs arriving with ``size is None`` draw their demand
        from this distribution (used for multi-tier stages and for
        sources that only generate arrivals).
    forward_to:
        Optional next stage; completed jobs are re-injected there with
        ``size`` reset so the stage draws its own demand.
    name:
        Diagnostic label.
    """

    def __init__(
        self,
        cores: int = 1,
        speed: float = 1.0,
        discipline: Optional[QueueingDiscipline] = None,
        service_distribution=None,
        forward_to: Optional["Server"] = None,
        name: str = "server",
    ):
        if cores < 1:
            raise ServerError(f"cores must be >= 1, got {cores}")
        if speed <= 0:
            raise ServerError(f"speed must be > 0, got {speed}")
        self.cores = int(cores)
        self.speed = float(speed)
        self.queue = discipline if discipline is not None else FCFSQueue()
        self.service_distribution = service_distribution
        self.forward_to = forward_to
        self.name = name

        self.sim: Optional[Simulation] = None
        self._service_rng = None
        self._next_size: Optional[PrefetchSampler] = None
        self.paused = False
        self._running: dict[int, Job] = {}
        self.completed_jobs = 0
        self._traced = False
        self._complete_label = ""
        self._heap = None
        self._seq = None
        # Direct deque access when the discipline is exactly FCFS (the
        # overwhelmingly common case): skips two method frames per
        # queued job.  None for any other/subclassed discipline.
        self._fcfs = (
            self.queue._queue if type(self.queue) is FCFSQueue else None
        )

        self._complete_listeners: list[Callable[[Job, "Server"], None]] = []
        self._arrival_listeners: list[Callable[[Job, "Server"], None]] = []
        self._occupancy_listeners: list[Callable[["Server"], None]] = []

        # Time-weighted busy-core accounting for utilization/power models.
        self._busy_integral = 0.0
        self._busy_marker_integral = 0.0
        self._busy_marker_time = 0.0
        self._last_busy_update = 0.0
        # Fully-idle time accounting (for idleness/power studies).
        self._idle_integral = 0.0
        self._pause_integral = 0.0

    # -- wiring -----------------------------------------------------------

    def bind(self, sim: Simulation) -> None:
        """Attach to a simulation; idempotent, transitively binds stages."""
        if self.sim is sim:
            return
        if self.sim is not None:
            raise ServerError(f"{self.name}: already bound to another simulation")
        self.sim = sim
        self._last_busy_update = sim.now
        self._busy_marker_time = sim.now
        self._traced = sim.tracing
        # Captured once: _start pushes completion records straight onto
        # the heap.  Safe because heap compaction is in-place.
        self._heap = sim.events._heap
        self._seq = sim.events._counter
        if self.service_distribution is not None:
            self._service_rng = sim.spawn_rng()
            self._next_size = PrefetchSampler(
                self.service_distribution, self._service_rng
            )
        if self.forward_to is not None:
            self.forward_to.bind(sim)

    def on_complete(self, listener: Callable[[Job, "Server"], None]) -> None:
        """Call ``listener(job, server)`` whenever a job finishes here."""
        self._complete_listeners.append(listener)

    def on_arrival(self, listener: Callable[[Job, "Server"], None]) -> None:
        """Call ``listener(job, server)`` on every arrival (pre-dispatch)."""
        self._arrival_listeners.append(listener)

    def on_occupancy_change(self, listener: Callable[["Server"], None]) -> None:
        """Call ``listener(server)`` whenever the busy-core count changes
        (power meters integrate utilization off this hook)."""
        self._occupancy_listeners.append(listener)

    # -- state inspection ---------------------------------------------------

    @property
    def busy_cores(self) -> int:
        """Cores currently serving a job."""
        return len(self._running)

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not in service)."""
        return len(self.queue)

    @property
    def outstanding(self) -> int:
        """Jobs in the system: queued + in service."""
        return self.queue_length + self.busy_cores

    @property
    def is_idle(self) -> bool:
        """True when no job is queued or running."""
        return self.outstanding == 0

    def utilization_now(self) -> float:
        """Instantaneous busy-core fraction."""
        return self.busy_cores / self.cores

    # -- busy-time integrals (power & capping inputs) -------------------------

    def _update_busy_integral(self) -> None:
        now = self.sim.now
        dt = now - self._last_busy_update
        if dt > 0:
            busy = len(self._running)
            self._busy_integral += dt * busy
            if busy == 0:
                self._idle_integral += dt
                if self.paused:
                    self._pause_integral += dt
            elif self.paused:
                # Paused with jobs on cores: cores hold state but do no work.
                self._pause_integral += dt
        self._last_busy_update = now

    def utilization_since_marker(self) -> float:
        """Average busy fraction since the last call; resets the marker.

        This is the per-epoch utilization the power capping budgeter reads
        ("every server gets a budget in proportion to its utilization in
        the previous budgeting interval", Section 4.1).
        """
        self._update_busy_integral()
        now = self.sim.now
        window = now - self._busy_marker_time
        if window <= 0:
            return 0.0
        used = self._busy_integral - self._busy_marker_integral
        self._busy_marker_integral = self._busy_integral
        self._busy_marker_time = now
        # Guard float accumulation drift: utilization is a fraction.
        return min(1.0, max(0.0, used / (window * self.cores)))

    def busy_core_seconds(self) -> float:
        """Total core-seconds of service delivered so far."""
        self._update_busy_integral()
        return self._busy_integral

    def idle_seconds(self) -> float:
        """Total time with zero busy cores so far."""
        self._update_busy_integral()
        return self._idle_integral

    def paused_seconds(self) -> float:
        """Total time spent paused (napping) so far."""
        self._update_busy_integral()
        return self._pause_integral

    # -- job flow --------------------------------------------------------------

    def arrive(self, job: Job) -> None:
        """Accept a job: dispatch to a free core or enqueue."""
        if self.sim is None:
            raise ServerError(f"{self.name}: not bound to a simulation")
        if job.arrival_time is None:
            job.arrival_time = self.sim.now
        if job.size is None:
            if self._next_size is None:
                raise ServerError(
                    f"{self.name}: job #{job.job_id} has no size and server "
                    "has no service distribution"
                )
            job.size = self._next_size()
        if job.remaining is None:
            job.remaining = job.size
        if self._arrival_listeners:
            for listener in self._arrival_listeners:
                listener(job, self)
        if not self.paused and len(self._running) < self.cores:
            self._start(job)
        elif self._fcfs is not None:
            self._fcfs.append(job)
        else:
            self.queue.push(job)
        if self._occupancy_listeners:
            self._notify_occupancy()

    def _start(self, job: Job) -> None:
        # Runs once per served job: the completion-event push is inlined
        # (record layout [time, seq, callback, label, state]) and the
        # callback is a partial, which dispatches at C level — one Python
        # frame fewer per completion than a lambda trampoline.
        now = self.sim.now
        if job.start_time is None:
            job.start_time = now
        # Exact != is correct: _last_busy_update is assigned from this
        # same clock, so equality means "already integrated at this time".
        if now != self._last_busy_update:  # simlint: disable=float-time-eq
            self._update_busy_integral()
        self._running[job.job_id] = job
        job._last_progress = now
        event = [
            now + job.remaining / self.speed,
            next(self._seq),
            partial(self._complete, job),
            f"{self.name}:complete#{job.job_id}" if self._traced else "",
            PENDING,
        ]
        heappush(self._heap, event)
        job._completion_event = event

    def _schedule_completion(self, job: Job) -> None:
        """Cold-path completion scheduling (set_speed / resume)."""
        delay = job.remaining / self.speed
        label = (
            f"{self.name}:complete#{job.job_id}" if self._traced else ""
        )
        job._completion_event = self.sim.schedule_in(
            delay, partial(self._complete, job), label
        )

    def _sync_progress(self, job: Job) -> None:
        """Bank the work done since the job's last progress timestamp."""
        now = self.sim.now
        if self.paused:
            # No work happens while paused; just advance the timestamp.
            job._last_progress = now
            return
        elapsed = now - job._last_progress
        if elapsed > 0:
            job.remaining = max(0.0, job.remaining - elapsed * self.speed)
        job._last_progress = now

    def _complete(self, job: Job) -> None:
        job._completion_event = None
        job.remaining = 0.0
        now = self.sim.now
        # Integrate the elapsed interval at the pre-completion core count
        # before dropping the job, or busy time is undercounted.
        if now != self._last_busy_update:  # simlint: disable=float-time-eq
            self._update_busy_integral()
        del self._running[job.job_id]
        job.finish_time = now
        self.completed_jobs += 1
        for listener in self._complete_listeners:
            listener(job, self)
        if self.forward_to is not None:
            self._forward(job)
        if not self.paused and self.queue:
            self._dispatch_from_queue()
        if self._occupancy_listeners:
            self._notify_occupancy()

    def _forward(self, job: Job) -> None:
        """Send a completed job to the next pipeline stage."""
        job.stages_completed += 1
        job.size = None
        job.remaining = None
        job.finish_time = None
        job.start_time = None
        self.forward_to.arrive(job)

    def cancel(self, job: Job) -> bool:
        """Withdraw a job that has not completed here (replica
        cancellation for cloning policies).

        Returns True if the job was running or queued on this server
        and has been removed; False if it is unknown — typically
        because it already completed.  Cancelling a running job frees
        its core immediately and the queue is re-dispatched.
        """
        if self.sim is None:
            raise ServerError(f"{self.name}: not bound to a simulation")
        if job.job_id in self._running:
            now = self.sim.now
            # Integrate at the pre-cancellation core count first, same
            # as _complete, or busy time is undercounted.
            if now != self._last_busy_update:  # simlint: disable=float-time-eq
                self._update_busy_integral()
            del self._running[job.job_id]
            if job._completion_event is not None:
                self.sim.cancel(job._completion_event)
                job._completion_event = None
            if not self.paused and self.queue:
                self._dispatch_from_queue()
            if self._occupancy_listeners:
                self._notify_occupancy()
            return True
        if self._fcfs is not None:
            try:
                self._fcfs.remove(job)
            except ValueError:
                return False
        elif not self.queue.remove(job):
            return False
        if self._occupancy_listeners:
            self._notify_occupancy()
        return True

    def _dispatch_from_queue(self) -> None:
        fcfs = self._fcfs
        if fcfs is not None:
            while fcfs and len(self._running) < self.cores:
                self._start(fcfs.popleft())
            return
        while len(self._running) < self.cores:
            job = self.queue.pop()
            if job is None:
                return
            self._start(job)

    # -- speed scaling (DVFS) -----------------------------------------------

    def set_speed(self, speed: float) -> None:
        """Change the service-rate multiplier, re-scheduling in-flight jobs."""
        if speed <= 0:
            raise ServerError(f"speed must be > 0, got {speed} (use pause())")
        if speed == self.speed:
            return
        for job in self._running.values():
            self._sync_progress(job)
            if job._completion_event is not None:
                self.sim.cancel(job._completion_event)
                job._completion_event = None
        self.speed = float(speed)
        if not self.paused:
            for job in self._running.values():
                self._schedule_completion(job)

    # -- pause / resume (deep sleep) -------------------------------------------

    def pause(self) -> None:
        """Freeze all service: in-flight jobs stop progressing, the queue
        holds.  Models entry into a full-system idle low-power mode."""
        if self.paused:
            return
        self._update_busy_integral()
        for job in self._running.values():
            self._sync_progress(job)
            if job._completion_event is not None:
                self.sim.cancel(job._completion_event)
                job._completion_event = None
        self.paused = True

    def resume(self) -> None:
        """Wake up: resume in-flight jobs and fill free cores."""
        if not self.paused:
            return
        self._update_busy_integral()
        self.paused = False
        for job in self._running.values():
            job._last_progress = self.sim.now
            self._schedule_completion(job)
        self._dispatch_from_queue()
        self._notify_occupancy()

    def _notify_occupancy(self) -> None:
        if self._occupancy_listeners:
            for listener in self._occupancy_listeners:
                listener(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Server({self.name!r}, cores={self.cores}, speed={self.speed}, "
            f"busy={self.busy_cores}, queued={self.queue_length})"
        )
