"""Probabilistic routing: open queueing networks (Jackson-style).

The paper frames BigHouse as exercising "a generalized queuing network";
multi-tier pipelines (``Server.forward_to``) cover linear chains, and
this module adds the general case: after completing at station *i*, a
task moves to station *j* with probability ``P[i][j]`` or leaves the
network with the residual probability.  Feedback loops (re-visits) are
allowed.

For exponential stations the open network has a product-form solution
(Jackson's theorem): each station *i* behaves like an independent M/M/k
with effective arrival rate from the traffic equations

    lambda_i = gamma_i + sum_j lambda_j P[j][i]

:func:`traffic_equations` solves them, giving the closed-form per-station
loads the test suite validates the simulated network against.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.datacenter.job import Job
from repro.engine.simulation import Simulation


class NetworkError(ValueError):
    """Raised for invalid routing configurations."""


class RoutingNetwork:
    """A set of stations glued together by a routing matrix.

    Parameters
    ----------
    stations:
        Station objects (servers, PS stations, ...) supporting
        ``bind``/``arrive``/``on_complete``.  Stations should draw their
        own service demands (``service_distribution`` set), because a
        task consumes fresh service at each visit.
    routing:
        ``routing[i][j]`` = probability a task finishing at station i
        proceeds to station j.  Row sums must be <= 1; the deficit is the
        exit probability.
    """

    def __init__(self, stations: Sequence, routing: Sequence[Sequence[float]],
                 name: str = "network"):
        if not stations:
            raise NetworkError("need >= 1 station")
        matrix = np.asarray(routing, dtype=float)
        n = len(stations)
        if matrix.shape != (n, n):
            raise NetworkError(
                f"routing must be {n}x{n}, got {matrix.shape}"
            )
        if np.any(matrix < 0):
            raise NetworkError("routing probabilities must be >= 0")
        row_sums = matrix.sum(axis=1)
        if np.any(row_sums > 1.0 + 1e-9):
            raise NetworkError(
                f"routing row sums must be <= 1, got {row_sums.tolist()}"
            )
        self.stations = list(stations)
        self.routing = matrix
        self.name = name
        self.sim: Optional[Simulation] = None
        self._rng = None
        self.exits = 0
        self._exit_listeners: list[Callable[[Job], None]] = []

    def bind(self, sim: Simulation) -> None:
        """Attach all stations and install the routing hooks."""
        if self.sim is not None:
            raise NetworkError(f"{self.name}: already bound")
        self.sim = sim
        self._rng = sim.spawn_rng()
        for index, station in enumerate(self.stations):
            station.bind(sim)
            station.on_complete(
                lambda job, _station, i=index: self._route(job, i)
            )

    def arrive(self, job: Job, station_index: int = 0) -> None:
        """Inject an external arrival at a station (default: station 0)."""
        if self.sim is None:
            raise NetworkError(f"{self.name}: not bound")
        if not 0 <= station_index < len(self.stations):
            raise NetworkError(f"no station {station_index}")
        self.stations[station_index].arrive(job)

    def on_exit(self, listener: Callable[[Job], None]) -> None:
        """Call ``listener(job)`` when a task leaves the network."""
        self._exit_listeners.append(listener)

    def _route(self, job: Job, from_index: int) -> None:
        probabilities = self.routing[from_index]
        draw = self._rng.random()
        cumulative = 0.0
        for to_index, probability in enumerate(probabilities):
            cumulative += probability
            if draw < cumulative:
                # Fresh visit: the next station draws a new demand.
                job.size = None
                job.remaining = None
                job.finish_time = None
                job.start_time = None
                job.stages_completed += 1
                self.stations[to_index].arrive(job)
                return
        # Exit the network.
        self.exits += 1
        for listener in self._exit_listeners:
            listener(job)


def traffic_equations(
    external_rates: Sequence[float],
    routing: Sequence[Sequence[float]],
) -> List[float]:
    """Solve lambda = gamma + P^T lambda for the effective station rates.

    Raises :class:`NetworkError` when the network does not drain (the
    spectral condition fails and the linear system is singular).
    """
    gamma = np.asarray(external_rates, dtype=float)
    matrix = np.asarray(routing, dtype=float)
    n = gamma.size
    if matrix.shape != (n, n):
        raise NetworkError(f"routing must be {n}x{n}, got {matrix.shape}")
    if np.any(gamma < 0):
        raise NetworkError("external rates must be >= 0")
    system = np.eye(n) - matrix.T
    try:
        rates = np.linalg.solve(system, gamma)
    except np.linalg.LinAlgError as error:
        raise NetworkError(f"network does not drain: {error}") from None
    if np.any(rates < -1e-9):
        raise NetworkError(f"negative effective rates: {rates.tolist()}")
    return [float(rate) for rate in rates]
