"""Pluggable queueing disciplines.

The paper's studies all use FCFS request queues, but the discipline is a
natural extension point of the object model ("the server model might be
subclassed or extended", Section 2.1); LIFO and SJF are provided both as
useful baselines and as tests that the server logic is discipline-neutral.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from collections import deque
from typing import Optional

from repro.datacenter.job import Job


class QueueingDiscipline(abc.ABC):
    """Order in which queued jobs are dispatched to free cores."""

    @abc.abstractmethod
    def push(self, job: Job) -> None:
        """Enqueue a job."""

    @abc.abstractmethod
    def pop(self) -> Optional[Job]:
        """Dequeue the next job to serve, or None if empty."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Jobs currently queued."""

    def remove(self, job: Job) -> bool:
        """Withdraw a specific queued job (replica cancellation).

        Returns True if the job was queued here and has been removed,
        False if it was not present.  Disciplines that cannot support
        targeted removal should leave this default, which refuses
        loudly rather than silently leaking the replica.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support removal; cloning "
            "policies require a discipline with remove()"
        )


class FCFSQueue(QueueingDiscipline):
    """First-come, first-served — the default for request/response services."""

    def __init__(self) -> None:
        self._queue: deque[Job] = deque()

    def push(self, job: Job) -> None:
        self._queue.append(job)

    def pop(self) -> Optional[Job]:
        return self._queue.popleft() if self._queue else None

    def remove(self, job: Job) -> bool:
        try:
            self._queue.remove(job)
        except ValueError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._queue)


class LIFOQueue(QueueingDiscipline):
    """Last-come, first-served (stack) — a tail-latency-hostile baseline."""

    def __init__(self) -> None:
        self._stack: list[Job] = []

    def push(self, job: Job) -> None:
        self._stack.append(job)

    def pop(self) -> Optional[Job]:
        return self._stack.pop() if self._stack else None

    def remove(self, job: Job) -> bool:
        try:
            self._stack.remove(job)
        except ValueError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._stack)


class SJFQueue(QueueingDiscipline):
    """Non-preemptive shortest-job-first, ties broken by arrival order.

    Requires job sizes to be known at enqueue time (they are: the source
    or server draws the size on arrival).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Job]] = []
        self._counter = itertools.count()

    def push(self, job: Job) -> None:
        if job.size is None:
            raise ValueError("SJF requires job.size to be set before enqueue")
        heapq.heappush(self._heap, (job.size, next(self._counter), job))

    def pop(self) -> Optional[Job]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def remove(self, job: Job) -> bool:
        for i, (_, _, queued) in enumerate(self._heap):
            if queued is job:
                # O(n) rebuild; removal is a rare cancellation path.
                self._heap[i] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                return True
        return False

    def __len__(self) -> int:
        return len(self._heap)
