"""Closed-loop (interactive) clients.

The shipped workloads are open-loop: arrivals come from an external
population at a fixed rate, regardless of how the system is doing.  Many
data center services are better modeled *closed-loop*: a finite
population of N clients, each cycling request -> response -> think time.
Closed loops self-throttle (a slow server slows its own arrival stream),
which changes tail behaviour qualitatively — a classic modeling pitfall
the framework should let users explore.

:class:`ClosedLoopClients` implements the interactive closed network;
the classic machine-repairman / interactive-response-time law

    R = N / X - Z

(N clients, throughput X, think time Z) ties it to theory for tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.datacenter.job import Job
from repro.datacenter.source import _JOB_COUNTER
from repro.distributions import Distribution
from repro.distributions.prefetch import PrefetchSampler
from repro.engine.simulation import Simulation


class ClosedLoopClients:
    """N think-time clients driving one station.

    Each client submits a request (service demand from ``service``),
    waits for its completion, thinks for a gap from ``think_time``, and
    repeats.  The target station must support ``on_complete``; requests
    from *other* sources completing there are ignored.
    """

    def __init__(
        self,
        n_clients: int,
        think_time: Distribution,
        service: Distribution,
        target,
        name: str = "clients",
    ):
        if n_clients < 1:
            raise ValueError(f"need >= 1 client, got {n_clients}")
        self.n_clients = int(n_clients)
        self.think_time = think_time
        self.service = service
        self.target = target
        self.name = name
        self.sim: Optional[Simulation] = None
        self._think_rng = None
        self._service_rng = None
        self._next_think: Optional[PrefetchSampler] = None
        self._next_size: Optional[PrefetchSampler] = None
        self._label = ""
        self._in_flight: set[int] = set()
        self.completed = 0
        self._complete_listeners: list[Callable[[Job], None]] = []

    def bind(self, sim: Simulation) -> None:
        """Attach: every client starts with an initial think period."""
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        self._think_rng = sim.spawn_rng()
        self._service_rng = sim.spawn_rng()
        self._next_think = PrefetchSampler(self.think_time, self._think_rng)
        self._next_size = PrefetchSampler(self.service, self._service_rng)
        self._label = f"{self.name}:submit" if sim.tracing else ""
        self.target.bind(sim)
        self.target.on_complete(self._handle_complete)
        for _ in range(self.n_clients):
            self._schedule_submit()

    def on_cycle_complete(self, listener: Callable[[Job], None]) -> None:
        """Call ``listener(job)`` when one of *our* requests completes."""
        self._complete_listeners.append(listener)

    @property
    def thinking(self) -> int:
        """Clients currently in their think period."""
        return self.n_clients - len(self._in_flight)

    def throughput(self) -> float:
        """Completed requests per simulated second so far."""
        if self.sim is None or self.sim.now <= 0:
            return 0.0
        return self.completed / self.sim.now

    def _schedule_submit(self) -> None:
        self.sim.schedule_in(self._next_think(), self._submit, self._label)

    def _submit(self) -> None:
        job = Job(next(_JOB_COUNTER), size=self._next_size())
        job.arrival_time = self.sim.now
        self._in_flight.add(job.job_id)
        self.target.arrive(job)

    def _handle_complete(self, job: Job, _station) -> None:
        if job.job_id not in self._in_flight:
            return  # someone else's request
        self._in_flight.discard(job.job_id)
        self.completed += 1
        for listener in self._complete_listeners:
            listener(job)
        self._schedule_submit()


def interactive_response_time(
    n_clients: int, throughput: float, think_time_mean: float
) -> float:
    """The interactive response-time law: R = N / X - Z."""
    if throughput <= 0:
        raise ValueError(f"throughput must be > 0, got {throughput}")
    if n_clients < 1:
        raise ValueError(f"need >= 1 client, got {n_clients}")
    return n_clients / throughput - think_time_mean
