"""Multi-class task populations and priority scheduling.

Data center services mix traffic classes — latency-sensitive queries
sharing machines with batch/background work is the canonical example.
This module adds:

- :class:`JobClass` — a named class with a priority level and its own
  service distribution;
- :class:`PriorityQueue` — a non-preemptive head-of-line priority
  discipline (lower ``priority`` number = served first), pluggable into
  the standard :class:`~repro.datacenter.server.Server`;
- :class:`MultiClassSource` — one arrival process whose tasks are a
  probabilistic mixture over classes (each job is stamped with its
  class);
- per-class metric helpers, so an experiment can track
  ``response_time[interactive]`` separately from ``response_time[batch]``.

The non-preemptive M/G/1 priority queue has a closed form (Cobham's
formula), provided in :func:`cobham_waiting_times` and used by the test
suite to validate the whole stack.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.datacenter.disciplines import QueueingDiscipline
from repro.datacenter.job import Job
from repro.datacenter.source import _JOB_COUNTER
from repro.distributions import Distribution
from repro.distributions.prefetch import PrefetchSampler
from repro.engine.simulation import Simulation


@dataclass(frozen=True)
class JobClass:
    """One traffic class.

    ``priority`` orders service (0 = most urgent).  ``weight`` is the
    class's share of the arrival mixture.
    """

    name: str
    priority: int
    service: Distribution
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError(f"{self.name}: priority must be >= 0")
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be > 0")


def job_class_of(job: Job) -> Optional[JobClass]:
    """The class a job was stamped with (None for unclassified jobs)."""
    return job.job_class


def _stamp(job: Job, job_class: JobClass) -> None:
    job.job_class = job_class


def _unstamp(job: Job) -> None:
    job.job_class = None


#: Priority assigned to jobs without a class stamp: below any real class.
UNCLASSIFIED_PRIORITY = 1 << 30


class PriorityQueue(QueueingDiscipline):
    """Non-preemptive head-of-line priorities, FCFS within a class.

    Jobs without a class stamp sort at :data:`UNCLASSIFIED_PRIORITY`,
    below every classified job — background traffic never delays
    classified traffic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._tie = itertools.count()

    def push(self, job: Job) -> None:
        job_class = job_class_of(job)
        priority = (
            UNCLASSIFIED_PRIORITY if job_class is None else job_class.priority
        )
        heapq.heappush(self._heap, (priority, next(self._tie), job))

    def pop(self) -> Optional[Job]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class MultiClassSource:
    """One arrival process over a mixture of job classes.

    Inter-arrival gaps come from ``interarrival``; each arriving task is
    assigned a class with probability proportional to class weight, and
    draws its service demand from that class's distribution.
    """

    def __init__(
        self,
        interarrival: Distribution,
        classes: Sequence[JobClass],
        target,
        max_jobs: Optional[int] = None,
        name: str = "multiclass-source",
    ):
        if not classes:
            raise ValueError("need >= 1 job class")
        names = [job_class.name for job_class in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        self.interarrival = interarrival
        self.classes = list(classes)
        total = sum(job_class.weight for job_class in classes)
        self._probabilities = [
            job_class.weight / total for job_class in classes
        ]
        # Cumulative weights for O(log k) class selection off one uniform
        # (numpy's choice(p=...) costs microseconds per draw).
        self._cumulative = np.cumsum(self._probabilities)
        self.target = target
        self.max_jobs = max_jobs
        self.name = name
        self.generated = 0
        self.generated_by_class: Dict[str, int] = {n: 0 for n in names}
        self.sim: Optional[Simulation] = None
        self._rng = None
        self._arrival_rng = None
        self._next_gap: Optional[PrefetchSampler] = None
        self._label = ""

    def bind(self, sim: Simulation) -> None:
        """Attach and schedule the first arrival."""
        if self.sim is not None:
            raise RuntimeError(f"{self.name}: already bound")
        self.sim = sim
        self._rng = sim.spawn_rng()
        self._arrival_rng = sim.spawn_rng()
        self._next_gap = PrefetchSampler(self.interarrival, self._arrival_rng)
        self._label = f"{self.name}:arrival" if sim.tracing else ""
        self.target.bind(sim)
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.max_jobs is not None and self.generated >= self.max_jobs:
            return
        self.sim.schedule_in(self._next_gap(), self._emit, self._label)

    def _emit(self) -> None:
        # Class choice and service demand share self._rng: the two draws
        # interleave per job, so neither can be block-prefetched without
        # changing the stream.
        index = int(np.searchsorted(self._cumulative, self._rng.random()))
        job_class = self.classes[min(index, len(self.classes) - 1)]
        job = Job(
            next(_JOB_COUNTER),
            size=float(job_class.service.sample(self._rng)),
        )
        job.arrival_time = self.sim.now
        _stamp(job, job_class)
        self.generated += 1
        self.generated_by_class[job_class.name] += 1
        self.target.arrive(job)
        self._schedule_next()


def track_per_class_response(
    experiment,
    station,
    classes: Sequence[JobClass],
    mean_accuracy: float = 0.05,
    quantiles=None,
    prefix: str = "response_time",
    **overrides,
):
    """Declare one response-time metric per class on an experiment.

    Completions are routed to ``<prefix>[<class>]`` by the job's class
    stamp; unclassified completions are ignored.  Returns the metric
    names in class order.
    """
    names = []
    for job_class in classes:
        metric = f"{prefix}[{job_class.name}]"
        experiment.track(
            metric, mean_accuracy=mean_accuracy, quantiles=quantiles,
            **overrides,
        )
        names.append(metric)

    def route(job, _server) -> None:
        job_class = job_class_of(job)
        if job_class is None:
            return
        experiment.record(f"{prefix}[{job_class.name}]", job.response_time)
        _unstamp(job)

    station.on_complete(route)
    return names


def cobham_waiting_times(
    arrival_rates: Sequence[float],
    services: Sequence[Distribution],
) -> List[float]:
    """Cobham's formula: mean waits in a non-preemptive M/G/1 priority queue.

    Class i (index order = priority order, 0 highest):

        W_i = R / ((1 - sigma_i)(1 - sigma_{i+1}))

    where R = sum_j lambda_j E[S_j^2] / 2 (mean residual work) and
    sigma_i = sum_{j < i} rho_j, sigma_{i+1} = sum_{j <= i} rho_j.
    """
    if len(arrival_rates) != len(services):
        raise ValueError("need one service distribution per arrival rate")
    if not arrival_rates:
        raise ValueError("need >= 1 class")
    rhos = [
        lam * service.mean()
        for lam, service in zip(arrival_rates, services)
    ]
    if sum(rhos) >= 1.0:
        raise ValueError(f"unstable: total rho = {sum(rhos):.3f} >= 1")
    residual = sum(
        lam * (service.variance() + service.mean() ** 2) / 2.0
        for lam, service in zip(arrival_rates, services)
    )
    waits = []
    cumulative = 0.0
    for rho in rhos:
        before = cumulative
        cumulative += rho
        waits.append(residual / ((1.0 - before) * (1.0 - cumulative)))
    return waits
