"""Online histogram for quantile estimation (Chen & Kelton 2001).

Recording and sorting every observation to extract exact quantiles would
cost memory proportional to the (large) converged sample size.  BigHouse
instead fixes a histogram bin scheme during the calibration phase and then
streams measurement-phase observations into fixed-width bins; quantiles
are read back by linear interpolation in the cumulative histogram.

Histograms with identical bin schemes merge bin-wise, which is the entire
"reduce" step of the parallel master/slave protocol (Fig. 3): slaves ship
their histograms, the master adds them up and reads estimates off the sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


class HistogramError(ValueError):
    """Raised for invalid bin schemes or incompatible merges."""


@dataclass(frozen=True)
class BinScheme:
    """Immutable bin layout fixed at calibration time.

    ``low``/``high`` bound the regular bins; observations outside land in
    open-ended underflow/overflow regions whose extent is tracked by the
    running min/max.  The scheme is what the master broadcasts to slaves.
    """

    low: float
    high: float
    bins: int

    def __post_init__(self) -> None:
        if not math.isfinite(self.low) or not math.isfinite(self.high):
            raise HistogramError(f"bounds must be finite: [{self.low}, {self.high}]")
        if self.high <= self.low:
            raise HistogramError(f"high ({self.high}) must exceed low ({self.low})")
        if self.bins < 1:
            raise HistogramError(f"need >= 1 bin, got {self.bins}")

    @property
    def width(self) -> float:
        """Width of one regular bin."""
        return (self.high - self.low) / self.bins

    @classmethod
    def from_sample(
        cls,
        sample: Sequence[float],
        bins: int = 1000,
        tail_padding: float = 0.5,
    ) -> "BinScheme":
        """Fit a scheme to a calibration sample.

        The upper bound is padded by ``tail_padding`` of the sample range
        because the measurement phase will see observations beyond the
        calibration maximum (queue tails grow); padded mass would
        otherwise all collapse into the overflow region and blunt
        high-quantile resolution.
        """
        values = np.asarray(sample, dtype=float)
        if values.size < 2:
            raise HistogramError(f"need >= 2 calibration values, got {values.size}")
        low = float(values.min())
        high = float(values.max())
        if high == low:
            # Degenerate (deterministic metric): a token-width scheme.
            span = abs(high) if high != 0 else 1.0
            padded_low = low - 0.5 * span
            padded_high = high + 0.5 * span
            if not padded_low < padded_high:
                # A subnormal span rounds away entirely; use unit width.
                padded_low, padded_high = low - 0.5, high + 0.5
            return cls(low=padded_low, high=padded_high, bins=bins)
        pad = tail_padding * (high - low)
        return cls(low=low, high=high + pad, bins=bins)


class Histogram:
    """Streaming histogram with mergeable counts and exact running moments.

    Moments (mean/variance via a numerically stable sum formulation, plus
    min/max) are tracked exactly from the raw stream; only the *quantiles*
    go through the binned approximation.

    Bin counts live in a plain Python list: incrementing one numpy int64
    element costs ~6x a list-element increment, and :meth:`insert` runs
    for every accepted observation.  The :attr:`counts` property presents
    the familiar numpy view for analysis, merging, and tests.
    """

    def __init__(self, scheme: BinScheme):
        self.scheme = scheme
        self._counts: list[int] = [0] * scheme.bins
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf
        # Bin lookup constants, hoisted out of insert (scheme.width is a
        # computed property; a multiply beats a divide).
        self._low = scheme.low
        self._high = scheme.high
        self._bins = scheme.bins
        self._inv_width = scheme.bins / (scheme.high - scheme.low)

    @property
    def counts(self) -> np.ndarray:
        """Regular-bin counts as an array (copy; mutate via insert/merge)."""
        return np.asarray(self._counts, dtype=np.int64)

    @counts.setter
    def counts(self, values) -> None:
        counts = [int(v) for v in values]
        if len(counts) != self._bins:
            raise HistogramError(
                f"expected {self._bins} bin counts, got {len(counts)}"
            )
        self._counts = counts

    # -- insertion ---------------------------------------------------------

    def insert(self, value: float) -> None:
        """Record one observation."""
        if not math.isfinite(value):
            raise HistogramError(f"cannot insert non-finite value: {value}")
        self.count += 1
        self._sum += value
        self._sum_sq += value * value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value
        if value < self._low:
            self.underflow += 1
        elif value >= self._high:
            self.overflow += 1
        else:
            try:
                index = int((value - self._low) * self._inv_width)
            except (OverflowError, ValueError):
                # Degenerate schemes (subnormal span) overflow the
                # precomputed reciprocal.  The fraction form cannot
                # produce nan: high > low guarantees the denominator is
                # a positive finite float.
                fraction = (value - self._low) / (self._high - self._low)
                index = int(fraction * self._bins)
            # Floating-point edge: value just below high can round to bins.
            if index >= self._bins:
                index = self._bins - 1
            self._counts[index] += 1

    def insert_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations."""
        for value in values:
            self.insert(value)

    def insert_block(self, values: np.ndarray) -> None:
        """Record a block of observations, bit-identical to an
        :meth:`insert` loop over the same values.

        Equivalence is exact, not approximate: the running sums use
        ``np.add.accumulate`` seeded with the prior totals (sequential
        left-to-right application, the same rounding sequence as the
        scalar ``+=`` chain), bin indices use the same elementwise
        ``(value - low) * inv_width`` truncation, and a non-finite value
        raises after its finite prefix has been inserted — exactly where
        the scalar loop would have stopped.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            values = values.reshape(-1)
        if values.size == 0:
            return
        finite = np.isfinite(values)
        if not finite.all():
            bad = int(np.argmin(finite))
            if bad:
                self.insert_block(values[:bad])
            raise HistogramError(
                f"cannot insert non-finite value: {values[bad]}"
            )
        self.count += values.size
        self._sum = float(
            np.add.accumulate(np.concatenate(([self._sum], values)))[-1]
        )
        self._sum_sq = float(
            np.add.accumulate(
                np.concatenate(([self._sum_sq], values * values))
            )[-1]
        )
        low_value = float(values.min())
        high_value = float(values.max())
        if low_value < self.min_seen:
            self.min_seen = low_value
        if high_value > self.max_seen:
            self.max_seen = high_value
        under = values < self._low
        over = values >= self._high
        self.underflow += int(under.sum())
        self.overflow += int(over.sum())
        mid = values[~(under | over)]
        if not mid.size:
            return
        scaled = (mid - self._low) * self._inv_width
        if np.isfinite(scaled).all():
            indices = scaled.astype(np.int64)
        else:
            # Degenerate schemes (subnormal span) overflow the
            # precomputed reciprocal — same fallback as scalar insert.
            fraction = (mid - self._low) / (self._high - self._low)
            indices = (fraction * self._bins).astype(np.int64)
        np.minimum(indices, self._bins - 1, out=indices)
        counts = self._counts
        block_counts = np.bincount(indices, minlength=self._bins)
        for index in np.nonzero(block_counts)[0]:
            counts[index] += int(block_counts[index])

    # -- moments -----------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact running mean of all inserted observations."""
        if self.count == 0:
            raise HistogramError("mean of empty histogram")
        return self._sum / self.count

    @property
    def variance(self) -> float:
        """Exact running (population) variance."""
        if self.count == 0:
            raise HistogramError("variance of empty histogram")
        mean = self.mean
        return max(0.0, self._sum_sq / self.count - mean * mean)

    @property
    def std(self) -> float:
        """Exact running standard deviation."""
        return math.sqrt(self.variance)

    # -- quantiles ---------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Quantile estimate by interpolating the cumulative histogram.

        Underflow mass is spread over [min_seen, low) and overflow mass
        over [high, max_seen], keeping extreme quantiles defined even when
        the calibration-fixed scheme did not anticipate the tail.
        """
        if not 0.0 <= q <= 1.0:
            raise HistogramError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise HistogramError("quantile of empty histogram")
        # Bin interpolation can stray past the observed extremes by up to
        # one bin width; the extremes are known exactly, so clamp.
        return min(self.max_seen, max(self.min_seen, self._quantile_raw(q)))

    def _quantile_raw(self, q: float) -> float:
        target = q * self.count
        scheme = self.scheme
        if self.underflow and target <= self.underflow:
            lo = self.min_seen
            hi = min(scheme.low, self.max_seen)
            return lo + (hi - lo) * (target / self.underflow)
        # Vectorized cumulative scan: convergence checks call this every
        # few dozen accepted samples, and a Python loop over ~1000 bins
        # dominated check cost.
        counts = np.asarray(self._counts, dtype=np.int64)
        cumulative = counts.cumsum()
        inner = cumulative[-1] if counts.size else 0
        inner_target = target - self.underflow
        if inner and inner_target <= inner:
            if inner_target > 0:
                index = int(np.searchsorted(cumulative, inner_target, "left"))
            else:
                # q at (or below) the underflow boundary: the left edge of
                # the first occupied bin, matching the scan semantics.
                index = int(np.searchsorted(cumulative, 0, "right"))
            bin_count = float(counts[index])
            before = float(cumulative[index]) - bin_count
            left = scheme.low + index * scheme.width
            fraction = (inner_target - before) / bin_count
            return left + fraction * scheme.width
        # Remaining mass is overflow.
        if self.overflow:
            lo = scheme.high
            hi = max(self.max_seen, scheme.high)
            fraction = (inner_target - float(inner)) / self.overflow
            return lo + (hi - lo) * min(1.0, max(0.0, fraction))
        return float(self.max_seen)

    def density_at_quantile(self, q: float) -> float:
        """Estimated pdf at the q-quantile, used by the delta-method
        conversion between value-space and probability-space accuracy."""
        if self.count == 0:
            raise HistogramError("density of empty histogram")
        value = self.quantile(q)
        scheme = self.scheme
        if value < scheme.low:
            span = max(scheme.low - self.min_seen, scheme.width)
            return self.underflow / self.count / span
        if value >= scheme.high:
            span = max(self.max_seen - scheme.high, scheme.width)
            return self.overflow / self.count / span
        index = min(int((value - scheme.low) / scheme.width), scheme.bins - 1)
        return float(self._counts[index]) / self.count / scheme.width

    # -- merging (the parallel "reduce") ------------------------------------

    def rebin_to(self, scheme: BinScheme) -> "Histogram":
        """A copy of this histogram approximated onto a different scheme.

        Each source bin's mass is deposited at its midpoint in the target
        scheme (underflow/overflow regions use the midpoint of their
        observed extent).  Totals and the exact running moments are
        preserved; only the *binned* quantile resolution degrades — by at
        most one source bin width, the same error class the histogram
        approximation already carries.
        """
        target = Histogram(scheme)
        target.count = self.count
        target._sum = self._sum
        target._sum_sq = self._sum_sq
        target.min_seen = self.min_seen
        target.max_seen = self.max_seen

        def deposit(value: float, mass: int) -> None:
            if not mass:
                return
            if value < scheme.low:
                target.underflow += mass
            elif value >= scheme.high:
                target.overflow += mass
            else:
                index = min(
                    int((value - scheme.low) / scheme.width), scheme.bins - 1
                )
                target._counts[index] += mass

        source = self.scheme
        for index, mass in enumerate(self._counts):
            deposit(source.low + (index + 0.5) * source.width, mass)
        if self.underflow:
            lo = self.min_seen if math.isfinite(self.min_seen) else source.low
            deposit((lo + source.low) / 2.0, self.underflow)
        if self.overflow:
            hi = (
                max(self.max_seen, source.high)
                if math.isfinite(self.max_seen)
                else source.high
            )
            deposit((source.high + hi) / 2.0, self.overflow)
        return target

    def merge(self, other: "Histogram", rebin: bool = False) -> None:
        """Fold another histogram into this one.

        Schemes must be identical unless ``rebin=True``, in which case
        ``other`` is first approximated onto this histogram's scheme via
        :meth:`rebin_to`.  A silent bin-wise merge of mismatched schemes
        would attribute mass to the wrong value ranges, so the default is
        to refuse loudly.
        """
        if other.scheme != self.scheme:
            if not rebin:
                raise HistogramError(
                    f"cannot merge different schemes: {self.scheme} vs "
                    f"{other.scheme}; pass rebin=True to approximate onto "
                    "this histogram's scheme"
                )
            other = other.rebin_to(self.scheme)
        counts = self._counts
        for index, extra in enumerate(other._counts):
            counts[index] += extra
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        self._sum += other._sum
        self._sum_sq += other._sum_sq
        self.min_seen = min(self.min_seen, other.min_seen)
        self.max_seen = max(self.max_seen, other.max_seen)

    def merge_payload(self, payload: dict) -> None:
        """Fold a payload dict (full or delta form) into this histogram.

        The master's incremental reduce: accumulating a slave's bin-count
        *delta* avoids re-materializing and re-summing every slave's full
        histogram each round.  ``min_seen``/``max_seen`` in a payload are
        always absolute running extrema (min/max are not delta-able) and
        merge idempotently.

        Malformed payloads are rejected *before* any state is touched —
        the same contract as the full-report path
        (:meth:`from_payload`): a wrong-length ``counts`` list or a
        count total that disagrees with the bin masses raises
        :class:`HistogramError` instead of silently merging a prefix.
        """
        low, high, bins = payload["scheme"]
        scheme = self.scheme
        if (low, high, bins) != (scheme.low, scheme.high, scheme.bins):
            raise HistogramError(
                f"cannot merge payload with scheme {payload['scheme']} "
                f"into {scheme}; rebin slave-side or recalibrate"
            )
        extra_counts = payload["counts"]
        if len(extra_counts) != self._bins:
            raise HistogramError(
                f"payload carries {len(extra_counts)} bin counts, scheme "
                f"expects {self._bins}; refusing a partial merge"
            )
        total = sum(extra_counts) + payload["underflow"] + payload["overflow"]
        if total != payload["count"]:
            raise HistogramError(
                f"payload count invariant violated: bins+underflow+overflow "
                f"= {total} but count = {payload['count']}"
            )
        counts = self._counts
        for index, extra in enumerate(extra_counts):
            counts[index] += extra
        self.underflow += payload["underflow"]
        self.overflow += payload["overflow"]
        self.count += payload["count"]
        self._sum += payload["sum"]
        self._sum_sq += payload["sum_sq"]
        self.min_seen = min(self.min_seen, payload["min_seen"])
        self.max_seen = max(self.max_seen, payload["max_seen"])

    # -- (de)serialization for the wire protocol ----------------------------

    def to_payload(self) -> dict:
        """Plain-dict form for pickling/IPC to the parallel master."""
        return {
            "scheme": (self.scheme.low, self.scheme.high, self.scheme.bins),
            "counts": list(self._counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "count": self.count,
            "sum": self._sum,
            "sum_sq": self._sum_sq,
            "min_seen": self.min_seen,
            "max_seen": self.max_seen,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Histogram":
        """Inverse of :meth:`to_payload`."""
        low, high, bins = payload["scheme"]
        histogram = cls(BinScheme(low=low, high=high, bins=bins))
        histogram.counts = payload["counts"]
        histogram.underflow = payload["underflow"]
        histogram.overflow = payload["overflow"]
        histogram.count = payload["count"]
        histogram._sum = payload["sum"]
        histogram._sum_sq = payload["sum_sq"]
        histogram.min_seen = payload["min_seen"]
        histogram.max_seen = payload["max_seen"]
        return histogram
