"""Multi-metric coordination: the warm-up barrier and global convergence.

The paper's two constraints when targeting multiple outputs (Section 2.3):

1. *"the simulation may not progress out of the warm-up phase until Nw
   observations have been collected for all output metrics"* — ensures the
   entire model is warm before any metric starts measuring, and
2. *"the simulation may not terminate until all outputs have a sufficient
   sample size to reach convergence"* — the slowest metric determines
   runtime (the effect Fig. 9 quantifies: adding a rarely-observed
   "waiting" metric dominates an easily-converged "response" metric).
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.core.statistic import Estimate, Phase, Statistic, StatisticError


class StatisticsCollection:
    """The set of output metrics of one simulation."""

    def __init__(self) -> None:
        self._stats: Dict[str, Statistic] = {}
        self._barrier_lifted = False
        self._recording_started = False
        self._tracer = None

    # -- construction -----------------------------------------------------

    def add(self, statistic: Statistic) -> Statistic:
        """Register a metric.  Must happen before any observation."""
        if self._recording_started or any(
            stat.observed for stat in self._stats.values()
        ):
            raise StatisticError(
                f"cannot add {statistic.name!r}: observations already recorded"
            )
        if statistic.name in self._stats:
            raise StatisticError(f"duplicate statistic name: {statistic.name!r}")
        statistic.take_barrier_control()
        # The statistic notifies us (exactly once) when it reaches its
        # warm-up quota; barrier bookkeeping therefore costs nothing on
        # the per-observation path.
        statistic._warm_hook = self._maybe_lift_barrier
        if self._tracer is not None:
            statistic.attach_tracer(self._tracer)
        self._stats[statistic.name] = statistic
        return statistic

    def attach_tracer(self, tracer) -> None:
        """Attach a structured tracer to every metric, present and future."""
        self._tracer = tracer
        for stat in self._stats.values():
            stat.attach_tracer(tracer)

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def __getitem__(self, name: str) -> Statistic:
        return self._stats[name]

    def __iter__(self) -> Iterator[Statistic]:
        return iter(self._stats.values())

    def __len__(self) -> int:
        return len(self._stats)

    @property
    def names(self) -> list[str]:
        """Metric names in registration order."""
        return list(self._stats)

    # -- the observation stream --------------------------------------------

    def record(self, name: str, value: float) -> None:
        """Route one observation to its metric.

        The warm-up barrier needs no handling here: each statistic fires
        the collection's all-warm check itself (via the hook installed in
        :meth:`add`) the moment it reaches its quota.
        """
        self._recording_started = True
        try:
            statistic = self._stats[name]
        except KeyError:
            raise StatisticError(f"unknown statistic: {name!r}") from None
        statistic.observe(value)

    def recorder(self, name: str):
        """A bound fast-path feed for one metric: ``recorder(name)(value)``
        is equivalent to ``record(name, value)`` without the per-call name
        lookup.  Metric hooks that fire once per completion hold onto one
        of these instead of routing through :meth:`record`.

        Observations through a recorder bypass ``_recording_started``;
        :meth:`add` additionally checks per-statistic observation counts
        so the metric set still freezes once data flows.
        """
        try:
            statistic = self._stats[name]
        except KeyError:
            raise StatisticError(f"unknown statistic: {name!r}") from None
        return statistic.observe

    def _maybe_lift_barrier(self) -> None:
        if all(stat.warm_ready for stat in self._stats.values()):
            self._barrier_lifted = True
            for stat in self._stats.values():
                stat.lift_warmup_barrier()

    # -- global state --------------------------------------------------------

    @property
    def warmup_barrier_lifted(self) -> bool:
        """True once every metric has collected its warm-up quota."""
        return self._barrier_lifted

    @property
    def all_converged(self) -> bool:
        """True when every metric reached its target (simulation may stop)."""
        if not self._stats:
            return False
        return all(stat.converged for stat in self._stats.values())

    @property
    def all_measuring(self) -> bool:
        """True when every metric finished calibration (used by the
        parallel master, which only needs the bin schemes)."""
        if not self._stats:
            return False
        return all(
            stat.phase in (Phase.MEASUREMENT, Phase.CONVERGED)
            for stat in self._stats.values()
        )

    @property
    def total_accepted(self) -> int:
        """Accepted observations across all metrics (slave progress report)."""
        return sum(stat.accepted for stat in self._stats.values())

    def report(self) -> Dict[str, Estimate]:
        """Estimates for every metric."""
        return {name: stat.estimate() for name, stat in self._stats.items()}
