"""Warm-up (initial-transient) detection heuristics.

The paper: "a reliable method for determining Nw has been the subject of
years of debate ... To date, no rigorous method for automatically
detecting steady-state is available and Nw must be explicitly specified
by the user."  That remains true — but the best-regarded *heuristic* is
MSER (White's Marginal Standard Error Rule, usually applied to batched
data as MSER-5): truncate the prefix that minimizes the marginal
standard error of the remaining sample,

    MSER(d) = s_d^2 / (n - d)

over truncation points d, where s_d^2 is the variance of the
observations after d.  Intuition: cutting genuine transient reduces the
variance faster than it shrinks the sample; cutting steady-state data
only shrinks the sample.

This module provides :func:`mser` / :func:`mser5` as *advisory* tools —
pilot-run a metric, ask for a suggested Nw, then configure the real
experiment with it.  It deliberately does not auto-wire into
`Statistic`: the paper's position (explicit user-specified Nw) is the
honest default, and the rule's known failure mode (favoring tiny
samples at the sequence tail) is guarded by only searching the first
half of the sample.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

#: Fewest observations (or batch means) MSER will score.
MIN_MSER_SAMPLE = 10

#: The "no usable answer" sentinel: truncate nothing, and the returned
#: marginal-standard-error score is +inf so callers comparing candidate
#: pilot runs never prefer a degenerate one.
NO_RESULT: Tuple[int, float] = (0, math.inf)


def mser(sample: Sequence[float], max_fraction: float = 0.5) -> Tuple[int, float]:
    """MSER truncation point for a raw observation sequence.

    Returns ``(d, score)``: discard the first ``d`` observations.  Only
    truncation points up to ``max_fraction`` of the sample are
    considered (the rule degenerates when the retained tail gets small).

    Degenerate inputs get sentinels rather than exceptions — the rule is
    advisory, and a pilot-analysis pipeline should not abort over them:

    - fewer than :data:`MIN_MSER_SAMPLE` observations → :data:`NO_RESULT`
      (``(0, inf)``: truncate nothing, score worse than any real one);
    - a constant sequence → ``(0, 0.0)`` (already "converged"; zero
      marginal error at zero truncation).

    Invalid *parameters* (``max_fraction`` out of range) still raise.
    """
    if not 0.0 < max_fraction <= 0.9:
        raise ValueError(f"max_fraction must be in (0, 0.9], got {max_fraction}")
    values = np.asarray(sample, dtype=float)
    n = values.size
    if n < MIN_MSER_SAMPLE:
        return NO_RESULT
    limit = max(1, int(n * max_fraction))
    # Suffix sums give all suffix means/variances in O(n).
    suffix_sum = np.cumsum(values[::-1])[::-1]
    suffix_sq = np.cumsum((values**2)[::-1])[::-1]
    best_d, best_score = 0, np.inf
    for d in range(0, limit):
        m = n - d
        mean = suffix_sum[d] / m
        variance = max(0.0, suffix_sq[d] / m - mean * mean)
        score = variance / m
        if score < best_score:
            best_d, best_score = d, score
    return best_d, float(best_score)


def mser5(sample: Sequence[float], batch: int = 5,
          max_fraction: float = 0.5) -> Tuple[int, float]:
    """MSER over means of non-overlapping batches (the usual MSER-5).

    Batching smooths the sequence so the rule does not chase individual
    outliers.  The returned truncation point is in *raw observations*
    (a multiple of ``batch``).

    Mirrors :func:`mser`'s degenerate-input contract: fewer than
    :data:`MIN_MSER_SAMPLE` full batches returns :data:`NO_RESULT`
    instead of raising; an invalid ``batch`` parameter still raises.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    values = np.asarray(sample, dtype=float)
    n_batches = values.size // batch
    if n_batches < MIN_MSER_SAMPLE:
        return NO_RESULT
    means = values[: n_batches * batch].reshape(n_batches, batch).mean(axis=1)
    d_batches, score = mser(means, max_fraction)
    return d_batches * batch, score


def suggest_warmup(sample: Sequence[float], batch: int = 5,
                   safety_factor: float = 2.0) -> int:
    """A practical Nw suggestion: MSER-5 truncation times a safety factor.

    Pilot-run the simulation, collect a few thousand observations of the
    slowest-warming metric, and pass them here; configure the real
    experiment's ``warmup_samples`` with the result.

    A pilot too small for MSER-5 (see :data:`NO_RESULT`) suggests 0 —
    i.e. "no evidence a warm-up is needed", which for an advisory tool
    fed a near-empty pilot is the only defensible answer.
    """
    if safety_factor < 1.0:
        raise ValueError(f"safety_factor must be >= 1, got {safety_factor}")
    d, _ = mser5(sample, batch=batch)
    return int(np.ceil(d * safety_factor))
