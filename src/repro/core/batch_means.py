"""Batch means: the classic alternative to lag-spaced sampling.

BigHouse handles output autocorrelation by *discarding* l-1 of every l
observations (runs-up calibrated).  The older textbook alternative keeps
every observation but averages consecutive batches of size ``b`` and
treats the batch means as (approximately) independent.  Both are valid;
they trade differently:

- lag spacing throws away information (simulated events inflate by l)
  but estimates the *full distribution* — quantiles come for free from
  the histogram of accepted raw observations;
- batch means keeps every event but only the *mean* survives batching —
  a batch-mean histogram estimates quantiles of the batch mean, not of
  the underlying metric, so tail-latency questions cannot be answered.

This module exists for the ablation benchmark that quantifies that
trade-off (see ``benchmarks/bench_ablation_sampling.py``); the main
framework always uses lag spacing, as the paper does.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.confidence import z_value
from repro.core.runs_test import MIN_RUNS_SAMPLE, runs_up_passes


class BatchMeansEstimator:
    """Streaming batch-means estimator for one metric's mean.

    Observations accumulate into fixed-size batches; completed batch
    means feed a running mean/variance from which a CI follows under the
    independence of batch means.
    """

    def __init__(self, batch_size: int, confidence: float = 0.95):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        self.confidence = confidence
        self._z = z_value(confidence)
        self._current_sum = 0.0
        self._current_count = 0
        self.batch_means: list[float] = []
        self.observations = 0

    def observe(self, value: float) -> None:
        """Feed one raw observation."""
        self.observations += 1
        self._current_sum += value
        self._current_count += 1
        if self._current_count >= self.batch_size:
            self.batch_means.append(self._current_sum / self._current_count)
            self._current_sum = 0.0
            self._current_count = 0

    @property
    def batches(self) -> int:
        """Completed batches so far."""
        return len(self.batch_means)

    def mean(self) -> float:
        """Grand mean over completed batches."""
        if not self.batch_means:
            raise ValueError("no completed batches yet")
        return sum(self.batch_means) / len(self.batch_means)

    def std_of_batch_means(self) -> float:
        """Sample standard deviation of the batch means."""
        n = len(self.batch_means)
        if n < 2:
            raise ValueError("need >= 2 batches for a variance")
        grand = self.mean()
        variance = sum((m - grand) ** 2 for m in self.batch_means) / (n - 1)
        return math.sqrt(variance)

    def confidence_halfwidth(self) -> float:
        """CI half-width on the grand mean (CLT over batch means)."""
        n = len(self.batch_means)
        return self._z * self.std_of_batch_means() / math.sqrt(n)

    def relative_accuracy(self) -> float:
        """Achieved E = half-width / |mean| (Eq. 1 analogue)."""
        grand = self.mean()
        if grand == 0:
            raise ValueError("relative accuracy undefined at zero mean")
        return self.confidence_halfwidth() / abs(grand)

    def batch_means_look_independent(
        self, significance: float = 0.05
    ) -> Optional[bool]:
        """Runs-up test over the batch means (None if too few batches)."""
        if len(self.batch_means) < MIN_RUNS_SAMPLE:
            return None
        return runs_up_passes(self.batch_means, significance)


def calibrate_batch_size(
    sample,
    initial: int = 1,
    max_batch_size: int = 4096,
    significance: float = 0.05,
) -> int:
    """Double the batch size until batch means pass the runs-up test.

    The batch-means analogue of :func:`repro.core.runs_test.find_lag`:
    given a calibration sample, find the smallest power-of-two batch size
    whose batch means look independent.  Falls back to the largest
    testable size when nothing passes.
    """
    if initial < 1:
        raise ValueError(f"initial must be >= 1, got {initial}")
    sample = list(sample)
    size = initial
    best = initial
    while size <= max_batch_size:
        n_batches = len(sample) // size
        if n_batches < MIN_RUNS_SAMPLE:
            break
        best = size
        means = [
            sum(sample[i * size:(i + 1) * size]) / size
            for i in range(n_batches)
        ]
        if runs_up_passes(means, significance):
            return size
        size *= 2
    return best
