"""Shared convergence logic over a histogram.

Both a live :class:`~repro.core.statistic.Statistic` and the parallel
master (which judges convergence on the *merged* histogram aggregated
from all slaves, Fig. 3) need the same computation: given current moment
and quantile estimates, how large must the i.i.d. sample be (Eqs. 2-3),
and is the current sample large enough?
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Tuple

from repro.core.confidence import mean_sample_size, quantile_sample_size, z_value
from repro.core.histogram import Histogram


def required_sample_size(
    histogram: Histogram,
    mean_accuracy: Optional[float],
    quantile_targets: Mapping[float, float],
    confidence: float = 0.95,
    min_accepted: int = 100,
) -> float:
    """Current estimate of ``max(Nm, Nq, ...)`` for one metric.

    Returns ``inf`` while any needed estimate is still undefined (zero
    density at a target quantile, zero mean under a relative-accuracy
    criterion) — the metric simply cannot be judged converged yet.
    """
    if histogram.count == 0:
        return math.inf
    requirement = float(min_accepted)
    if mean_accuracy is not None:
        std = histogram.std
        if std > 0.0:
            epsilon = mean_accuracy * abs(histogram.mean)
            if epsilon <= 0.0:
                return math.inf
            requirement = max(
                requirement, mean_sample_size(std, epsilon, confidence)
            )
    for q, accuracy in quantile_targets.items():
        x_q = histogram.quantile(q)
        density = histogram.density_at_quantile(q)
        epsilon_p = accuracy * abs(x_q) * density
        if epsilon_p <= 0.0:
            return math.inf
        # A probability half-width can never exceed the shorter tail.
        epsilon_p = min(epsilon_p, q, 1.0 - q)
        requirement = max(
            requirement, quantile_sample_size(q, epsilon_p, confidence)
        )
    return requirement


def is_converged(
    histogram: Histogram,
    mean_accuracy: Optional[float],
    quantile_targets: Mapping[float, float],
    confidence: float = 0.95,
    min_accepted: int = 100,
) -> bool:
    """True when the histogram's sample covers the Eq. 2-3 requirement."""
    return histogram.count >= required_sample_size(
        histogram, mean_accuracy, quantile_targets, confidence, min_accepted
    )


def summarize_histogram(
    histogram: Histogram,
    quantile_targets: Mapping[float, float],
    confidence: float = 0.95,
) -> Tuple[float, float, Dict[float, float], Tuple[float, float],
           Dict[float, Tuple[float, float]]]:
    """(mean, std, quantiles, mean CI, quantile CIs) off a histogram.

    The quantile CI uses the CLT order-statistic interval mapped through
    the histogram's density at the quantile (Chen & Kelton).
    """
    if histogram.count == 0:
        raise ValueError("cannot summarize an empty histogram")
    z = z_value(confidence)
    n = histogram.count
    mean = histogram.mean
    std = histogram.std
    half = z * std / math.sqrt(n)
    quantiles: Dict[float, float] = {}
    quantile_ci: Dict[float, Tuple[float, float]] = {}
    for q in quantile_targets:
        x_q = histogram.quantile(q)
        quantiles[q] = x_q
        density = histogram.density_at_quantile(q)
        if density > 0:
            half_value = z * math.sqrt(q * (1.0 - q) / n) / density
            quantile_ci[q] = (x_q - half_value, x_q + half_value)
    return mean, std, quantiles, (mean - half, mean + half), quantile_ci
