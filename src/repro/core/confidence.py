"""Confidence-interval mathematics (Eqs. 1–3 of the paper).

An estimate has accuracy ``epsilon`` (confidence-interval half-width, in
the metric's units) and confidence level ``1 - alpha``.  BigHouse
normalizes the half-width by the mean estimate::

    E = epsilon / x_bar                                        (Eq. 1)

so a user asks for e.g. "response time within ±5% at 95% confidence".

Required sample sizes come from the central limit theorem::

    Nm = (z_{1-alpha/2} * sigma / epsilon)^2                   (Eq. 2)
    Nq = z_{1-alpha/2}^2 * q * (1 - q) / epsilon_p^2           (Eq. 3)

where Eq. 3's ``epsilon_p`` is the half-width in *probability* units.  To
target a half-width of ``E * x_q`` in value units, we convert through the
density at the quantile (the delta method used by Chen & Kelton):
``epsilon_p = E * x_q * f(x_q)``, with ``f`` estimated from the metric's
histogram.
"""

from __future__ import annotations

import math
from functools import lru_cache

from scipy import stats as _scipy_stats


@lru_cache(maxsize=64)
def z_value(confidence: float) -> float:
    """Two-sided standard-normal critical value ``z_{1-alpha/2}``.

    ``confidence`` is the level ``1 - alpha``; 0.95 gives the familiar
    1.96.  Cached: convergence checks ask for the same handful of levels
    thousands of times per run, and scipy's ``ppf`` costs ~100 µs.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    return float(_scipy_stats.norm.ppf(1.0 - alpha / 2.0))


def mean_sample_size(std: float, epsilon: float, confidence: float = 0.95) -> float:
    """Eq. 2: observations needed for a mean CI of half-width ``epsilon``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    if std < 0:
        raise ValueError(f"std must be >= 0, got {std}")
    z = z_value(confidence)
    return (z * std / epsilon) ** 2


def quantile_sample_size(
    q: float, epsilon_p: float, confidence: float = 0.95
) -> float:
    """Eq. 3: observations needed for a quantile CI of probability
    half-width ``epsilon_p``."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q}")
    if epsilon_p <= 0:
        raise ValueError(f"epsilon_p must be > 0, got {epsilon_p}")
    z = z_value(confidence)
    return z * z * q * (1.0 - q) / (epsilon_p * epsilon_p)


def mean_confidence_interval(
    mean: float, std: float, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """CLT confidence interval for a mean from n i.i.d. observations."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    half = z_value(confidence) * std / math.sqrt(n)
    return mean - half, mean + half
