"""Runs-up independence test (Knuth, TAOCP Vol. 2, §3.3.2G).

BigHouse's calibration phase must pick a lag spacing ``l`` such that
keeping only every ``l``-th observation from the (autocorrelated) output
sequence yields a sample that can be treated as independent (Section 2.3,
citing [10, 11, 20]).  The runs-up test is the classic tool: it counts
maximal strictly-ascending runs of lengths 1..6+ and compares the counts
against their expectation under independence using Knuth's quadratic-form
statistic, which is asymptotically chi-square with 6 degrees of freedom.

An autocorrelated sequence (e.g. successive response times from a busy
queue) produces too few short runs — neighbours tend to move together —
and fails the test; spacing the observations out restores independence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

#: Knuth's quadratic-form coefficients (TAOCP §3.3.2, Eq. 3.3.2-14).
KNUTH_A = np.array(
    [
        [4529.4, 9044.9, 13568.0, 18091.0, 22615.0, 27892.0],
        [9044.9, 18097.0, 27139.0, 36187.0, 45234.0, 55789.0],
        [13568.0, 27139.0, 40721.0, 54281.0, 67852.0, 83685.0],
        [18091.0, 36187.0, 54281.0, 72414.0, 90470.0, 111580.0],
        [22615.0, 45234.0, 67852.0, 90470.0, 113262.0, 139476.0],
        [27892.0, 55789.0, 83685.0, 111580.0, 139476.0, 172860.0],
    ]
)

#: Expected fraction of runs of length 1..5 and >= 6 under independence.
KNUTH_B = np.array(
    [1.0 / 6, 5.0 / 24, 11.0 / 120, 19.0 / 720, 29.0 / 5040, 1.0 / 840]
)

#: Degrees of freedom of the runs-up statistic.
RUNS_UP_DOF = 6

#: Minimum sequence length for the chi-square approximation to be usable.
MIN_RUNS_SAMPLE = 64


def runs_up_counts(sequence: Sequence[float]) -> np.ndarray:
    """Count maximal ascending runs of length 1..5 and >= 6.

    A run ends whenever the next value does not strictly increase.  Ties
    end the run (the test targets continuous data where ties have measure
    zero, but simulation outputs can repeat, e.g. zero waiting times).
    """
    values = np.asarray(sequence, dtype=float)
    counts = np.zeros(6, dtype=np.int64)
    if values.size == 0:
        return counts
    if values.size == 1:
        counts[0] = 1
        return counts
    ascending = values[1:] > values[:-1]
    run_length = 1
    for up in ascending:
        if up:
            run_length += 1
        else:
            counts[min(run_length, 6) - 1] += 1
            run_length = 1
    counts[min(run_length, 6) - 1] += 1
    return counts


def runs_up_statistic(sequence: Sequence[float]) -> float:
    """Knuth's V statistic; ~ chi-square(6) under independence."""
    values = np.asarray(sequence, dtype=float)
    n = values.size
    if n < MIN_RUNS_SAMPLE:
        raise ValueError(
            f"runs-up test needs >= {MIN_RUNS_SAMPLE} observations, got {n}"
        )
    counts = runs_up_counts(values).astype(float)
    deviation = counts - n * KNUTH_B
    return float(deviation @ KNUTH_A @ deviation) / n


def runs_up_passes(sequence: Sequence[float], significance: float = 0.05) -> bool:
    """True if the sequence is consistent with independence.

    One-sided upper-tail test: autocorrelation inflates V, so we reject
    when V exceeds the chi-square(6) critical value at ``significance``.
    """
    if not 0.0 < significance < 1.0:
        raise ValueError(f"significance must be in (0, 1), got {significance}")
    critical = float(_scipy_stats.chi2.ppf(1.0 - significance, RUNS_UP_DOF))
    return runs_up_statistic(sequence) <= critical


def find_lag(
    sample: Sequence[float],
    max_lag: int = 50,
    significance: float = 0.05,
    min_points: int = MIN_RUNS_SAMPLE,
) -> int:
    """Smallest lag ``l`` whose spaced subsequence passes the runs-up test.

    This is the calibration-phase computation: given the ~5000-observation
    calibration sample, try ``l = 1, 2, ...`` and return the first lag at
    which ``sample[::l]`` looks independent.  If no lag up to ``max_lag``
    passes (or subsequences become too short to test), the largest testable
    lag is returned — a conservative fallback mirroring the original
    implementation's behaviour of never aborting a simulation over
    calibration.
    """
    values = np.asarray(sample, dtype=float)
    if values.size < min_points:
        raise ValueError(
            f"calibration sample too small: {values.size} < {min_points}"
        )
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")
    largest_testable = 1
    for lag in range(1, max_lag + 1):
        spaced = values[::lag]
        if spaced.size < min_points:
            break
        largest_testable = lag
        if runs_up_passes(spaced, significance):
            return lag
    return largest_testable
