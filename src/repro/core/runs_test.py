"""Runs-up independence test (Knuth, TAOCP Vol. 2, §3.3.2G).

BigHouse's calibration phase must pick a lag spacing ``l`` such that
keeping only every ``l``-th observation from the (autocorrelated) output
sequence yields a sample that can be treated as independent (Section 2.3,
citing [10, 11, 20]).  The runs-up test is the classic tool: it counts
maximal strictly-ascending runs of lengths 1..6+ and compares the counts
against their expectation under independence using Knuth's quadratic-form
statistic, which is asymptotically chi-square with 6 degrees of freedom.

An autocorrelated sequence (e.g. successive response times from a busy
queue) produces too few short runs — neighbours tend to move together —
and fails the test; spacing the observations out restores independence.

**Inconclusive results.**  The chi-square approximation assumes a few
thousand observations of *continuous* data.  Two degenerate regimes
produce answers that look authoritative but are not:

- sequences shorter than :data:`MIN_RUNS_SAMPLE` — the asymptotic null
  distribution simply does not apply;
- tie-heavy sequences (adjacent-equality fraction above
  :data:`MAX_TIE_FRACTION`) — ties end runs under the strict-ascent
  convention, and at high tie rates the run-length distribution is
  driven by the tie structure rather than by independence.  A pure
  upward trend whose long runs are broken only by ties can *pass* the
  test outright (see ``tests/test_runs_test.py`` for the construction).

:func:`runs_up_test` therefore reports a three-way outcome (pass /
fail / inconclusive), and :func:`select_lag` — the calibration-phase
entry point — only accepts a lag on a *conclusive* pass, growing the
lag conservatively otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as _scipy_stats

#: Knuth's quadratic-form coefficients (TAOCP §3.3.2, Eq. 3.3.2-14).
KNUTH_A = np.array(
    [
        [4529.4, 9044.9, 13568.0, 18091.0, 22615.0, 27892.0],
        [9044.9, 18097.0, 27139.0, 36187.0, 45234.0, 55789.0],
        [13568.0, 27139.0, 40721.0, 54281.0, 67852.0, 83685.0],
        [18091.0, 36187.0, 54281.0, 72414.0, 90470.0, 111580.0],
        [22615.0, 45234.0, 67852.0, 90470.0, 113262.0, 139476.0],
        [27892.0, 55789.0, 83685.0, 111580.0, 139476.0, 172860.0],
    ]
)

#: Expected fraction of runs of length 1..5 and >= 6 under independence.
KNUTH_B = np.array(
    [1.0 / 6, 5.0 / 24, 11.0 / 120, 19.0 / 720, 29.0 / 5040, 1.0 / 840]
)

#: Degrees of freedom of the runs-up statistic.
RUNS_UP_DOF = 6

#: Minimum sequence length for the chi-square approximation to be usable.
MIN_RUNS_SAMPLE = 64

#: Adjacent-equality fraction above which the runs-up test is declared
#: inconclusive: the strict-ascent convention makes heavily tied data's
#: run-length distribution reflect the tie structure, not independence.
#: Real queueing outputs stay well below this (waiting times at moderate
#: load measure ~0.1-0.25 even with a point mass at zero); constant
#: sequences sit at 1.0 and trend-with-ties pathologies near 0.5.
MAX_TIE_FRACTION = 0.4

#: Outcomes of :func:`runs_up_test`.
PASS = "pass"
FAIL = "fail"
INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class RunsUpResult:
    """Three-way outcome of one runs-up independence test."""

    outcome: str  # PASS / FAIL / INCONCLUSIVE
    n: int
    tie_fraction: float
    statistic: Optional[float] = None
    reason: str = ""

    @property
    def passed(self) -> bool:
        """True only for a conclusive pass."""
        return self.outcome == PASS

    @property
    def conclusive(self) -> bool:
        """False when the chi-square approximation was not applicable."""
        return self.outcome != INCONCLUSIVE


@dataclass(frozen=True)
class LagSelection:
    """Outcome of the calibration-phase lag search (:func:`select_lag`)."""

    lag: int
    conclusive: bool
    reason: str
    #: Number of lags whose spaced subsequence produced a conclusive
    #: (pass or fail) runs-up verdict during the search.
    tested: int = 0


def tie_fraction(sequence: Sequence[float]) -> float:
    """Fraction of adjacent pairs that are exactly equal."""
    values = np.asarray(sequence, dtype=float)
    if values.size < 2:
        return 0.0
    return float(np.mean(values[1:] == values[:-1]))


def runs_up_counts(sequence: Sequence[float]) -> np.ndarray:
    """Count maximal ascending runs of length 1..5 and >= 6.

    A run ends whenever the next value does not strictly increase.  Ties
    end the run (the test targets continuous data where ties have measure
    zero, but simulation outputs can repeat, e.g. zero waiting times).
    """
    values = np.asarray(sequence, dtype=float)
    counts = np.zeros(6, dtype=np.int64)
    if values.size == 0:
        return counts
    if values.size == 1:
        counts[0] = 1
        return counts
    ascending = values[1:] > values[:-1]
    run_length = 1
    for up in ascending:
        if up:
            run_length += 1
        else:
            counts[min(run_length, 6) - 1] += 1
            run_length = 1
    counts[min(run_length, 6) - 1] += 1
    return counts


def runs_up_statistic(sequence: Sequence[float]) -> float:
    """Knuth's V statistic; ~ chi-square(6) under independence."""
    values = np.asarray(sequence, dtype=float)
    n = values.size
    if n < MIN_RUNS_SAMPLE:
        raise ValueError(
            f"runs-up test needs >= {MIN_RUNS_SAMPLE} observations, got {n}"
        )
    counts = runs_up_counts(values).astype(float)
    deviation = counts - n * KNUTH_B
    return float(deviation @ KNUTH_A @ deviation) / n


def runs_up_test(
    sequence: Sequence[float], significance: float = 0.05
) -> RunsUpResult:
    """Run the runs-up test with a defined inconclusive regime.

    Returns :data:`INCONCLUSIVE` (instead of a misleading chi-square
    verdict) when the sequence is shorter than :data:`MIN_RUNS_SAMPLE`
    or its adjacent-tie fraction exceeds :data:`MAX_TIE_FRACTION`;
    otherwise :data:`PASS` / :data:`FAIL` by the one-sided upper-tail
    chi-square(6) criterion (autocorrelation inflates V).
    """
    if not 0.0 < significance < 1.0:
        raise ValueError(f"significance must be in (0, 1), got {significance}")
    values = np.asarray(sequence, dtype=float)
    n = int(values.size)
    ties = tie_fraction(values)
    if n < MIN_RUNS_SAMPLE:
        return RunsUpResult(
            outcome=INCONCLUSIVE,
            n=n,
            tie_fraction=ties,
            reason=(
                f"sequence too short for the chi-square approximation "
                f"({n} < {MIN_RUNS_SAMPLE})"
            ),
        )
    if ties > MAX_TIE_FRACTION:
        return RunsUpResult(
            outcome=INCONCLUSIVE,
            n=n,
            tie_fraction=ties,
            reason=(
                f"tie fraction {ties:.2f} exceeds {MAX_TIE_FRACTION}; "
                "the continuous-data assumption is broken"
            ),
        )
    statistic = runs_up_statistic(values)
    critical = float(_scipy_stats.chi2.ppf(1.0 - significance, RUNS_UP_DOF))
    return RunsUpResult(
        outcome=PASS if statistic <= critical else FAIL,
        n=n,
        tie_fraction=ties,
        statistic=statistic,
        reason=f"V={statistic:.2f} vs chi2 critical {critical:.2f}",
    )


def runs_up_passes(sequence: Sequence[float], significance: float = 0.05) -> bool:
    """True only for a *conclusive* pass of the runs-up test.

    One-sided upper-tail test: autocorrelation inflates V, so we reject
    when V exceeds the chi-square(6) critical value at ``significance``.
    Tie-heavy sequences (see :data:`MAX_TIE_FRACTION`) are inconclusive
    and report False — they must not be treated as independent.  Too
    short a sequence raises, as :func:`runs_up_statistic` always has.
    """
    values = np.asarray(sequence, dtype=float)
    if values.size < MIN_RUNS_SAMPLE:
        raise ValueError(
            f"runs-up test needs >= {MIN_RUNS_SAMPLE} observations, "
            f"got {values.size}"
        )
    return runs_up_test(values, significance).passed


def select_lag(
    sample: Sequence[float],
    max_lag: int = 50,
    significance: float = 0.05,
    min_points: int = MIN_RUNS_SAMPLE,
) -> LagSelection:
    """Calibration-phase lag search with defined degenerate behaviour.

    Try ``l = 1, 2, ...`` and accept the first lag whose spaced
    subsequence ``sample[::l]`` yields a *conclusive* runs-up pass.  An
    inconclusive verdict (short subsequence, tie-heavy data) never
    accepts a lag — growing the spacing is the conservative response to
    not knowing, so:

    - no conclusive pass up to ``max_lag`` → the largest testable lag,
      flagged ``conclusive=False``;
    - a calibration sample too small to test at all → ``max_lag``
      itself, flagged ``conclusive=False`` (the caller configured a
      sample the test cannot certify; maximal spacing is the only
      defensible answer that does not abort the run).
    """
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")
    values = np.asarray(sample, dtype=float)
    if values.size < min_points:
        return LagSelection(
            lag=max_lag,
            conclusive=False,
            reason=(
                f"calibration sample too small to test "
                f"({values.size} < {min_points}); grew lag to max_lag"
            ),
        )
    largest_testable = 1
    tested = 0
    for lag in range(1, max_lag + 1):
        spaced = values[::lag]
        if spaced.size < min_points:
            break
        largest_testable = lag
        result = runs_up_test(spaced, significance)
        if result.conclusive:
            tested += 1
            if result.passed:
                return LagSelection(
                    lag=lag,
                    conclusive=True,
                    reason=result.reason,
                    tested=tested,
                )
    return LagSelection(
        lag=largest_testable,
        conclusive=False,
        reason=(
            f"no conclusive runs-up pass up to lag {largest_testable} "
            f"({tested} conclusive verdicts); grew lag to the largest "
            "testable spacing"
        ),
        tested=tested,
    )


def find_lag(
    sample: Sequence[float],
    max_lag: int = 50,
    significance: float = 0.05,
    min_points: int = MIN_RUNS_SAMPLE,
) -> int:
    """Smallest lag ``l`` whose spaced subsequence passes the runs-up test.

    This is the calibration-phase computation: given the ~5000-observation
    calibration sample, try ``l = 1, 2, ...`` and return the first lag at
    which ``sample[::l]`` looks independent.  Only *conclusive* passes
    count (see :func:`runs_up_test`); if no lag up to ``max_lag``
    conclusively passes, the largest testable lag is returned — a
    conservative fallback mirroring the original implementation's
    behaviour of never aborting a simulation over calibration.  Callers
    that need the conclusiveness flag use :func:`select_lag`.
    """
    values = np.asarray(sample, dtype=float)
    if values.size < min_points:
        raise ValueError(
            f"calibration sample too small: {values.size} < {min_points}"
        )
    return select_lag(
        values, max_lag=max_lag, significance=significance,
        min_points=min_points,
    ).lag
