"""Per-metric phase machine: warm-up, calibration, measurement, convergence.

A :class:`Statistic` is one output metric (e.g. 95th-percentile response
time) with its own accuracy/confidence targets.  It consumes the raw
observation stream the simulation produces for that metric and implements
the full sequence of Fig. 2:

- discard the first ``Nw`` observations (warm-up; cold-start bias),
- collect a ``Nc``-observation calibration sample, run the runs-up test
  to find the lag spacing ``l`` and fix the histogram bin scheme,
- accept only every ``l``-th observation into the histogram, and
- declare convergence once the accepted sample size covers
  ``max(Nm, Nq)`` from Eqs. 2-3.

The simulated-event cost of a metric is therefore ``l`` times its required
i.i.d. sample size — exactly the inflation the paper discusses.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.confidence import z_value
from repro.core.convergence import required_sample_size, summarize_histogram
from repro.core.histogram import BinScheme, Histogram
from repro.core.runs_test import LagSelection, select_lag


class StatisticError(RuntimeError):
    """Raised for invalid statistic configuration or use."""


class Phase(enum.Enum):
    """The four phases of a BigHouse output metric (Fig. 2)."""

    WARMUP = "warmup"
    CALIBRATION = "calibration"
    MEASUREMENT = "measurement"
    CONVERGED = "converged"


@dataclass
class Estimate:
    """A converged (or in-progress) report for one output metric."""

    name: str
    phase: Phase
    converged: bool
    lag: Optional[int]
    accepted: int
    observed: int
    mean: Optional[float] = None
    std: Optional[float] = None
    quantiles: Dict[float, float] = field(default_factory=dict)
    mean_ci: Optional[Tuple[float, float]] = None
    quantile_ci: Dict[float, Tuple[float, float]] = field(default_factory=dict)

    def quantile(self, q: float) -> float:
        """Quantile estimate for a tracked q (KeyError if not tracked)."""
        return self.quantiles[q]


def _normalize_quantiles(
    quantiles: Union[None, Mapping[float, float], Iterable]
) -> Dict[float, float]:
    """Accept {q: accuracy}, [(q, accuracy), ...], or [q, ...] forms."""
    if quantiles is None:
        return {}
    if isinstance(quantiles, Mapping):
        items = list(quantiles.items())
    else:
        items = []
        for entry in quantiles:
            if isinstance(entry, (tuple, list)):
                items.append((entry[0], entry[1]))
            else:
                items.append((float(entry), 0.05))
    normalized = {}
    for q, accuracy in items:
        if not 0.0 < q < 1.0:
            raise StatisticError(f"quantile must be in (0, 1), got {q}")
        if not 0.0 < accuracy < 1.0:
            raise StatisticError(
                f"quantile accuracy must be in (0, 1), got {accuracy}"
            )
        normalized[float(q)] = float(accuracy)
    return normalized


class Statistic:
    """One output metric progressing through the BigHouse phase sequence.

    Parameters
    ----------
    name:
        Metric identifier (e.g. ``"response_time"``).
    mean_accuracy:
        Target relative accuracy ``E`` for the mean estimate (Eq. 1);
        ``None`` disables the mean criterion.
    quantiles:
        Quantile targets, e.g. ``{0.95: 0.05}`` for the 95th percentile
        within ±5%.  May be empty.
    confidence:
        Confidence level ``1 - alpha`` shared by all criteria.
    warmup_samples:
        ``Nw`` — observations discarded before calibration.
    calibration_samples:
        ``Nc`` — calibration sample size (the paper uses 5000; the
        runs-up test needs a few thousand points for its chi-square
        approximation).
    bins:
        Regular bins in the quantile histogram.
    max_lag:
        Upper bound on the lag search during calibration.
    fixed_scheme:
        Pre-determined histogram bin scheme.  Used by parallel slaves,
        whose calibration determines only their own lag (Fig. 3).
    min_accepted:
        Floor on the accepted sample size before convergence may be
        declared, guarding the large-sample approximations.
    """

    def __init__(
        self,
        name: str,
        mean_accuracy: Optional[float] = 0.05,
        quantiles: Union[None, Mapping[float, float], Iterable] = None,
        confidence: float = 0.95,
        warmup_samples: int = 1000,
        calibration_samples: int = 5000,
        bins: int = 1000,
        max_lag: int = 50,
        fixed_scheme: Optional[BinScheme] = None,
        min_accepted: int = 100,
        significance: float = 0.05,
        convergence_check_interval: int = 32,
    ):
        if mean_accuracy is not None and not 0.0 < mean_accuracy < 1.0:
            raise StatisticError(
                f"mean_accuracy must be in (0, 1) or None, got {mean_accuracy}"
            )
        if warmup_samples < 0:
            raise StatisticError(f"warmup_samples must be >= 0: {warmup_samples}")
        if calibration_samples < 2:
            raise StatisticError(
                f"calibration_samples must be >= 2: {calibration_samples}"
            )
        self.name = name
        self.mean_accuracy = mean_accuracy
        self.quantile_targets = _normalize_quantiles(quantiles)
        if mean_accuracy is None and not self.quantile_targets:
            raise StatisticError(
                f"statistic {name!r} has no convergence criterion: "
                "set mean_accuracy and/or quantiles"
            )
        self.confidence = confidence
        self._z = z_value(confidence)
        self.warmup_samples = int(warmup_samples)
        self.calibration_samples = int(calibration_samples)
        self.bins = int(bins)
        self.max_lag = int(max_lag)
        self.fixed_scheme = fixed_scheme
        self.min_accepted = int(min_accepted)
        self.significance = significance
        self.convergence_check_interval = int(convergence_check_interval)

        self.phase = Phase.WARMUP
        self.lag: Optional[int] = None
        #: How the lag was chosen (set at calibration end): carries the
        #: conclusiveness flag — an inconclusive runs-up search grows the
        #: lag conservatively instead of accepting an untestable one.
        self.lag_selection: Optional[LagSelection] = None
        self.histogram: Optional[Histogram] = None
        self.observed = 0
        self.accepted = 0
        #: Convergence tests actually executed (telemetry).
        self.convergence_checks = 0
        self._warmup_seen = 0
        self._calibration: list[float] = []
        self._since_accept = 0
        self._barrier_lifted = True  # collection may take control of this
        #: Fired (once) when this metric reaches its warm-up quota while
        #: the barrier is held; a StatisticsCollection installs its
        #: all-warm check here so the per-observation hot path carries no
        #: barrier bookkeeping at all.
        self._warm_hook = None
        #: Accepted-count at which the next convergence test runs.  The
        #: test costs ~30 µs (numpy quantile scans over ~1000 bins), so
        #: instead of a fixed cadence the next check is scheduled a
        #: fraction of the estimated remaining gap ahead — O(log) checks
        #: over a run instead of O(accepted / interval).
        self._next_check = math.inf
        self._required_cache: Optional[float] = None
        #: Structured tracer (repro.observability), or None.  Hooks fire
        #: only at phase transitions and convergence checks — never on
        #: the per-observation fast path.
        self._tracer = None

    # -- structured tracing --------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Attach a tracer; phase transitions and convergence checks
        emit ``statistic/*`` records from then on."""
        self._tracer = tracer

    # -- collection coordination -------------------------------------------

    @property
    def warm_ready(self) -> bool:
        """True once this metric has seen its Nw warm-up observations."""
        return self._warmup_seen >= self.warmup_samples

    def take_barrier_control(self) -> None:
        """Called by a StatisticsCollection: warm-up exit now needs an
        explicit :meth:`lift_warmup_barrier` (all-metrics-warm semantics)."""
        if self.phase is not Phase.WARMUP:
            raise StatisticError(
                f"{self.name}: cannot take barrier control in phase {self.phase}"
            )
        self._barrier_lifted = False

    def lift_warmup_barrier(self) -> None:
        """Allow the metric to leave warm-up (all metrics are warm)."""
        self._barrier_lifted = True
        if self.phase is Phase.WARMUP and self.warm_ready:
            self._enter_calibration()

    # -- the observation stream ---------------------------------------------

    def observe(self, value: float) -> None:
        """Feed one raw observation through the current phase.

        MEASUREMENT is tested first: it is where the overwhelming
        majority of a run's observations land, and this method is on the
        per-completion hot path.
        """
        self.observed += 1
        phase = self.phase
        if phase is Phase.MEASUREMENT:
            since = self._since_accept + 1
            if since < self.lag:
                self._since_accept = since
            else:
                self._since_accept = 0
                self.histogram.insert(value)
                accepted = self.accepted + 1
                self.accepted = accepted
                if accepted >= self._next_check:
                    self._run_convergence_check()
            return
        if phase is Phase.WARMUP:
            self._warmup_seen += 1
            if self.warm_ready:
                if self._barrier_lifted:
                    self._enter_calibration()
                elif self._warm_hook is not None:
                    hook = self._warm_hook
                    self._warm_hook = None  # fire exactly once
                    hook()
            return
        if phase is Phase.CALIBRATION:
            self._calibration.append(value)
            if len(self._calibration) >= self.calibration_samples:
                self._finish_calibration()
            return
        # CONVERGED: further observations are ignored.

    def _run_convergence_check(self) -> bool:
        """The convergence test scheduled at :attr:`_next_check`.

        Shared by :meth:`observe` and :meth:`observe_block` so both
        paths make identical decisions at identical accepted counts.
        Returns True when the metric just converged.
        """
        accepted = self.accepted
        self.convergence_checks += 1
        required = self.required_sample_size()
        if self._tracer is not None:
            self._tracer.gauge(
                "convergence",
                accepted,
                component="statistic",
                metric=self.name,
                required=(
                    None if required == math.inf else required
                ),
                fraction=(
                    min(1.0, accepted / required)
                    if required not in (0, math.inf)
                    else None
                ),
            )
        if accepted >= required:
            self.phase = Phase.CONVERGED
            if self._tracer is not None:
                self._tracer.event(
                    "phase",
                    component="statistic",
                    metric=self.name,
                    to="converged",
                    accepted=accepted,
                    observed=self.observed,
                    lag=self.lag,
                )
            return True
        # Not there yet: re-test after 5% of the estimated remaining
        # gap (geometric backoff while the requirement is still
        # undefined).
        if required == math.inf:
            gap = accepted
        else:
            gap = int((required - accepted) * 0.05)
        self._next_check = accepted + max(
            self.convergence_check_interval, gap
        )
        return False

    def observe_block(self, values) -> None:
        """Feed a block of raw observations through the phase machine.

        Exactly equivalent to ``for v in values: self.observe(v)`` —
        same phase transitions, same accepted/observed counts, same
        histogram bits, same convergence decisions at the same accepted
        counts — but vectorized: warm-up consumes quota without touching
        values, calibration extends its sample in one slice, and
        measurement selects the lag-thinned positions with a stride and
        feeds them to :meth:`Histogram.insert_block` in segments split
        at the scheduled convergence-check boundaries.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            values = values.reshape(-1)
        i = 0
        n = values.size
        while i < n:
            phase = self.phase
            if phase is Phase.MEASUREMENT:
                i += self._measure_block(values[i:])
            elif phase is Phase.WARMUP:
                i += self._warmup_block(n - i)
            elif phase is Phase.CALIBRATION:
                need = self.calibration_samples - len(self._calibration)
                take = need if need < n - i else n - i
                self._calibration.extend(values[i:i + take].tolist())
                self.observed += take
                i += take
                if len(self._calibration) >= self.calibration_samples:
                    self._finish_calibration()
            else:  # CONVERGED: values are ignored, counts still advance.
                self.observed += n - i
                return

    def _warmup_block(self, remaining: int) -> int:
        """Consume warm-up quota from a block; returns values consumed."""
        need = self.warmup_samples - self._warmup_seen
        if need > 0:
            take = need if need < remaining else remaining
        elif not self._barrier_lifted and self._warm_hook is None:
            # Quota met, hook already fired, barrier still held by the
            # collection: every further observation stays warm-up.
            take = remaining
        else:
            # Degenerate zero-quota start: the first observation is
            # still consumed by warm-up (scalar semantics).
            take = 1
        self._warmup_seen += take
        self.observed += take
        if self.warm_ready:
            if self._barrier_lifted:
                self._enter_calibration()
            elif self._warm_hook is not None:
                hook = self._warm_hook
                self._warm_hook = None  # fire exactly once
                hook()
        return take

    def _measure_block(self, values: np.ndarray) -> int:
        """Measurement-phase block ingestion; returns values consumed.

        Consumes the whole block unless convergence triggers first, in
        which case consumption stops right after the accepting
        observation — the caller routes the rest through CONVERGED.
        """
        lag = self.lag
        since = self._since_accept
        n = values.size
        first = lag - 1 - since
        if first >= n:
            # No observation reaches the lag boundary in this block.
            self._since_accept = since + n
            self.observed += n
            return n
        observed_start = self.observed
        accepted_values = values[first::lag]
        total = accepted_values.size
        position = 0
        while position < total:
            if self._next_check == math.inf:
                take = total - position
            else:
                until_check = int(self._next_check) - self.accepted
                take = until_check if until_check < total - position else (
                    total - position
                )
            self.histogram.insert_block(accepted_values[
                position:position + take
            ])
            self.accepted += take
            position += take
            if self.accepted >= self._next_check:
                # Raw observations consumed up to (and including) the
                # accepting one, so the check sees the same `observed`
                # the scalar path would.
                consumed = first + (position - 1) * lag + 1
                self.observed = observed_start + consumed
                if self._run_convergence_check():
                    self._since_accept = 0
                    return consumed
        self._since_accept = (since + n) % lag
        self.observed = observed_start + n
        return n

    def _enter_calibration(self) -> None:
        self.phase = Phase.CALIBRATION
        if self._tracer is not None:
            self._tracer.event(
                "phase",
                component="statistic",
                metric=self.name,
                to="calibration",
                observed=self.observed,
            )
        if self.calibration_samples == 0:  # pragma: no cover - guarded in init
            self._finish_calibration()

    def _finish_calibration(self) -> None:
        """Runs-up lag search + histogram bin determination (Fig. 2, step 2).

        The lag is only *accepted* on a conclusive runs-up pass; an
        inconclusive search (calibration sample too small, tie-heavy
        data) grows the lag conservatively instead — see
        :func:`repro.core.runs_test.select_lag` and
        :attr:`lag_selection`.
        """
        selection = select_lag(
            self._calibration,
            max_lag=self.max_lag,
            significance=self.significance,
        )
        self.lag = selection.lag
        self.lag_selection = selection
        scheme = self.fixed_scheme or BinScheme.from_sample(
            self._calibration, bins=self.bins
        )
        self.histogram = Histogram(scheme)
        self._calibration = []
        self._since_accept = 0
        self._next_check = max(self.min_accepted, self.convergence_check_interval)
        self.phase = Phase.MEASUREMENT
        if self._tracer is not None:
            self._tracer.event(
                "phase",
                component="statistic",
                metric=self.name,
                to="measurement",
                lag=selection.lag,
                lag_conclusive=selection.conclusive,
                lag_reason=selection.reason,
            )

    # -- convergence ----------------------------------------------------------

    @property
    def converged(self) -> bool:
        """True once the metric reached its accuracy/confidence target."""
        return self.phase is Phase.CONVERGED

    def required_sample_size(self) -> float:
        """Current estimate of max(Nm, Nq) given the running moments.

        Infinite while an estimate needed by a criterion is still
        undefined (e.g. zero density at a quantile early on).
        """
        if self.histogram is None:
            return math.inf
        return required_sample_size(
            self.histogram,
            self.mean_accuracy,
            self.quantile_targets,
            self.confidence,
            self.min_accepted,
        )

    def _converged_now(self) -> bool:
        return self.accepted >= self.required_sample_size()

    def achieved_accuracy(self) -> Dict[str, float]:
        """Current relative half-widths per criterion (for Fig. 8-style
        accuracy-vs-events traces).  Keys: ``"mean"`` and ``"q<q>"``."""
        out: Dict[str, float] = {}
        hist = self.histogram
        if hist is None or hist.count < 2:
            return out
        n = hist.count
        if self.mean_accuracy is not None and hist.mean != 0:
            out["mean"] = self._z * hist.std / math.sqrt(n) / abs(hist.mean)
        for q in self.quantile_targets:
            x_q = hist.quantile(q)
            density = hist.density_at_quantile(q)
            if density > 0 and x_q != 0:
                half_p = self._z * math.sqrt(q * (1 - q) / n)
                out[f"q{q:g}"] = half_p / density / abs(x_q)
        return out

    # -- reporting --------------------------------------------------------------

    def estimate(self) -> Estimate:
        """Snapshot of all estimates with confidence intervals."""
        est = Estimate(
            name=self.name,
            phase=self.phase,
            converged=self.converged,
            lag=self.lag,
            accepted=self.accepted,
            observed=self.observed,
        )
        hist = self.histogram
        if hist is None or hist.count == 0:
            return est
        (
            est.mean,
            est.std,
            est.quantiles,
            est.mean_ci,
            est.quantile_ci,
        ) = summarize_histogram(hist, self.quantile_targets, self.confidence)
        return est

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Statistic({self.name!r}, phase={self.phase.value}, "
            f"observed={self.observed}, accepted={self.accepted}, lag={self.lag})"
        )
