"""The BigHouse statistics package — the paper's core contribution.

Every output metric (a :class:`Statistic`) proceeds through the four-phase
sequence of Fig. 2:

1. **Warm-up** — the first ``Nw`` observations are discarded to avoid
   cold-start bias.  With multiple metrics, no metric may leave warm-up
   until *all* have seen their ``Nw`` observations (barrier semantics,
   Section 2.3), coordinated by :class:`StatisticsCollection`.
2. **Calibration** — a 5000-observation sample is collected; the runs-up
   independence test (Knuth, TAOCP §3.3.2G) determines the minimum lag
   spacing ``l`` at which observations can be treated as independent, and
   the sample fixes the histogram bin scheme for quantile estimation
   (Chen & Kelton 2001).
3. **Measurement** — only every ``l``-th observation is accepted into the
   histogram (inflating simulated events by a factor of ``l``).
4. **Convergence** — the metric converges once the accepted sample size
   reaches ``max(Nm, Nq)`` (Eqs. 2–3); the simulation stops when every
   metric has converged.
"""

from repro.core.histogram import BinScheme, Histogram, HistogramError
from repro.core.runs_test import runs_up_counts, runs_up_statistic, runs_up_passes, find_lag
from repro.core.confidence import (
    z_value,
    mean_sample_size,
    quantile_sample_size,
    mean_confidence_interval,
)
from repro.core.convergence import (
    required_sample_size,
    is_converged,
    summarize_histogram,
)
from repro.core.statistic import Phase, Statistic, Estimate, StatisticError
from repro.core.collection import StatisticsCollection
from repro.core.batch_means import BatchMeansEstimator, calibrate_batch_size
from repro.core.warmup import mser, mser5, suggest_warmup

__all__ = [
    "BinScheme",
    "Histogram",
    "HistogramError",
    "runs_up_counts",
    "runs_up_statistic",
    "runs_up_passes",
    "find_lag",
    "z_value",
    "mean_sample_size",
    "quantile_sample_size",
    "mean_confidence_interval",
    "required_sample_size",
    "is_converged",
    "summarize_histogram",
    "Phase",
    "Statistic",
    "Estimate",
    "StatisticError",
    "StatisticsCollection",
    "BatchMeansEstimator",
    "calibrate_batch_size",
    "mser",
    "mser5",
    "suggest_warmup",
]
