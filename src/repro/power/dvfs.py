"""DVFS performance model (Eq. 6) and the server/DVFS coupling.

Eq. 6 of the paper: under DVFS at frequency ``f``, the service rate is

    mu' = mu * alpha * (f / f_max) + mu * (1 - alpha)

for an application that is ``alpha`` CPU-bound; the paper assumes
alpha = 0.9, "typical of a CPU-intense application (e.g., LINPACK)".
The server's ``speed`` multiplier is therefore
``alpha * f/f_max + (1 - alpha)``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.datacenter.server import Server
from repro.power.models import PowerModel, PowerModelError


class DVFSPerformanceModel:
    """Frequency -> service-speed mapping of Eq. 6."""

    def __init__(self, alpha: float = 0.9, f_max: float = 1.0, f_min: float = 0.5):
        if not 0.0 <= alpha <= 1.0:
            raise PowerModelError(f"alpha must be in [0, 1], got {alpha}")
        if f_max <= 0:
            raise PowerModelError(f"f_max must be > 0, got {f_max}")
        if not 0.0 < f_min <= f_max:
            raise PowerModelError(
                f"f_min must be in (0, f_max={f_max}], got {f_min}"
            )
        self.alpha = float(alpha)
        self.f_max = float(f_max)
        self.f_min = float(f_min)

    def speed(self, frequency: float) -> float:
        """Service-rate multiplier at ``frequency`` (1.0 at f_max)."""
        if not self.f_min <= frequency <= self.f_max:
            raise PowerModelError(
                f"frequency must be in [{self.f_min}, {self.f_max}], "
                f"got {frequency}"
            )
        return self.alpha * frequency / self.f_max + (1.0 - self.alpha)

    def clamp(self, frequency: float) -> float:
        """Clamp a requested frequency into the platform's DVFS range."""
        return min(self.f_max, max(self.f_min, frequency))


class ServerDVFS:
    """Couples a server to power and performance models.

    Setting :attr:`frequency` re-scales the server's service speed via
    Eq. 6; :meth:`power_now` evaluates the power model at the server's
    instantaneous utilization.  Frequency-change listeners let energy
    meters re-integrate at each setting change.
    """

    def __init__(
        self,
        server: Server,
        power_model: PowerModel,
        perf_model: Optional[DVFSPerformanceModel] = None,
    ):
        self.server = server
        self.power_model = power_model
        self.perf_model = perf_model if perf_model is not None else DVFSPerformanceModel()
        self._frequency = self.perf_model.f_max
        self._listeners: list[Callable[["ServerDVFS"], None]] = []

    @property
    def frequency(self) -> float:
        """Current DVFS setting."""
        return self._frequency

    def set_frequency(self, frequency: float) -> None:
        """Apply a DVFS setting (clamped to the platform range)."""
        frequency = self.perf_model.clamp(frequency)
        if frequency == self._frequency:
            return
        self._frequency = frequency
        self.server.set_speed(self.perf_model.speed(frequency))
        for listener in self._listeners:
            listener(self)

    def on_frequency_change(self, listener: Callable[["ServerDVFS"], None]) -> None:
        """Call ``listener(self)`` after each frequency change."""
        self._listeners.append(listener)

    def power_now(self) -> float:
        """Power at the instantaneous utilization and current frequency."""
        return self.power_model.power(self.server.utilization_now(), self._frequency)

    def power_at(self, utilization: float, frequency: Optional[float] = None) -> float:
        """Power at an explicit utilization (epoch-averaged) and frequency."""
        if frequency is None:
            frequency = self._frequency
        return self.power_model.power(utilization, frequency)
