"""ACPI-style server power-state machine.

Section 2.1 of the paper: "the server model might be subclassed or
extended to include state variables for various ACPI power modes, which
modulate task run time, control ACPI state transitions, and output
power/energy estimates."  This module is that extension, done by
composition instead of subclassing: a :class:`PowerStateMachine` wraps a
server, defines a set of named states (each with a power draw, a relative
performance level, and entry/exit latencies), drives the server's
speed / pause through state changes, and integrates per-state residency
and energy.

The classic S/P-state vocabulary maps directly:

- P-states: ``performance < 1.0`` with ``power`` scaled down (the machine
  runs, slower) — enforced via ``Server.set_speed``;
- C/S-states: ``performance == 0`` (nap/sleep/off) — enforced via
  ``Server.pause``, with transition latencies modeling wake-up cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.datacenter.server import Server
from repro.engine.simulation import Simulation


class PowerStateError(RuntimeError):
    """Raised for invalid power-state configurations or transitions."""


@dataclass(frozen=True)
class PowerState:
    """One ACPI-style operating point.

    Attributes
    ----------
    name:
        Identifier (e.g. ``"P0"``, ``"P2"``, ``"S3"``).
    power:
        Power draw while resident in this state, in watts.  For
        performance states this is the *busy* power; idle blending is the
        power model's job — this machine reports residencies so either
        convention can be integrated.
    performance:
        Service-speed multiplier; 0 means no execution (sleep states).
    entry_latency / exit_latency:
        Transition costs in seconds.  During a transition the server is
        paused and the *target* state's power is drawn (conservative for
        wake-ups, matching PowerNap's modeling).
    """

    name: str
    power: float
    performance: float
    entry_latency: float = 0.0
    exit_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.power < 0:
            raise PowerStateError(f"{self.name}: power must be >= 0")
        if self.performance < 0:
            raise PowerStateError(f"{self.name}: performance must be >= 0")
        if self.entry_latency < 0 or self.exit_latency < 0:
            raise PowerStateError(f"{self.name}: latencies must be >= 0")


def acpi_default_states(
    peak_power: float = 300.0,
    idle_power: float = 150.0,
    nap_power: float = 10.0,
) -> Dict[str, PowerState]:
    """A representative ACPI state table (P0-P2, C1, S3)."""
    return {
        "P0": PowerState("P0", power=peak_power, performance=1.0),
        "P1": PowerState("P1", power=0.8 * peak_power, performance=0.8),
        "P2": PowerState("P2", power=0.6 * peak_power, performance=0.6),
        "C1": PowerState(
            "C1", power=idle_power, performance=0.0,
            entry_latency=1e-6, exit_latency=10e-6,
        ),
        "S3": PowerState(
            "S3", power=nap_power, performance=0.0,
            entry_latency=1e-3, exit_latency=1e-3,
        ),
    }


class PowerStateMachine:
    """Drives a server through a table of power states.

    Tracks per-state residency time and energy exactly (piecewise
    integration at transition instants), and exposes
    :meth:`request_state` for policies (governors, nap schedulers) to
    command transitions.  Transition latencies are modeled by pausing the
    server for the entry+exit cost before the new state takes effect.
    """

    def __init__(
        self,
        server: Server,
        states: Dict[str, PowerState],
        initial: str = "P0",
    ):
        if not states:
            raise PowerStateError("need at least one power state")
        if initial not in states:
            raise PowerStateError(f"unknown initial state {initial!r}")
        self.server = server
        self.states = dict(states)
        self.sim: Optional[Simulation] = None
        self._current = states[initial]
        self._transitioning = False
        self._last_change = 0.0
        self.residency: Dict[str, float] = {name: 0.0 for name in states}
        self.energy_joules = 0.0
        self.transitions = 0
        self._listeners: list[Callable[[PowerState, PowerState], None]] = []

    # -- wiring --------------------------------------------------------------

    def bind(self, sim: Simulation) -> None:
        """Attach to the clock; applies the initial state's performance."""
        if self.sim is not None:
            raise PowerStateError("power-state machine already bound")
        self.sim = sim
        self.server.bind(sim)
        self._last_change = sim.now
        self._apply_performance(self._current)

    def on_transition(
        self, listener: Callable[[PowerState, PowerState], None]
    ) -> None:
        """Call ``listener(old_state, new_state)`` when a transition lands."""
        self._listeners.append(listener)

    # -- state access -----------------------------------------------------------

    @property
    def current(self) -> PowerState:
        """The currently-resident (or transition-target) state."""
        return self._current

    @property
    def in_transition(self) -> bool:
        """True while a transition latency is being paid."""
        return self._transitioning

    def power_now(self) -> float:
        """Power draw of the current state."""
        return self._current.power

    # -- transitions ----------------------------------------------------------------

    def request_state(self, name: str) -> None:
        """Transition to ``name`` (no-op if already there).

        The transition pays ``current.exit_latency + target.entry_latency``
        with the server paused, then applies the target's performance.
        Requests made during a transition are rejected — a real platform
        serializes ACPI transitions, and allowing overlap would corrupt
        the residency integrals.
        """
        if self.sim is None:
            raise PowerStateError("bind the machine before requesting states")
        if self._transitioning:
            raise PowerStateError(
                f"transition to {self._current.name} still in flight"
            )
        try:
            target = self.states[name]
        except KeyError:
            raise PowerStateError(f"unknown power state {name!r}") from None
        if target is self._current:
            return
        self._integrate()
        old = self._current
        latency = old.exit_latency + target.entry_latency
        self.transitions += 1
        self._current = target  # target's power is drawn during transition
        if latency > 0:
            self._transitioning = True
            self.server.pause()
            self.sim.schedule_in(
                latency,
                lambda: self._finish_transition(old, target),
                f"power-state:{old.name}->{target.name}",
            )
        else:
            self._finish_transition(old, target)

    def _finish_transition(self, old: PowerState, target: PowerState) -> None:
        self._transitioning = False
        self._apply_performance(target)
        for listener in self._listeners:
            listener(old, target)

    def _apply_performance(self, state: PowerState) -> None:
        if state.performance <= 0.0:
            self.server.pause()
        else:
            self.server.set_speed(state.performance)
            self.server.resume()

    # -- accounting --------------------------------------------------------------------

    def _integrate(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_change
        if elapsed > 0:
            self.residency[self._current.name] += elapsed
            self.energy_joules += self._current.power * elapsed
        self._last_change = now

    def residency_fractions(self) -> Dict[str, float]:
        """Fraction of elapsed time spent in each state."""
        self._integrate()
        total = sum(self.residency.values())
        if total <= 0:
            return {name: 0.0 for name in self.residency}
        return {name: time / total for name, time in self.residency.items()}

    def average_power(self) -> float:
        """Mean power over the run so far."""
        self._integrate()
        total = sum(self.residency.values())
        if total <= 0:
            return self._current.power
        return self.energy_joules / total
