"""Event-driven energy accounting.

Integrates a server's power piecewise between state changes (occupancy or
DVFS frequency), so the integral is exact for piecewise-constant power —
no sampling error, no periodic events on the queue.
"""

from __future__ import annotations

from typing import Optional

from repro.datacenter.server import Server
from repro.power.dvfs import ServerDVFS
from repro.power.models import PowerModel


class EnergyMeter:
    """Exact energy integral for one server.

    Attach either to a bare server with a :class:`PowerModel` (frequency
    pinned at 1.0) or to a :class:`ServerDVFS` coupling, in which case
    frequency changes also trigger re-integration.
    """

    def __init__(
        self,
        server: Server,
        power_model: Optional[PowerModel] = None,
        dvfs: Optional[ServerDVFS] = None,
    ):
        if (power_model is None) == (dvfs is None):
            raise ValueError("provide exactly one of power_model or dvfs")
        if server.sim is None:
            raise ValueError("bind the server to a simulation before metering")
        self.server = server
        self.dvfs = dvfs
        self.power_model = dvfs.power_model if dvfs is not None else power_model
        self._energy = 0.0
        self._last_time = server.sim.now
        self._last_power = self._power_now()
        server.on_occupancy_change(lambda _server: self._integrate())
        if dvfs is not None:
            dvfs.on_frequency_change(lambda _dvfs: self._integrate())

    def _power_now(self) -> float:
        if self.dvfs is not None:
            return self.dvfs.power_now()
        return self.power_model.power(self.server.utilization_now())

    def _integrate(self) -> None:
        now = self.server.sim.now
        dt = now - self._last_time
        if dt > 0:
            self._energy += self._last_power * dt
        self._last_time = now
        self._last_power = self._power_now()

    @property
    def energy_joules(self) -> float:
        """Energy consumed up to the current simulation time."""
        self._integrate()
        return self._energy

    def average_power(self) -> float:
        """Mean power since the start of metering."""
        self._integrate()
        elapsed = self.server.sim.now
        if elapsed <= 0:
            return self._last_power
        return self._energy / elapsed
