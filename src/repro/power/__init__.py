"""Power/performance models and the power-capping system of Section 4.

- :class:`LinearPowerModel` — Eq. 4: ``P = P_dynamic * U + P_idle``,
  the utilization-linear server power model validated by Fan et al. and
  Rivoire et al.
- :class:`CubicDVFSPowerModel` — Eq. 5: CPU dynamic power scales as
  ``(f / f_max)^3`` under idealized DVFS.
- :class:`DVFSPerformanceModel` — Eq. 6: service-rate slowdown
  ``mu' = mu * (alpha * f/f_max + (1 - alpha))`` for an application that
  is ``alpha`` CPU-bound (the paper uses alpha = 0.9).
- :class:`ServerDVFS` — couples a server to the two models so a
  frequency setting modulates both its speed and its power draw.
- :class:`PowerCappingController` — the proportional epoch budgeter of
  Section 4.1 that enforces a cluster-wide cap through per-server DVFS.
- :class:`EnergyMeter` — event-driven energy integration.
"""

from repro.power.models import (
    CubicDVFSPowerModel,
    LinearPowerModel,
    NapPowerModel,
    PowerModel,
    PowerModelError,
)
from repro.power.dvfs import DVFSPerformanceModel, ServerDVFS
from repro.power.meter import EnergyMeter
from repro.power.capping import PowerCappingController
from repro.power.states import (
    PowerState,
    PowerStateError,
    PowerStateMachine,
    acpi_default_states,
)

__all__ = [
    "PowerModel",
    "PowerModelError",
    "LinearPowerModel",
    "CubicDVFSPowerModel",
    "NapPowerModel",
    "DVFSPerformanceModel",
    "ServerDVFS",
    "EnergyMeter",
    "PowerCappingController",
    "PowerState",
    "PowerStateError",
    "PowerStateMachine",
    "acpi_default_states",
]
