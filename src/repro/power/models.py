"""Server power models (Eqs. 4-5 of the paper).

The paper's power capping example uses "the linear model validated by
[15] and [31]": total power is idle power plus a dynamic range scaled by
utilization, and under DVFS the CPU's dynamic contribution scales with
the cube of frequency ("we assume the classic cubic scaling").  Typical
parameter values come from industry server specs [5]; we default to a
300 W peak / 150 W idle envelope representative of the Barroso & Hölzle
numbers the paper cites.
"""

from __future__ import annotations

import abc


class PowerModelError(ValueError):
    """Raised for invalid power-model parameters or inputs."""


def _check_utilization(utilization: float) -> float:
    if not 0.0 <= utilization <= 1.0:
        raise PowerModelError(f"utilization must be in [0, 1], got {utilization}")
    return float(utilization)


class PowerModel(abc.ABC):
    """Maps (utilization, frequency) to instantaneous power in watts."""

    @abc.abstractmethod
    def power(self, utilization: float, frequency: float = 1.0) -> float:
        """Instantaneous power draw."""

    @abc.abstractmethod
    def peak_power(self) -> float:
        """Power at full utilization and full frequency."""


class LinearPowerModel(PowerModel):
    """Eq. 4: ``P = P_dynamic * U + P_idle`` (frequency-insensitive)."""

    def __init__(self, idle_power: float = 150.0, peak_power: float = 300.0):
        if idle_power < 0:
            raise PowerModelError(f"idle_power must be >= 0, got {idle_power}")
        if peak_power < idle_power:
            raise PowerModelError(
                f"peak_power ({peak_power}) must be >= idle_power ({idle_power})"
            )
        self.idle_power = float(idle_power)
        self.dynamic_power = float(peak_power) - float(idle_power)

    def power(self, utilization: float, frequency: float = 1.0) -> float:
        utilization = _check_utilization(utilization)
        return self.idle_power + self.dynamic_power * utilization

    def peak_power(self) -> float:
        return self.idle_power + self.dynamic_power


class CubicDVFSPowerModel(PowerModel):
    """Eqs. 4+5: linear in utilization, cubic in DVFS frequency.

    ``P(U, f) = P_idle + P_dynamic * U * (f / f_max)^3`` — the paper's
    simplifying assumption that the CPU is the only component with a
    dynamic range, scaled cubically by idealized continuous DVFS.
    """

    def __init__(
        self,
        idle_power: float = 150.0,
        peak_power: float = 300.0,
        f_max: float = 1.0,
    ):
        if idle_power < 0:
            raise PowerModelError(f"idle_power must be >= 0, got {idle_power}")
        if peak_power < idle_power:
            raise PowerModelError(
                f"peak_power ({peak_power}) must be >= idle_power ({idle_power})"
            )
        if f_max <= 0:
            raise PowerModelError(f"f_max must be > 0, got {f_max}")
        self.idle_power = float(idle_power)
        self.dynamic_power = float(peak_power) - float(idle_power)
        self.f_max = float(f_max)

    def power(self, utilization: float, frequency: float = 1.0) -> float:
        utilization = _check_utilization(utilization)
        if frequency <= 0 or frequency > self.f_max:
            raise PowerModelError(
                f"frequency must be in (0, {self.f_max}], got {frequency}"
            )
        ratio = frequency / self.f_max
        return self.idle_power + self.dynamic_power * utilization * ratio**3

    def peak_power(self) -> float:
        return self.idle_power + self.dynamic_power

    def frequency_for_budget(self, utilization: float, budget: float) -> float:
        """Largest frequency keeping power within ``budget`` at ``utilization``.

        Inverts Eq. 4+5.  Returns ``f_max`` when the budget is not
        binding; never returns below zero — the caller clamps to the
        platform's ``f_min`` (the paper scales f continuously in
        [0.5, 1.0]).
        """
        utilization = _check_utilization(utilization)
        if budget < 0:
            raise PowerModelError(f"budget must be >= 0, got {budget}")
        headroom = budget - self.idle_power
        demand = self.dynamic_power * utilization
        if demand <= 0 or headroom >= demand:
            return self.f_max
        if headroom <= 0:
            return 0.0
        return self.f_max * (headroom / demand) ** (1.0 / 3.0)


class NapPowerModel(PowerModel):
    """Two-state power: active (linear in U) vs nap (deep sleep).

    Models PowerNap-style full-system idle low-power modes used by the
    DreamWeaver study (Section 3.2): while napping the server draws
    ``nap_power`` regardless of queued work.
    """

    def __init__(
        self,
        idle_power: float = 150.0,
        peak_power: float = 300.0,
        nap_power: float = 10.0,
    ):
        if nap_power < 0:
            raise PowerModelError(f"nap_power must be >= 0, got {nap_power}")
        if nap_power > idle_power:
            raise PowerModelError(
                f"nap_power ({nap_power}) should not exceed idle power "
                f"({idle_power}) — napping must save energy"
            )
        self.active = LinearPowerModel(idle_power, peak_power)
        self.nap_power = float(nap_power)

    def power(
        self, utilization: float, frequency: float = 1.0, napping: bool = False
    ) -> float:
        if napping:
            return self.nap_power
        return self.active.power(utilization, frequency)

    def peak_power(self) -> float:
        return self.active.peak_power()
