"""Cluster-wide power capping (Section 4.1).

Power capping lets a data center deploy more servers than its provisioned
power infrastructure could support at their aggregate peak, by assigning
each server a hard power budget and throttling (via DVFS) any server that
would exceed it.  The paper's demonstration scheme, reproduced here:

- budgets are recomputed every one-second epoch,
- the budgeting is *fair and proportional*: each server's budget is
  proportional to its utilization in the previous epoch,
- DVFS (idealized, continuous in [0.5, 1.0]) enforces the budget through
  the cubic power model (Eq. 5) and the alpha slowdown model (Eq. 6),
- the *capping level* observed each epoch is "how much more power a
  server would draw, beyond its budget, without a cap".

The salient property for simulator performance is that the scheme is
*global*: every system model interacts each simulated second, which is
what the scalability study (Figs. 7, 9) exercises.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.engine.simulation import Simulation
from repro.power.dvfs import ServerDVFS
from repro.power.models import CubicDVFSPowerModel, PowerModelError


class PowerCappingController:
    """Proportional epoch-based budgeter enforcing a cluster cap via DVFS.

    Parameters
    ----------
    couplings:
        One :class:`ServerDVFS` per managed server; the power model must
        be a :class:`CubicDVFSPowerModel` (it supplies the budget
        inversion).
    cluster_cap:
        Total watts available to the cluster each epoch.
    epoch:
        Budgeting interval in simulated seconds (the paper uses 1 s).
    on_capping_level:
        Optional callback receiving each server's capping level (watts of
        demand beyond budget) every epoch — wire this to an experiment
        statistic to reproduce the "+Capping" output metric of Fig. 9.
    on_power:
        Optional callback receiving each server's budget-enforced power
        draw every epoch.
    """

    def __init__(
        self,
        couplings: Sequence[ServerDVFS],
        cluster_cap: float,
        epoch: float = 1.0,
        on_capping_level: Optional[Callable[[float], None]] = None,
        on_power: Optional[Callable[[float], None]] = None,
    ):
        if not couplings:
            raise PowerModelError("power capping needs >= 1 server")
        if cluster_cap <= 0:
            raise PowerModelError(f"cluster_cap must be > 0, got {cluster_cap}")
        if epoch <= 0:
            raise PowerModelError(f"epoch must be > 0, got {epoch}")
        for coupling in couplings:
            if not isinstance(coupling.power_model, CubicDVFSPowerModel):
                raise PowerModelError(
                    "power capping requires CubicDVFSPowerModel couplings"
                )
        self.couplings = list(couplings)
        self.cluster_cap = float(cluster_cap)
        self.epoch = float(epoch)
        self.on_capping_level = on_capping_level
        self.on_power = on_power
        self.epochs_run = 0
        self.sim: Optional[Simulation] = None

    def bind(self, sim: Simulation) -> None:
        """Start the periodic budgeting epoch."""
        if self.sim is not None:
            raise PowerModelError("capping controller already bound")
        self.sim = sim
        sim.schedule_periodic(self.epoch, self.run_epoch, "power-capping-epoch")

    # -- one budgeting epoch -------------------------------------------------

    def run_epoch(self) -> None:
        """Read utilizations, assign proportional budgets, enforce caps."""
        utilizations = [
            coupling.server.utilization_since_marker()
            for coupling in self.couplings
        ]
        budgets = self.compute_budgets(utilizations)
        for coupling, utilization, budget in zip(
            self.couplings, utilizations, budgets
        ):
            self._enforce(coupling, utilization, budget)
        self.epochs_run += 1

    def compute_budgets(self, utilizations: Sequence[float]) -> list[float]:
        """Fair proportional budgets: share the cap by last-epoch utilization.

        A fully idle cluster (all utilizations zero) splits the cap
        evenly — there is nothing to throttle anyway.
        """
        total = float(sum(utilizations))
        n = len(self.couplings)
        if total <= 0.0:
            return [self.cluster_cap / n] * n
        return [self.cluster_cap * u / total for u in utilizations]

    def _enforce(self, coupling: ServerDVFS, utilization: float, budget: float) -> None:
        model: CubicDVFSPowerModel = coupling.power_model
        perf = coupling.perf_model
        uncapped = model.power(utilization, perf.f_max)
        capping_level = max(0.0, uncapped - budget)
        frequency = perf.clamp(model.frequency_for_budget(utilization, budget))
        coupling.set_frequency(frequency)
        if self.on_capping_level is not None:
            self.on_capping_level(capping_level)
        if self.on_power is not None:
            self.on_power(model.power(utilization, frequency))
