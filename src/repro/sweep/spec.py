"""SweepSpec: a named parameter grid over experiment factories.

Every figure in the paper is a *sweep* — a family of experiments over
load points, Cv values, or cluster sizes.  A :class:`SweepSpec` captures
one such family as plain data: what to build (a config document or a
module-level factory), which axes to vary, and the master seed from
which every point derives its own seed through the existing
:func:`repro.faults.recovery.derive_seed` lineage.

Three point kinds share the machinery:

``config``
    Each point is a ``repro.config`` experiment document: the axis
    values are applied onto ``base`` as dotted-path overrides
    (``"workload.load" = 0.5``) and the experiment is built with
    :func:`repro.config.build_experiment`.  This is the kind TOML/JSON
    spec files produce.
``factory``
    Each point calls a module-level ``factory(seed, **params) ->
    Experiment`` (referenced as ``"module:qualname"`` so it pickles
    across process boundaries) and runs it to convergence.
``task``
    Each point calls ``fn(seed, **params) -> dict`` and stores the
    returned JSON payload verbatim — for sweeps whose unit of work is
    not an experiment (e.g. regenerating Table 1's moment table).

Canonical ordering
------------------

Axes are enumerated in *sorted key order* and each axis's values in the
order given, so the point list — and therefore each point's index and
derived seed — is invariant under dict-key reordering in the spec
source.  The content digests (:func:`spec_digest`,
:func:`SweepSpec.point_digest`) canonicalize the same way, which is what
makes the sweep cache safe against TOML/JSON round-trips and key
shuffling while still changing under any *semantic* edit.
"""

from __future__ import annotations

import copy
import hashlib
import importlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.faults.recovery import SeedLineage

#: Spec kinds a sweep may declare.
POINT_KINDS = ("config", "factory", "task")


class SweepError(ValueError):
    """Raised for malformed sweep specs or points."""


# -- canonicalization ---------------------------------------------------------


def canonical(value):
    """Reduce a value to JSON-safe plain data with deterministic shape.

    Dicts keep their (string) keys — ordering is handled by
    ``sort_keys`` at serialization time; tuples become lists; callables
    are identified by ``module:qualname`` (their code identity, the
    same reference the spec serializes).  Anything else non-JSON is
    rejected rather than silently repr'd into the digest.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                key = json.dumps(key)
            out[key] = canonical(item)
        return out
    if callable(value):
        return callable_ref(value)
    raise SweepError(
        f"value {value!r} ({type(value).__name__}) cannot be canonicalized"
    )


def canonical_json(value) -> str:
    """The canonical serialized form digests are computed over."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


def content_digest(value) -> str:
    """BLAKE2 digest of the canonical form (the cache key primitive)."""
    return hashlib.blake2b(
        canonical_json(value).encode(), digest_size=16
    ).hexdigest()


def callable_ref(fn: Callable) -> str:
    """``module:qualname`` reference for a module-level callable."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise SweepError(
            f"sweep factories must be module-level callables (picklable "
            f"and importable); got {fn!r}"
        )
    return f"{module}:{qualname}"


def resolve_callable(ref: Union[str, Callable]) -> Callable:
    """Inverse of :func:`callable_ref` (pass callables through)."""
    if callable(ref):
        return ref
    if not isinstance(ref, str) or ":" not in ref:
        raise SweepError(
            f"factory reference must be 'module:qualname', got {ref!r}"
        )
    module_name, _, qualname = ref.partition(":")
    try:
        target = importlib.import_module(module_name)
    except ImportError as error:
        raise SweepError(
            f"cannot import factory module {module_name!r}: {error}"
        ) from error
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise SweepError(
                f"module {module_name!r} has no attribute {qualname!r}"
            ) from None
    if not callable(target):
        raise SweepError(f"{ref!r} resolved to a non-callable")
    return target


def apply_params(base: dict, params: Dict[str, object]) -> dict:
    """Deep-copy ``base`` and apply dotted-path overrides.

    ``{"workload.load": 0.5}`` sets ``config["workload"]["load"]``,
    creating intermediate objects as needed.  A path that traverses a
    non-dict is an error — the override would silently vanish otherwise.
    """
    config = copy.deepcopy(base)
    for path, value in params.items():
        parts = path.split(".")
        node = config
        for part in parts[:-1]:
            if part not in node:
                node[part] = {}
            node = node[part]
            if not isinstance(node, dict):
                raise SweepError(
                    f"axis {path!r} traverses non-object at {part!r}"
                )
        node[parts[-1]] = value
    return config


# -- points -------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved point of a sweep."""

    index: int
    name: str
    params: Dict[str, object]
    seed: int

    def job_payload(self, spec: "SweepSpec") -> dict:
        """The picklable, JSON-safe work order executed for this point."""
        payload = {
            "kind": spec.kind,
            "params": canonical(self.params),
            "seed": self.seed,
            "max_events": spec.max_events,
        }
        # Included only when non-default so every pre-existing spec's
        # point digests (and therefore its sweep cache) stay valid.
        if spec.engine != "event":
            payload["engine"] = spec.engine
        if spec.kind == "config":
            payload["base"] = canonical(spec.base)
        else:
            payload["factory"] = spec.factory_ref
            payload["factory_kwargs"] = canonical(spec.factory_kwargs)
        return payload


def _point_name(params: Dict[str, object]) -> str:
    if not params:
        return "point"
    return ",".join(
        f"{key}={params[key]!r}" if isinstance(params[key], str)
        else f"{key}={params[key]}"
        for key in sorted(params)
    )


# -- the spec -----------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """A named family of experiment (or task) points.

    Exactly one of ``axes`` (cartesian grid) or ``grid`` (explicit
    point list) describes the parameter space; ``base`` carries the
    shared config document (``config`` kind) and ``factory`` /
    ``factory_kwargs`` the shared callable (``factory`` / ``task``
    kinds).  ``seed`` is the sweep's master seed; each point draws
    ``derive_seed(seed, index)`` through a :class:`SeedLineage`, so
    points never share streams and the mapping matches the parallel
    master's historical slave-seed rule.
    """

    name: str
    kind: str = "config"
    seed: int = 0
    base: dict = field(default_factory=dict)
    factory: Optional[Union[str, Callable]] = None
    factory_kwargs: dict = field(default_factory=dict)
    axes: Dict[str, list] = field(default_factory=dict)
    grid: Tuple[dict, ...] = ()
    max_events: Optional[int] = None
    #: Simulation engine for experiment points ("event" | "auto" |
    #: "fastpath"); task-kind sweeps ignore it.
    engine: str = "event"

    def __post_init__(self) -> None:
        if self.kind not in POINT_KINDS:
            raise SweepError(
                f"unknown sweep kind {self.kind!r}; expected {POINT_KINDS}"
            )
        if self.engine not in ("event", "auto", "fastpath"):
            raise SweepError(
                f"unknown engine {self.engine!r}; "
                "expected 'event', 'auto', or 'fastpath'"
            )
        if not self.name:
            raise SweepError("sweep needs a non-empty name")
        object.__setattr__(self, "grid", tuple(self.grid))
        if self.axes and self.grid:
            raise SweepError("declare either 'axes' or 'grid', not both")
        if not self.axes and not self.grid:
            raise SweepError("sweep needs a non-empty 'axes' or 'grid'")
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise SweepError(
                    f"axis {axis!r} must be a non-empty list, got {values!r}"
                )
        if self.kind == "config":
            if self.factory is not None:
                raise SweepError("'config' sweeps take 'base', not 'factory'")
            if not self.base:
                raise SweepError("'config' sweeps need a 'base' document")
        else:
            if self.factory is None:
                raise SweepError(f"{self.kind!r} sweeps need a 'factory'")

    # -- identity ------------------------------------------------------------

    @property
    def factory_ref(self) -> Optional[str]:
        """The ``module:qualname`` form of the factory (or None)."""
        if self.factory is None:
            return None
        if isinstance(self.factory, str):
            if ":" not in self.factory:
                raise SweepError(
                    f"factory reference must be 'module:qualname', "
                    f"got {self.factory!r}"
                )
            return self.factory
        return callable_ref(self.factory)

    def resolve_factory(self) -> Callable:
        """Import (or pass through) the factory callable."""
        if self.factory is None:
            raise SweepError(f"{self.kind!r} sweep has no factory")
        return resolve_callable(self.factory)

    def points(self) -> List[SweepPoint]:
        """The fully resolved point list in canonical order.

        Axes are walked in sorted-key order (see module docstring);
        explicit grids keep their declared order.  Seeds come from a
        fresh :class:`SeedLineage` so index collisions are impossible.
        """
        lineage = SeedLineage(self.seed)
        combos: List[Dict[str, object]]
        if self.grid:
            combos = [dict(entry) for entry in self.grid]
        else:
            names = sorted(self.axes)
            combos = [
                dict(zip(names, values))
                for values in itertools.product(
                    *(list(self.axes[name]) for name in names)
                )
            ]
        return [
            SweepPoint(
                index=index,
                name=_point_name(params),
                params=params,
                seed=lineage.issue(index),
            )
            for index, params in enumerate(combos)
        ]

    def point_digest(self, point: SweepPoint) -> str:
        """Content address of one point: everything that shapes its result.

        Covers the kind, the shared base/factory identity, the point's
        parameters, its derived seed, and the event budget — and nothing
        else.  Reordering keys, round-tripping the spec through
        TOML/JSON, renaming the sweep, or changing *other* points leaves
        it fixed; any semantic change to this point moves it.
        """
        return content_digest(point.job_payload(self))

    def digest(self) -> str:
        """Content address of the whole spec (all points + identity)."""
        return content_digest(
            {
                "kind": self.kind,
                "points": [
                    self.point_digest(point) for point in self.points()
                ],
            }
        )

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON/TOML-safe plain form (inverse of :meth:`from_dict`)."""
        payload = {
            "sweep": {
                "name": self.name,
                "kind": self.kind,
                "seed": self.seed,
            }
        }
        if self.max_events is not None:
            payload["sweep"]["max_events"] = self.max_events
        if self.engine != "event":
            payload["sweep"]["engine"] = self.engine
        if self.kind == "config":
            payload["base"] = canonical(self.base)
        else:
            payload["sweep"]["factory"] = self.factory_ref
            if self.factory_kwargs:
                payload["factory_kwargs"] = canonical(self.factory_kwargs)
        if self.grid:
            payload["grid"] = [canonical(entry) for entry in self.grid]
        else:
            payload["axes"] = canonical(self.axes)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Build a spec from the plain form TOML/JSON files decode to."""
        if not isinstance(data, dict) or "sweep" not in data:
            raise SweepError("spec document needs a [sweep] section")
        head = data["sweep"]
        known = {"sweep", "base", "axes", "grid", "factory_kwargs"}
        unknown = set(data) - known
        if unknown:
            raise SweepError(f"unknown spec section(s): {sorted(unknown)}")
        head_known = {"name", "kind", "seed", "max_events", "factory",
                      "engine"}
        head_unknown = set(head) - head_known
        if head_unknown:
            raise SweepError(
                f"unknown [sweep] key(s): {sorted(head_unknown)}"
            )
        return cls(
            name=head.get("name", ""),
            kind=head.get("kind", "config"),
            seed=int(head.get("seed", 0)),
            base=data.get("base", {}),
            factory=head.get("factory"),
            factory_kwargs=data.get("factory_kwargs", {}),
            axes=data.get("axes", {}),
            grid=tuple(data.get("grid", ())),
            max_events=head.get("max_events"),
            engine=head.get("engine", "event"),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepSpec":
        """Read a spec from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError as error:  # Python < 3.11
                raise SweepError(
                    "TOML specs need Python 3.11+ (tomllib); "
                    "use the JSON spec form instead"
                ) from error
            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as error:
                raise SweepError(f"{path}: invalid TOML: {error}") from error
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as error:
                raise SweepError(f"{path}: invalid JSON: {error}") from error
        return cls.from_dict(data)

    def __len__(self) -> int:
        if self.grid:
            return len(self.grid)
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total
