"""Content-addressed on-disk store for completed sweep points.

Every completed point is written under its content digest
(:meth:`repro.sweep.spec.SweepSpec.point_digest`), so a re-run after
editing one point recomputes only that point; everything else is served
from the store.  Entries are self-verifying: the file carries a
checksum over the canonical payload, and any mismatch — truncation,
bit rot, a partial write, a hand edit — is treated as a *miss* and the
point recomputed, never silently served.  Writes are atomic
(temp file + ``os.replace``) so a crash mid-write can only ever leave a
detectable-corrupt entry, not a plausible wrong one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.sweep.spec import SweepError, canonical_json

#: Bumped when the entry layout changes; old entries become misses.
CACHE_FORMAT = 1


class CacheError(SweepError):
    """Raised for unusable cache roots (not for bad entries — those
    are recomputed)."""


def payload_checksum(payload: dict) -> str:
    """Checksum over the canonical payload form."""
    return hashlib.blake2b(
        canonical_json(payload).encode(), digest_size=16
    ).hexdigest()


class SweepCache:
    """A directory of self-verifying point results keyed by digest.

    ``hits`` / ``misses`` / ``corrupt`` count this instance's lookups;
    ``corrupt`` counts entries that existed but failed verification
    (each such lookup also counts as a miss — the caller recomputes).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CacheError(
                f"cannot create cache directory {self.root}: {error}"
            ) from error
        if not self.root.is_dir():
            raise CacheError(f"cache root {self.root} is not a directory")
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def path(self, digest: str) -> Path:
        """Entry path for one digest (two-level fan-out)."""
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[dict]:
        """The verified payload for ``digest``, or None.

        Missing, unparsable, truncated, mislabeled, and
        checksum-mismatched entries all return None (the caller
        recomputes); only verification failures bump ``corrupt``.
        """
        path = self.path(digest)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            entry = json.loads(text)
            if (
                entry["format"] != CACHE_FORMAT
                or entry["digest"] != digest
                or entry["checksum"] != payload_checksum(entry["payload"])
            ):
                raise ValueError("verification failed")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
        except (ValueError, KeyError, TypeError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> Path:
        """Atomically write one entry; returns its path."""
        path = self.path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "digest": digest,
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                json.dump(entry, tmp, sort_keys=True)
                tmp.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def evict(self, digest: str) -> bool:
        """Drop one entry; True if it existed."""
        try:
            self.path(digest).unlink()
            return True
        except FileNotFoundError:
            return False

    def __contains__(self, digest: str) -> bool:
        return self.path(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
