"""Batched multi-experiment orchestration (sweeps).

Every figure in the paper is a *sweep* — a family of experiments over
load points, Cv values, or cluster sizes.  This package turns that
pattern into infrastructure:

- :class:`SweepSpec` — a named parameter grid (``axes``, their cross
  product, or an explicit ``grid``) over experiment configs, factory
  callables, or plain task callables; every point gets a seed from the
  :func:`repro.faults.recovery.derive_seed` lineage and a canonical
  content digest.
- :class:`SweepRunner` — executes the points over a persistent
  :class:`repro.parallel.pool.WorkerPool` (or a per-point spawn loop,
  or in-process), serving completed points from a content-addressed
  :class:`SweepCache` so edits recompute only what changed.

See ``docs/sweeps.md`` for the spec format and the caching /
determinism / fault-tolerance contracts.
"""

from repro.sweep.cache import CACHE_FORMAT, CacheError, SweepCache
from repro.sweep.runner import (
    BACKENDS,
    PointResult,
    SweepResult,
    SweepRunner,
    payload_problem,
    run_point,
)
from repro.sweep.spec import (
    SweepError,
    SweepPoint,
    SweepSpec,
    apply_params,
    callable_ref,
    canonical,
    canonical_json,
    content_digest,
    resolve_callable,
)

__all__ = [
    "BACKENDS",
    "CACHE_FORMAT",
    "CacheError",
    "PointResult",
    "SweepCache",
    "SweepError",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "apply_params",
    "callable_ref",
    "canonical",
    "canonical_json",
    "content_digest",
    "payload_problem",
    "resolve_callable",
    "run_point",
]
